//! Static resolution: variable classification, sort checking, constant
//! interning.
//!
//! The paper writes variables the SQL way — bare capital letters — and
//! relies on context to tell them apart from object and attribute names
//! (it notes after query (3) that, strictly, method variables carry a
//! `"` prefix). The resolver implements the convention the paper's own
//! examples follow. An identifier denotes a **variable** iff
//!
//! 1. it carries an explicit sort prefix (`"Y` method, `#X`/`§X` class), or
//! 2. it is bound by a FROM, `OID FUNCTION OF`, or `{…}` grouping clause
//!    anywhere in the statement (`FROM Numeral Year` makes every `Year`
//!    a variable), or
//! 3. it is a single uppercase letter optionally followed by digits
//!    (`X`, `Y2`, `W` — every variable the paper writes), except in
//!    method position when it names a declared method (an attribute
//!    legitimately called `V` stays addressable; `"V` forces the
//!    variable reading).
//!
//! Everything else is a symbolic OID. Sorts are then inferred: FROM
//! binders and explicit prefixes are *strong*; occurrence in method
//! position forces the *method* sort (query (3)); the default is
//! *individual*. Contradictory strong constraints are a resolution
//! error.
//!
//! After classification every constant (symbol, numeral, string,
//! boolean, `nil`) is interned into the database's OID table and replaced
//! by [`IdTerm::Oid`], so evaluation never needs mutable access for
//! lookups.

use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::Database;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Strength {
    Weak,       // default individual
    Positional, // method position
    Strong,     // explicit prefix or FROM binder
}

/// Resolves a parsed statement against a database, returning the
/// resolved statement (variables classified, constants interned).
pub fn resolve_stmt(db: &mut Database, stmt: &Stmt) -> XsqlResult<Stmt> {
    let mut r = Resolver {
        db,
        sorts: HashMap::new(),
    };
    r.collect_stmt(stmt)?;
    r.rewrite_stmt(stmt)
}

struct Resolver<'d> {
    db: &'d mut Database,
    /// name -> (sort, strongest constraint seen)
    sorts: HashMap<String, (VarSort, Strength)>,
}

/// The paper's variable-spelling convention: a single uppercase letter,
/// optionally followed by digits.
fn single_letter_var(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_uppercase()) && chars.all(|c| c.is_ascii_digit())
}

impl Resolver<'_> {
    fn is_var(&self, name: &str) -> bool {
        self.sorts.contains_key(name) || single_letter_var(name)
    }

    /// A bare identifier in *method position* is a method variable —
    /// unless it is not otherwise registered as a variable and names a
    /// declared method-object, in which case the declaration wins: the
    /// paper's single-letter convention is about variables, and an
    /// attribute legitimately named `V` (as a dump may contain) must
    /// stay addressable. Explicitly `"`-prefixed variables are
    /// unaffected.
    fn method_position_is_var(&self, name: &str) -> bool {
        if self.sorts.contains_key(name) {
            return true;
        }
        if !single_letter_var(name) {
            return false;
        }
        match self.db.oids().find_sym(name) {
            Some(o) => !self.db.is_method_object(o),
            None => true,
        }
    }

    fn sort_of(&self, name: &str) -> VarSort {
        self.sorts
            .get(name)
            .map(|&(s, _)| s)
            .unwrap_or(VarSort::Individual)
    }

    fn constrain(&mut self, name: &str, sort: VarSort, strength: Strength) -> XsqlResult<()> {
        match self.sorts.get_mut(name) {
            None => {
                self.sorts.insert(name.to_string(), (sort, strength));
                Ok(())
            }
            Some((s, st)) => {
                if *s == sort {
                    if strength > *st {
                        *st = strength;
                    }
                    return Ok(());
                }
                // Different sorts: the stronger constraint wins; two
                // conflicting constraints at the same (non-weak) level
                // are an error.
                if strength > *st {
                    *s = sort;
                    *st = strength;
                    Ok(())
                } else if strength < *st {
                    Ok(())
                } else if *st == Strength::Weak {
                    *s = sort;
                    Ok(())
                } else {
                    Err(XsqlError::Resolve(format!(
                        "variable `{name}` is used with conflicting sorts {s} and {sort}"
                    )))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass A: collect constraints
    // ------------------------------------------------------------------

    fn collect_stmt(&mut self, stmt: &Stmt) -> XsqlResult<()> {
        match stmt {
            Stmt::Select(q) => self.collect_query(q),
            Stmt::RelOp { left, right, .. } => {
                self.collect_stmt(left)?;
                self.collect_stmt(right)
            }
            Stmt::CreateView(v) => self.collect_query(&v.query),
            Stmt::AlterClass(a) => self.collect_query(&a.query),
            Stmt::AddSignature { .. }
            | Stmt::CreateClass(_)
            | Stmt::Begin
            | Stmt::Commit
            | Stmt::Rollback
            | Stmt::WalOn
            | Stmt::WalOff
            | Stmt::Checkpoint
            | Stmt::Stats => Ok(()),
            Stmt::CreateObject(o) => {
                for (_, op) in &o.sets {
                    self.collect_operand(op)?;
                }
                Ok(())
            }
            Stmt::Update(u) => self.collect_update(u),
            Stmt::Explain { stmt: inner, .. } => self.collect_stmt(inner),
            // The body of a PREPARE is resolved when the statement is
            // compiled (Session::prepare), not here — its variables live
            // in their own scope and must not leak into this one.
            Stmt::Prepare { .. } => Ok(()),
            Stmt::Execute { args, .. } => {
                for a in args {
                    self.collect_idterm(a)?;
                }
                Ok(())
            }
        }
    }

    fn collect_query(&mut self, q: &SelectQuery) -> XsqlResult<()> {
        for f in &q.from {
            self.constrain(&f.var.name, f.var.sort, Strength::Strong)?;
            if let IdTerm::Var(v) = &f.class {
                self.constrain(&v.name, VarSort::Class, Strength::Strong)?;
            }
        }
        if let Some(spec) = &q.oid_fn {
            for v in &spec.vars {
                let strength = if v.sort == VarSort::Individual {
                    Strength::Weak
                } else {
                    Strength::Strong
                };
                self.constrain(&v.name, v.sort, strength)?;
            }
        }
        for item in &q.select {
            match item {
                SelectItem::Expr(op) => self.collect_operand(op)?,
                SelectItem::Named { value, .. } => match value {
                    SelectValue::Expr(op) => self.collect_operand(op)?,
                    SelectValue::Grouped(v) => {
                        let strength = if v.sort == VarSort::Individual {
                            Strength::Weak
                        } else {
                            Strength::Strong
                        };
                        self.constrain(&v.name, v.sort, strength)?;
                    }
                },
                SelectItem::MethodResult { args, value, .. } => {
                    for a in args {
                        self.collect_idterm(a)?;
                    }
                    self.collect_operand(value)?;
                }
            }
        }
        self.collect_cond(&q.where_clause)
    }

    fn collect_update(&mut self, u: &UpdateStmt) -> XsqlResult<()> {
        for a in &u.assignments {
            self.collect_path(&a.target)?;
            self.collect_operand(&a.value)?;
        }
        Ok(())
    }

    fn collect_cond(&mut self, c: &Cond) -> XsqlResult<()> {
        match c {
            Cond::True => Ok(()),
            Cond::Path(p) => self.collect_path(p),
            Cond::Cmp { left, right, .. } => {
                self.collect_operand(left)?;
                self.collect_operand(right)
            }
            Cond::SetCmp { left, right, .. } => {
                self.collect_operand(left)?;
                self.collect_operand(right)
            }
            Cond::SubclassOf { sub, sup } => {
                for t in [sub, sup] {
                    if let IdTerm::Sym(s) = t {
                        if self.is_var(s) {
                            // A bare variable in subclassOf position
                            // ranges over classes.
                            self.constrain(s, VarSort::Class, Strength::Positional)?;
                        }
                    }
                    self.collect_idterm(t)?;
                }
                Ok(())
            }
            Cond::InstanceOf { obj, class } => {
                if let IdTerm::Sym(s) = class {
                    if self.is_var(s) {
                        self.constrain(s, VarSort::Class, Strength::Positional)?;
                    }
                }
                self.collect_idterm(obj)?;
                self.collect_idterm(class)
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                self.collect_cond(a)?;
                self.collect_cond(b)
            }
            Cond::Not(a) => self.collect_cond(a),
            Cond::Update(u) => self.collect_update(u),
        }
    }

    fn collect_operand(&mut self, op: &Operand) -> XsqlResult<()> {
        match op {
            Operand::Path(p) => self.collect_path(p),
            Operand::Agg(_, p) => self.collect_path(p),
            Operand::SetLit(ts) => {
                for t in ts {
                    self.collect_idterm(t)?;
                }
                Ok(())
            }
            Operand::Subquery(q) => self.collect_query(q),
            Operand::Arith(a, _, b)
            | Operand::Union(a, b)
            | Operand::Intersection(a, b)
            | Operand::Difference(a, b) => {
                self.collect_operand(a)?;
                self.collect_operand(b)
            }
        }
    }

    fn collect_path(&mut self, p: &PathExpr) -> XsqlResult<()> {
        self.collect_idterm(&p.head)?;
        for s in &p.steps {
            match s {
                Step::Method {
                    method,
                    args,
                    selector,
                } => {
                    match method {
                        MethodTerm::Var(name) => {
                            self.constrain(name, VarSort::Method, Strength::Strong)?;
                        }
                        MethodTerm::Name(name) => {
                            if self.method_position_is_var(name) {
                                // Query (3): a variable in method
                                // position is a method variable.
                                self.constrain(name, VarSort::Method, Strength::Positional)?;
                            }
                        }
                    }
                    for a in args {
                        self.collect_idterm(a)?;
                    }
                    if let Some(t) = selector {
                        self.collect_idterm(t)?;
                    }
                }
                Step::PathVar { selector, .. } => {
                    if let Some(t) = selector {
                        self.collect_idterm(t)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn collect_idterm(&mut self, t: &IdTerm) -> XsqlResult<()> {
        match t {
            IdTerm::Var(v) => {
                let strength = if v.sort == VarSort::Individual {
                    Strength::Weak
                } else {
                    Strength::Strong
                };
                self.constrain(&v.name, v.sort, strength)
            }
            IdTerm::Sym(s) => {
                if self.is_var(s) {
                    self.constrain(s, VarSort::Individual, Strength::Weak)?;
                }
                Ok(())
            }
            IdTerm::Func(_, args) => {
                for a in args {
                    self.collect_idterm(a)?;
                }
                Ok(())
            }
            IdTerm::PathArg(p) => self.collect_path(p),
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Pass B: rewrite
    // ------------------------------------------------------------------

    fn rewrite_stmt(&mut self, stmt: &Stmt) -> XsqlResult<Stmt> {
        Ok(match stmt {
            Stmt::Select(q) => Stmt::Select(self.rewrite_query(q)?),
            Stmt::RelOp { left, op, right } => Stmt::RelOp {
                left: Box::new(self.rewrite_stmt(left)?),
                op: *op,
                right: Box::new(self.rewrite_stmt(right)?),
            },
            Stmt::CreateView(v) => Stmt::CreateView(CreateView {
                name: v.name.clone(),
                superclass: v.superclass.clone(),
                signature: v.signature.clone(),
                query: self.rewrite_query(&v.query)?,
            }),
            Stmt::AlterClass(a) => Stmt::AlterClass(AlterClass {
                class: a.class.clone(),
                signature: a.signature.clone(),
                query: self.rewrite_query(&a.query)?,
            }),
            Stmt::AddSignature { class, signature } => {
                self.db.oids_mut().sym(class);
                Stmt::AddSignature {
                    class: class.clone(),
                    signature: signature.clone(),
                }
            }
            Stmt::CreateClass(c) => Stmt::CreateClass(c.clone()),
            Stmt::CreateObject(o) => Stmt::CreateObject(CreateObject {
                name: o.name.clone(),
                classes: o.classes.clone(),
                sets: o
                    .sets
                    .iter()
                    .map(|(a, op)| Ok((a.clone(), self.rewrite_operand(op)?)))
                    .collect::<XsqlResult<_>>()?,
            }),
            Stmt::Update(u) => Stmt::Update(self.rewrite_update(u)?),
            Stmt::Explain {
                analyze,
                stmt: inner,
            } => Stmt::Explain {
                analyze: *analyze,
                stmt: Box::new(self.rewrite_stmt(inner)?),
            },
            Stmt::Stats => Stmt::Stats,
            Stmt::Begin => Stmt::Begin,
            Stmt::Commit => Stmt::Commit,
            Stmt::Rollback => Stmt::Rollback,
            Stmt::WalOn => Stmt::WalOn,
            Stmt::WalOff => Stmt::WalOff,
            Stmt::Checkpoint => Stmt::Checkpoint,
            // Passed through verbatim: the body is resolved (against the
            // then-current schema) when the session compiles it.
            Stmt::Prepare { name, stmt: inner } => Stmt::Prepare {
                name: name.clone(),
                stmt: inner.clone(),
            },
            Stmt::Execute { name, args } => Stmt::Execute {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.rewrite_idterm(a))
                    .collect::<XsqlResult<_>>()?,
            },
        })
    }

    fn rewrite_query(&mut self, q: &SelectQuery) -> XsqlResult<SelectQuery> {
        let mut select = Vec::with_capacity(q.select.len());
        for item in &q.select {
            select.push(match item {
                SelectItem::Expr(op) => SelectItem::Expr(self.rewrite_operand(op)?),
                SelectItem::Named { attr, value } => SelectItem::Named {
                    attr: attr.clone(),
                    value: match value {
                        SelectValue::Expr(op) => SelectValue::Expr(self.rewrite_operand(op)?),
                        SelectValue::Grouped(v) => SelectValue::Grouped(self.final_var(&v.name)),
                    },
                },
                SelectItem::MethodResult {
                    method,
                    args,
                    value,
                } => {
                    self.db.oids_mut().sym(method);
                    SelectItem::MethodResult {
                        method: method.clone(),
                        args: args
                            .iter()
                            .map(|a| self.rewrite_idterm(a))
                            .collect::<XsqlResult<_>>()?,
                        value: self.rewrite_operand(value)?,
                    }
                }
            });
        }
        let from = q
            .from
            .iter()
            .map(|f| {
                Ok(FromItem {
                    class: self.rewrite_idterm(&f.class)?,
                    var: self.final_var(&f.var.name),
                })
            })
            .collect::<XsqlResult<_>>()?;
        let oid_fn = match &q.oid_fn {
            None => None,
            Some(spec) => {
                if let Some(f) = &spec.function {
                    self.db.oids_mut().sym(f);
                }
                Some(OidSpec {
                    function: spec.function.clone(),
                    vars: spec.vars.iter().map(|v| self.final_var(&v.name)).collect(),
                })
            }
        };
        let where_clause = self.rewrite_cond(&q.where_clause)?;
        Ok(SelectQuery {
            select,
            from,
            oid_fn,
            where_clause,
        })
    }

    fn rewrite_update(&mut self, u: &UpdateStmt) -> XsqlResult<UpdateStmt> {
        self.db.oids_mut().sym(&u.class);
        let assignments = u
            .assignments
            .iter()
            .map(|a| {
                Ok(Assignment {
                    target: self.rewrite_path(&a.target)?,
                    value: self.rewrite_operand(&a.value)?,
                })
            })
            .collect::<XsqlResult<_>>()?;
        Ok(UpdateStmt {
            class: u.class.clone(),
            assignments,
        })
    }

    fn rewrite_cond(&mut self, c: &Cond) -> XsqlResult<Cond> {
        Ok(match c {
            Cond::True => Cond::True,
            Cond::Path(p) => Cond::Path(self.rewrite_path(p)?),
            Cond::Cmp {
                left,
                lq,
                op,
                rq,
                right,
            } => Cond::Cmp {
                left: self.rewrite_operand(left)?,
                lq: *lq,
                op: *op,
                rq: *rq,
                right: self.rewrite_operand(right)?,
            },
            Cond::SetCmp { left, op, right } => Cond::SetCmp {
                left: self.rewrite_operand(left)?,
                op: *op,
                right: self.rewrite_operand(right)?,
            },
            Cond::SubclassOf { sub, sup } => Cond::SubclassOf {
                sub: self.rewrite_idterm(sub)?,
                sup: self.rewrite_idterm(sup)?,
            },
            Cond::InstanceOf { obj, class } => Cond::InstanceOf {
                obj: self.rewrite_idterm(obj)?,
                class: self.rewrite_idterm(class)?,
            },
            Cond::And(a, b) => Cond::And(
                Box::new(self.rewrite_cond(a)?),
                Box::new(self.rewrite_cond(b)?),
            ),
            Cond::Or(a, b) => Cond::Or(
                Box::new(self.rewrite_cond(a)?),
                Box::new(self.rewrite_cond(b)?),
            ),
            Cond::Not(a) => Cond::Not(Box::new(self.rewrite_cond(a)?)),
            Cond::Update(u) => Cond::Update(self.rewrite_update(u)?),
        })
    }

    fn rewrite_operand(&mut self, op: &Operand) -> XsqlResult<Operand> {
        Ok(match op {
            Operand::Path(p) => Operand::Path(self.rewrite_path(p)?),
            Operand::Agg(f, p) => Operand::Agg(*f, self.rewrite_path(p)?),
            Operand::SetLit(ts) => Operand::SetLit(
                ts.iter()
                    .map(|t| self.rewrite_idterm(t))
                    .collect::<XsqlResult<_>>()?,
            ),
            Operand::Subquery(q) => Operand::Subquery(Box::new(self.rewrite_query(q)?)),
            Operand::Arith(a, o, b) => Operand::Arith(
                Box::new(self.rewrite_operand(a)?),
                *o,
                Box::new(self.rewrite_operand(b)?),
            ),
            Operand::Union(a, b) => Operand::Union(
                Box::new(self.rewrite_operand(a)?),
                Box::new(self.rewrite_operand(b)?),
            ),
            Operand::Intersection(a, b) => Operand::Intersection(
                Box::new(self.rewrite_operand(a)?),
                Box::new(self.rewrite_operand(b)?),
            ),
            Operand::Difference(a, b) => Operand::Difference(
                Box::new(self.rewrite_operand(a)?),
                Box::new(self.rewrite_operand(b)?),
            ),
        })
    }

    fn rewrite_path(&mut self, p: &PathExpr) -> XsqlResult<PathExpr> {
        let head = self.rewrite_idterm(&p.head)?;
        let steps = p
            .steps
            .iter()
            .map(|s| {
                Ok(match s {
                    Step::Method {
                        method,
                        args,
                        selector,
                    } => Step::Method {
                        method: match method {
                            MethodTerm::Var(name) => MethodTerm::Var(name.clone()),
                            MethodTerm::Name(name) => {
                                if self.method_position_is_var(name) {
                                    MethodTerm::Var(name.clone())
                                } else {
                                    self.db.oids_mut().sym(name);
                                    MethodTerm::Name(name.clone())
                                }
                            }
                        },
                        args: args
                            .iter()
                            .map(|a| self.rewrite_idterm(a))
                            .collect::<XsqlResult<_>>()?,
                        selector: selector
                            .as_ref()
                            .map(|t| self.rewrite_idterm(t))
                            .transpose()?,
                    },
                    Step::PathVar { name, selector } => Step::PathVar {
                        name: name.clone(),
                        selector: selector
                            .as_ref()
                            .map(|t| self.rewrite_idterm(t))
                            .transpose()?,
                    },
                })
            })
            .collect::<XsqlResult<_>>()?;
        Ok(PathExpr { head, steps })
    }

    fn final_var(&self, name: &str) -> Var {
        Var {
            name: name.to_string(),
            sort: self.sort_of(name),
        }
    }

    fn rewrite_idterm(&mut self, t: &IdTerm) -> XsqlResult<IdTerm> {
        Ok(match t {
            IdTerm::Oid(o) => IdTerm::Oid(*o),
            IdTerm::Sym(s) => {
                if self.is_var(s) {
                    IdTerm::Var(self.final_var(s))
                } else {
                    IdTerm::Oid(self.db.oids_mut().sym(s))
                }
            }
            IdTerm::Int(v) => IdTerm::Oid(self.db.oids_mut().int(*v)),
            IdTerm::Real(v) => IdTerm::Oid(self.db.oids_mut().real(*v)),
            IdTerm::Str(s) => IdTerm::Oid(self.db.oids_mut().str(s)),
            IdTerm::Bool(v) => IdTerm::Oid(self.db.oids_mut().bool(*v)),
            IdTerm::Nil => IdTerm::Oid(self.db.oids_mut().nil()),
            // Parameters survive resolution untouched; EXECUTE binds
            // them to interned OIDs without re-resolving the body.
            IdTerm::Param(n) => IdTerm::Param(*n),
            IdTerm::Var(v) => IdTerm::Var(self.final_var(&v.name)),
            IdTerm::Func(f, args) => {
                self.db.oids_mut().sym(f);
                IdTerm::Func(
                    f.clone(),
                    args.iter()
                        .map(|a| self.rewrite_idterm(a))
                        .collect::<XsqlResult<_>>()?,
                )
            }
            IdTerm::PathArg(p) => IdTerm::PathArg(Box::new(self.rewrite_path(p)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use oodb::Database;

    fn resolved(src: &str) -> (Database, Stmt) {
        let mut db = Database::new();
        let s = parse(src).unwrap();
        let r = resolve_stmt(&mut db, &s).unwrap();
        (db, r)
    }

    fn query(s: &Stmt) -> &SelectQuery {
        match s {
            Stmt::Select(q) => q,
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn single_letter_convention() {
        assert!(single_letter_var("X"));
        assert!(single_letter_var("Y2"));
        assert!(single_letter_var("W"));
        assert!(!single_letter_var("Name"));
        assert!(!single_letter_var("mary123"));
        assert!(!single_letter_var("OO_Forum"));
        assert!(!single_letter_var("x"));
    }

    #[test]
    fn from_binder_makes_variable() {
        // `Year` is multi-letter but bound by FROM (query (19)).
        let (_, s) = resolved("SELECT M FROM Numeral Year WHERE OO_Forum.(Member @ Year)[M]");
        let q = query(&s);
        match &q.where_clause {
            Cond::Path(p) => {
                assert!(matches!(&p.head, IdTerm::Oid(_))); // OO_Forum is a symbol
                match &p.steps[0] {
                    Step::Method { args, selector, .. } => {
                        assert!(matches!(&args[0], IdTerm::Var(v) if v.name == "Year"));
                        assert!(matches!(selector, Some(IdTerm::Var(v)) if v.name == "M"));
                    }
                    s => panic!("unexpected {s:?}"),
                }
            }
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn method_position_forces_method_sort() {
        // Query (3): Y in method position becomes a method variable.
        let (_, s) = resolved("SELECT Y FROM Person X WHERE X.Y.City['newyork']");
        let q = query(&s);
        match &q.select[0] {
            SelectItem::Expr(Operand::Path(p)) => {
                assert!(matches!(&p.head, IdTerm::Var(v) if v.sort == VarSort::Method));
            }
            i => panic!("unexpected {i:?}"),
        }
        match &q.where_clause {
            Cond::Path(p) => {
                assert!(matches!(
                    &p.steps[0],
                    Step::Method {
                        method: MethodTerm::Var(_),
                        ..
                    }
                ));
            }
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn literals_interned() {
        let (db, s) = resolved("SELECT X FROM Employee X WHERE X.Salary < 35000");
        let q = query(&s);
        match &q.where_clause {
            Cond::Cmp { right, .. } => match right {
                Operand::Path(p) => match &p.head {
                    IdTerm::Oid(o) => {
                        assert_eq!(db.oids().as_number(*o), Some(35000.0));
                    }
                    t => panic!("unexpected {t:?}"),
                },
                o => panic!("unexpected {o:?}"),
            },
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn class_variable_sort() {
        let (_, s) = resolved("SELECT #X WHERE TurboEngine subclassOf #X");
        let q = query(&s);
        match &q.select[0] {
            SelectItem::Expr(Operand::Path(p)) => {
                assert!(matches!(&p.head, IdTerm::Var(v) if v.sort == VarSort::Class));
            }
            i => panic!("unexpected {i:?}"),
        }
    }

    #[test]
    fn conflicting_sorts_rejected() {
        // X is a FROM-bound individual but also used with a class prefix.
        let mut db = Database::new();
        let s = parse("SELECT X FROM Person X WHERE TurboEngine subclassOf #X").unwrap();
        assert!(resolve_stmt(&mut db, &s).is_err());
    }

    #[test]
    fn from_class_position_resolves_to_oid() {
        let (db, s) = resolved("SELECT X FROM Person X");
        let q = query(&s);
        match &q.from[0].class {
            IdTerm::Oid(o) => assert_eq!(db.oids().sym_name(*o), Some("Person")),
            t => panic!("unexpected {t:?}"),
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::parser::parse;
    use oodb::Database;

    fn try_resolve(src: &str) -> XsqlResult<Stmt> {
        let mut db = Database::new();
        let s = parse(src)?;
        resolve_stmt(&mut db, &s)
    }

    #[test]
    fn grouped_var_registered_as_binder() {
        // W appears only inside {W} and WHERE; the {W} binder makes it a
        // variable even if multi-letter.
        let s = try_resolve(
            "SELECT A = X.Name, Who = {Winner} FROM C X OID FUNCTION OF X \
             WHERE X.Members[Winner]",
        )
        .unwrap();
        let Stmt::Select(q) = s else { panic!() };
        match &q.where_clause {
            Cond::Path(p) => match &p.steps[0] {
                Step::Method { selector, .. } => {
                    assert!(matches!(selector, Some(IdTerm::Var(v)) if v.name == "Winner"));
                }
                s => panic!("unexpected {s:?}"),
            },
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn oid_vars_are_binders_too() {
        let s = try_resolve("SELECT A = Emp.Salary FROM C Emp OID FUNCTION OF Emp").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        match &q.select[0] {
            SelectItem::Named {
                value: SelectValue::Expr(Operand::Path(p)),
                ..
            } => assert!(matches!(&p.head, IdTerm::Var(v) if v.name == "Emp")),
            i => panic!("unexpected {i:?}"),
        }
    }

    #[test]
    fn method_position_variable_consistent_across_occurrences() {
        // Y used in method position twice: both become method vars.
        let s = try_resolve("SELECT Y FROM C X, C Z WHERE X.\"Y and Z.\"Y").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        match &q.select[0] {
            SelectItem::Expr(Operand::Path(p)) => {
                assert!(matches!(&p.head, IdTerm::Var(v) if v.sort == VarSort::Method));
            }
            i => panic!("unexpected {i:?}"),
        }
    }

    #[test]
    fn class_var_in_from_range_and_select() {
        let s = try_resolve("SELECT #K FROM #K Y WHERE Y.Age > 1").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert!(matches!(&q.from[0].class, IdTerm::Var(v) if v.sort == VarSort::Class));
    }

    #[test]
    fn explain_resolves_inner_statement() {
        let s = try_resolve("EXPLAIN SELECT X FROM C X WHERE X.Age > 1").unwrap();
        let Stmt::Explain { stmt: inner, .. } = s else {
            panic!()
        };
        let Stmt::Select(q) = *inner else { panic!() };
        // Constant resolved to an interned OID.
        match &q.where_clause {
            Cond::Cmp { right, .. } => match right {
                Operand::Path(p) => assert!(matches!(p.head, IdTerm::Oid(_))),
                o => panic!("unexpected {o:?}"),
            },
            c => panic!("unexpected {c:?}"),
        }
    }
}
