//! Lowering: resolved statements → [`Program`]s.
//!
//! The compiler reuses the planner's recognition and cost model
//! ([`crate::plan::plan_query`] runs the same fragment checks and join
//! ordering the planned engine uses), then flattens the borrowed
//! [`crate::plan::Plan`] into the owned pools and instruction stream of
//! a [`CompiledSelect`]. Conjuncts are referenced by their index in the
//! deterministic `flatten_and` order, so the executor can re-borrow
//! them from the (possibly parameter-substituted) statement at run
//! time. Index probes are lowered to deferred [`ProbeSpec`]s: key
//! extraction and index-completeness checks happen at execution, which
//! both keeps probes sound across data changes and lets a probe key be
//! a `?n` parameter.

use super::{
    Body, CompiledSelect, KonstSrc, Op, ParamCheck, ParamFamily, ProbeSpec, Program, VmEdge,
    VmFilter, VmVar,
};
use crate::ast::*;
use crate::eval::cond::{conjunct_vars, flatten_and};
use crate::eval::select::{column_names, prepare};
use crate::eval::{vars, Ctx, EvalOptions};
use oodb::{Database, Oid};
use std::collections::BTreeSet;

/// See [`Program::compile`].
pub(super) fn compile(db: &Database, opts: &EvalOptions, stmt: Stmt, n_params: u32) -> Program {
    let epoch = db.schema_epoch();
    let mut param_checks = Vec::new();
    let mut body = Body::Fallback;
    if let Stmt::Select(q) = &stmt {
        param_checks = collect_param_checks(db, q);
        // Bytecode is the planned engine in compiled form; it only
        // engages where that engine would (pipelined strategy with the
        // planner on). Anything else falls back to the stored
        // statement, which re-enters the stock engines and keeps
        // option-selected behavior (e.g. naive's work accounting)
        // exactly as today.
        let planned_engine =
            opts.use_planner && matches!(opts.strategy, crate::eval::Strategy::Pipelined);
        if opts.use_vm && planned_engine && q.oid_fn.is_none() {
            if let Some(cs) = lower_select(db, opts, q) {
                body = Body::Select(cs);
            }
        }
    }
    Program {
        stmt,
        n_params,
        epoch,
        body,
        param_checks,
    }
}

/// Lowers one SELECT through the planner's recognizer; `None` sends the
/// statement to the fallback body.
fn lower_select(db: &Database, opts: &EvalOptions, q: &SelectQuery) -> Option<CompiledSelect> {
    let prep = prepare(q);
    let ctx = Ctx::new(db, opts);
    let plan = crate::plan::plan_query(&ctx, q, &prep)?;

    // Conjunct indices, classified exactly as `plan_query` classified
    // them (its filters/edges are pushed in flattened-conjunct order).
    let mut conjs = Vec::new();
    flatten_and(&q.where_clause, &mut conjs);
    let mut outer_vars = BTreeSet::new();
    vars::query_vars(q, &mut outer_vars);
    let mut filter_conjs: Vec<usize> = Vec::new();
    let mut edge_conjs: Vec<usize> = Vec::new();
    for (ci, c) in conjs.iter().enumerate() {
        match conjunct_vars(c, &outer_vars).len() {
            1 => filter_conjs.push(ci),
            2 => edge_conjs.push(ci),
            _ => return None,
        }
    }
    if filter_conjs.len() != plan.filters.len() || edge_conjs.len() != plan.edges.len() {
        return None;
    }
    if plan.vars.len() > u16::MAX as usize || conjs.len() > u16::MAX as usize {
        return None;
    }

    let vm_vars: Vec<VmVar> = plan
        .vars
        .iter()
        .map(|v| VmVar {
            name: v.name.to_string(),
            class: v.class,
        })
        .collect();
    let filters: Vec<VmFilter> = plan
        .filters
        .iter()
        .zip(&filter_conjs)
        .map(|(f, &ci)| VmFilter {
            var: f.var as u16,
            conj: ci as u16,
            probe: probe_spec(db, conjs[ci], plan.vars[f.var].name),
        })
        .collect();
    let edges: Vec<VmEdge> = plan
        .edges
        .iter()
        .zip(&edge_conjs)
        .map(|(e, &ci)| VmEdge {
            a: e.a as u16,
            b: e.b as u16,
            conj: ci as u16,
        })
        .collect();

    let mut ops = Vec::with_capacity(vm_vars.len() + edges.len() + plan.steps.len() + 2);
    for vi in 0..vm_vars.len() {
        ops.push(Op::InitVar { var: vi as u16 });
    }
    for ei in 0..edges.len() {
        ops.push(Op::BuildColumns { edge: ei as u16 });
    }
    for step in &plan.steps {
        let var = step.var as u16;
        let step_edges = |es: &[usize]| es.iter().map(|&e| e as u16).collect::<Vec<u16>>();
        ops.push(match &step.method {
            crate::plan::StepMethod::Scan => Op::Scan { var },
            crate::plan::StepMethod::Hash(h) => Op::HashJoin {
                var,
                hash: *h as u16,
                edges: step_edges(&step.edges),
            },
            crate::plan::StepMethod::Theta => Op::ThetaJoin {
                var,
                edges: step_edges(&step.edges),
            },
            crate::plan::StepMethod::Cross => Op::CrossJoin { var },
        });
    }
    ops.push(Op::Emit);
    ops.push(Op::Halt);

    // Emission template: every SELECT item a bare FROM variable →
    // direct row construction (mirrors the planner executor's fast
    // path). Parameters never match `IdTerm::Var`, so the template is
    // bind-invariant.
    let atom_tpl: Option<Vec<u16>> = q
        .select
        .iter()
        .map(|item| {
            let op = match item {
                SelectItem::Expr(op) => op,
                SelectItem::Named {
                    value: SelectValue::Expr(op),
                    ..
                } => op,
                _ => return None,
            };
            let Operand::Path(p) = op else {
                return None;
            };
            if !p.steps.is_empty() {
                return None;
            }
            let IdTerm::Var(v) = &p.head else {
                return None;
            };
            vm_vars
                .iter()
                .position(|pv| pv.name == v.name)
                .map(|i| i as u16)
        })
        .collect();

    Some(CompiledSelect {
        vars: vm_vars,
        filters,
        edges,
        ops,
        columns: column_names(&q.select),
        atom_tpl,
    })
}

/// Recognizes the probe shape `V.Attr op konst` (either orientation)
/// with an existential path-side quantifier, where `konst` is a bare
/// constant or parameter. Mirrors the planner's `filter_probe`, minus
/// the option/index-completeness gates (those re-apply at run time) and
/// plus parameter keys.
fn probe_spec(db: &Database, c: &Cond, var: &str) -> Option<ProbeSpec> {
    let Cond::Cmp {
        left,
        lq,
        op,
        rq,
        right,
    } = c
    else {
        return None;
    };
    let oriented = |path_op: &Operand, pq: Option<Quant>, cmp: CmpOp, konst: &Operand| {
        if pq == Some(Quant::All) {
            return None;
        }
        let Operand::Path(p) = path_op else {
            return None;
        };
        let IdTerm::Var(v) = &p.head else {
            return None;
        };
        if v.name != var {
            return None;
        }
        let [Step::Method {
            method: MethodTerm::Name(attr),
            args,
            selector: None,
        }] = p.steps.as_slice()
        else {
            return None;
        };
        if !args.is_empty() {
            return None;
        }
        let Operand::Path(k) = konst else {
            return None;
        };
        if !k.steps.is_empty() {
            return None;
        }
        let src = match &k.head {
            IdTerm::Oid(o) => KonstSrc::Oid(*o),
            IdTerm::Param(n) => KonstSrc::Param(*n),
            _ => return None,
        };
        let m = db.oids().find_sym(attr)?;
        Some(ProbeSpec {
            method: m,
            op: cmp,
            konst: src,
        })
    };
    oriented(left, *lq, *op, right).or_else(|| oriented(right, *rq, crate::plan::flip(*op), left))
}

/// Collects bind-time type checks: for every conjunct of shape
/// `path.Attr op ?n` (either orientation) where all 0-ary signatures of
/// `Attr` result in the numeral family or in `String`, the bound
/// argument must be of that family. A mis-typed argument can never
/// match (cross-family comparisons are false), so rejecting it at bind
/// turns a silent empty result into a typed error.
fn collect_param_checks(db: &Database, q: &SelectQuery) -> Vec<ParamCheck> {
    let mut conjs = Vec::new();
    flatten_and(&q.where_clause, &mut conjs);
    let class_named = |name: &str| db.oids().find_sym(name).filter(|&c| db.is_class(c));
    let num_classes: Vec<Oid> = ["Numeral", "Integer", "Real"]
        .iter()
        .filter_map(|n| class_named(n))
        .collect();
    let str_class = class_named("String");
    let mut out: Vec<ParamCheck> = Vec::new();
    for c in conjs {
        let Cond::Cmp { left, right, .. } = c else {
            continue;
        };
        for (attr_side, konst_side) in [(left, right), (right, left)] {
            let Operand::Path(p) = attr_side else {
                continue;
            };
            let [Step::Method {
                method: MethodTerm::Name(attr),
                args,
                selector: None,
            }] = p.steps.as_slice()
            else {
                continue;
            };
            if !args.is_empty() {
                continue;
            }
            let Operand::Path(k) = konst_side else {
                continue;
            };
            let (IdTerm::Param(n), []) = (&k.head, k.steps.as_slice()) else {
                continue;
            };
            let Some(m) = db.oids().find_sym(attr) else {
                continue;
            };
            let sigs = db.signatures_of_method(m, 0);
            if sigs.is_empty() {
                continue;
            }
            let family = if sigs.iter().all(|(_, s)| num_classes.contains(&s.result)) {
                ParamFamily::Numeral
            } else if sigs.iter().all(|(_, s)| Some(s.result) == str_class) {
                ParamFamily::Str
            } else {
                continue;
            };
            if out.iter().any(|pc| pc.param == *n) {
                continue;
            }
            out.push(ParamCheck {
                param: *n,
                attr: attr.clone(),
                family,
            });
        }
    }
    out
}
