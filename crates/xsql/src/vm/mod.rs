//! Bytecode VM: compiled query programs, prepared statements, and the
//! schema-epoch plan cache.
//!
//! The statement pipeline (`parse → resolve → execute`) re-does its
//! front half on every invocation of the same query text. This module
//! compiles a *resolved* statement once into a [`Program`] — a compact
//! register-bytecode form when the statement fits the planner fragment
//! of [`crate::plan`], a stored-AST fallback otherwise — and executes
//! it through a dispatch loop ([`exec`]) that ports the planner
//! executor operator for operator, including its tick discipline, so
//! budget, deadline, and cancellation behavior stay aligned and result
//! rows are bit-identical to the naive, pipelined, and planned engines.
//!
//! Three consumers sit on top:
//!
//! * **`PREPARE name AS <stmt>` / `EXECUTE name (?1, …)`** — explicit
//!   prepared statements with typed positional parameters
//!   ([`crate::ast::IdTerm::Param`]). The body is resolved and compiled
//!   at PREPARE; EXECUTE substitutes bound argument OIDs into a clone
//!   of the template ([`Program::bind`]) and runs it, paying zero
//!   parse/resolve cost. Prepared statements are **session-local** and
//!   never WAL-logged: after a crash the client must re-PREPARE (an
//!   EXECUTE against a name prepared before the crash fails cleanly
//!   with *unknown prepared statement*).
//! * **The transparent plan cache** — [`Session::run`] keys compiled
//!   programs on the whitespace-normalized statement text
//!   ([`normalize_src`]) and reuses them on textual repeats, with LRU
//!   eviction at [`PlanCache::CAPACITY`] entries.
//! * **The schema-epoch fence** — every [`Program`] records the
//!   [`oodb::Database::schema_epoch`] it was compiled under. Any
//!   definitional statement (class/signature/method/view definition,
//!   and conservatively any rollback that undid work) bumps the epoch,
//!   so cache lookup and EXECUTE both treat an epoch mismatch as an
//!   invalidation and recompile; a stale plan is structurally unable to
//!   execute. A defensive counter
//!   (`xsql_plan_cache_stale_executions_total`) counts the should-be-
//!   impossible case and is asserted zero by the chaos harness.
//!
//! Set `XSQL_VM=0` (or [`crate::eval::EvalOptions::use_vm`] `= false`)
//! to disable the VM entirely: `Session::run` then takes the historical
//! parse→execute path unchanged, and EXECUTE runs prepared bodies
//! through the stock engines.
//!
//! See `docs/VM.md` for the bytecode format and opcode table.
//!
//! [`Session::run`]: crate::Session::run

pub mod exec;
mod lower;

use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use crate::eval::EvalOptions;
use oodb::{Database, Oid};
use std::collections::HashMap;

/// One instruction of a compiled SELECT program.
///
/// The register file of the executing VM holds one *candidate-list
/// register* per FROM variable (`v<i>`), one *column register* per join
/// edge (`c<i>`), and a single flat tuple store that join opcodes
/// extend one variable at a time. Operands are indices into the
/// program's variable / filter / edge pools ([`CompiledSelect`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Load register `v[var]` with the filtered candidate list of the
    /// variable: class extent, narrowed through the attribute index
    /// when the filter's [`ProbeSpec`] applies, every survivor
    /// re-verified with the evaluator's own `holds`.
    InitVar {
        /// Variable pool index.
        var: u16,
    },
    /// Cache register `c[edge]` with the per-candidate element columns
    /// of both sides of the join edge.
    BuildColumns {
        /// Edge pool index.
        edge: u16,
    },
    /// Seed the tuple store from register `v[var]` (the driver scan).
    Scan {
        /// Variable pool index.
        var: u16,
    },
    /// Hash-join variable `v[var]` into the tuple store on edge
    /// `c[hash]`; the other `edges` are residual pair filters.
    HashJoin {
        /// Variable pool index of the new variable.
        var: u16,
        /// Edge pool index of the equality edge the hash table is
        /// built over.
        hash: u16,
        /// All edges between the new variable and the joined set
        /// (including `hash`).
        edges: Vec<u16>,
    },
    /// Nested theta-join variable `v[var]` into the tuple store,
    /// evaluating every listed edge per candidate pair.
    ThetaJoin {
        /// Variable pool index of the new variable.
        var: u16,
        /// All edges between the new variable and the joined set.
        edges: Vec<u16>,
    },
    /// Cross-product variable `v[var]` into the tuple store (no
    /// connecting edge).
    CrossJoin {
        /// Variable pool index of the new variable.
        var: u16,
    },
    /// Materialize the SELECT items of every tuple into result rows.
    Emit,
    /// End of program.
    Halt,
}

/// One FROM variable of a compiled SELECT (a candidate-list register).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmVar {
    /// Variable name (owned; the source query may be dropped).
    pub name: String,
    /// The class whose extent seeds the candidate set.
    pub class: Oid,
}

/// Where a probe key comes from at bind time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KonstSrc {
    /// A constant interned at compile time.
    Oid(Oid),
    /// The OID bound to positional parameter `?n` at EXECUTE.
    Param(u32),
}

/// A deferred attribute-index probe: `attr op konst`, materialized into
/// a typed key probe ([`crate::plan::Probe`]) when the program runs.
/// Deferral keeps the probe sound across executions: index availability
/// (`attr_index_complete`) is re-checked at run time, and a parameter
/// key only exists at bind time. A probe that does not apply degrades
/// to the plain filtered extent scan — rows are identical either way,
/// because every probe survivor is re-verified with `holds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSpec {
    /// The stored attribute (0-ary method) the ordered index is over.
    pub method: Oid,
    /// Comparison, oriented as `attr op konst`.
    pub op: CmpOp,
    /// The key (constant or parameter position).
    pub konst: KonstSrc,
}

/// A single-variable conjunct of a compiled SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmFilter {
    /// Variable pool index the filter constrains.
    pub var: u16,
    /// Index of the conjunct in the flattened WHERE clause (the
    /// executor re-flattens the bound statement; `flatten_and` order is
    /// deterministic).
    pub conj: u16,
    /// Attribute-index narrowing, when the conjunct has probe shape.
    pub probe: Option<ProbeSpec>,
}

/// A two-variable conjunct (join edge) of a compiled SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmEdge {
    /// Variable pool index owning the left / head side.
    pub a: u16,
    /// Variable pool index owning the right / selector side.
    pub b: u16,
    /// Index of the conjunct in the flattened WHERE clause.
    pub conj: u16,
}

/// The compiled form of a planner-fragment SELECT: the pools the
/// opcodes index into, the instruction stream, and the emission
/// template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSelect {
    /// FROM variables, in FROM order.
    pub vars: Vec<VmVar>,
    /// Single-variable conjuncts.
    pub filters: Vec<VmFilter>,
    /// Two-variable conjuncts.
    pub edges: Vec<VmEdge>,
    /// The instruction stream: `InitVar*`, `BuildColumns*`, one join
    /// opcode per step of the cost-chosen order, `Emit`, `Halt`.
    pub ops: Vec<Op>,
    /// Output column names.
    pub columns: Vec<String>,
    /// When every SELECT item is a bare FROM variable: the variable
    /// pool indices per output column (direct row construction, no
    /// binding stack).
    pub atom_tpl: Option<Vec<u16>>,
}

/// How a [`Program`] executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Register bytecode for a planner-fragment SELECT, run by the
    /// dispatch loop of [`exec`].
    Select(CompiledSelect),
    /// Everything else: the stored resolved statement re-enters the
    /// stock execution path (`execute_resolved`). Still zero
    /// parse/resolve cost on reuse.
    Fallback,
}

/// Value family a typed parameter must belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamFamily {
    /// A numeral object (integer or real).
    Numeral,
    /// A string object.
    Str,
}

impl std::fmt::Display for ParamFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ParamFamily::Numeral => "Numeral",
            ParamFamily::Str => "String",
        })
    }
}

/// A bind-time type check recorded at compile time from a conjunct of
/// shape `V.Attr op ?n`, when every 0-ary signature of `Attr` results
/// in the named family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamCheck {
    /// Parameter position (1-based).
    pub param: u32,
    /// Attribute the parameter is compared against (for the error).
    pub attr: String,
    /// Required family.
    pub family: ParamFamily,
}

/// A compiled statement: the resolved template (parameter placeholders
/// intact), its execution body, and the schema epoch it is valid for.
#[derive(Debug, Clone)]
pub struct Program {
    /// The resolved statement template. Parameters remain as
    /// [`IdTerm::Param`] until [`Program::bind`].
    pub stmt: Stmt,
    /// Number of positional parameters (the highest `?n`).
    pub n_params: u32,
    /// [`oodb::Database::schema_epoch`] at compile time. The program
    /// must not execute under any other epoch: resolved OIDs and the
    /// compiled shape may reference definitions that no longer hold.
    pub epoch: u64,
    /// Execution body.
    pub body: Body,
    /// Bind-time parameter type checks.
    pub param_checks: Vec<ParamCheck>,
}

impl Program {
    /// Compiles a resolved statement under the given database and
    /// options. Statements inside the planner fragment lower to
    /// bytecode; everything else gets the [`Body::Fallback`] body. With
    /// [`EvalOptions::use_vm`] off, compilation always produces the
    /// fallback body, so EXECUTE runs through today's engine paths
    /// unchanged.
    pub fn compile(db: &Database, opts: &EvalOptions, stmt: Stmt, n_params: u32) -> Program {
        lower::compile(db, opts, stmt, n_params)
    }

    /// Substitutes bound argument OIDs for the parameter placeholders,
    /// returning the executable statement. Checks arity and the
    /// recorded per-parameter family constraints; errors are typed and
    /// name the offending parameter.
    pub fn bind(&self, args: &[Oid], db: &Database) -> XsqlResult<Stmt> {
        if args.len() != self.n_params as usize {
            return Err(XsqlError::Resolve(format!(
                "EXECUTE: statement takes {} parameter(s), got {}",
                self.n_params,
                args.len()
            )));
        }
        for check in &self.param_checks {
            let o = args[(check.param - 1) as usize];
            let ok = match check.family {
                ParamFamily::Numeral => db.oids().as_number(o).is_some(),
                ParamFamily::Str => matches!(db.oids().get(o), oodb::OidData::Str(_)),
            };
            if !ok {
                return Err(XsqlError::Resolve(format!(
                    "EXECUTE: parameter ?{} is compared against `{}`, which is {}-valued, \
                     but the bound argument `{}` is not a {}",
                    check.param,
                    check.attr,
                    check.family,
                    db.render(o),
                    check.family
                )));
            }
        }
        let mut bound = self.stmt.clone();
        subst_stmt(&mut bound, args);
        Ok(bound)
    }

    /// Renders the instruction stream, one line per opcode (program
    /// disassembly — used by the profile hook and by tests).
    pub fn disassemble(&self) -> Vec<String> {
        let Body::Select(cs) = &self.body else {
            return vec!["fallback: stored resolved statement".to_string()];
        };
        let edge_list = |edges: &[u16]| {
            edges
                .iter()
                .map(|e| format!("c{e}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        cs.ops
            .iter()
            .map(|op| match op {
                Op::InitVar { var } => {
                    let v = &cs.vars[*var as usize];
                    let nf = cs.filters.iter().filter(|f| f.var == *var).count();
                    let np = cs
                        .filters
                        .iter()
                        .filter(|f| f.var == *var && f.probe.is_some())
                        .count();
                    format!(
                        "v{var} = init {} ({} filter(s), {} probe(s))",
                        v.name, nf, np
                    )
                }
                Op::BuildColumns { edge } => {
                    let e = &cs.edges[*edge as usize];
                    format!(
                        "c{edge} = columns {}~{}",
                        cs.vars[e.a as usize].name, cs.vars[e.b as usize].name
                    )
                }
                Op::Scan { var } => format!("scan v{var}"),
                Op::HashJoin { var, hash, edges } => {
                    format!("hashjoin v{var} on c{hash} [{}]", edge_list(edges))
                }
                Op::ThetaJoin { var, edges } => {
                    format!("thetajoin v{var} [{}]", edge_list(edges))
                }
                Op::CrossJoin { var } => format!("crossjoin v{var}"),
                Op::Emit => format!("emit {} column(s)", cs.columns.len()),
                Op::Halt => "halt".to_string(),
            })
            .collect()
    }
}

/// The highest parameter position `?n` occurring anywhere in the
/// statement (0 when parameter-free). Doubles as the arity: parameters
/// are positional `?1…?n`.
pub fn max_param(stmt: &Stmt) -> u32 {
    let mut max = 0;
    walk_stmt(stmt, &mut |t| {
        if let IdTerm::Param(n) = t {
            max = max.max(*n);
        }
    });
    max
}

/// True when `Session::run` may cache a compiled program for this
/// statement: plain SELECTs (no object creation — `OID FUNCTION OF`
/// mints fresh OIDs per run) and relational-algebra trees of such,
/// without parameter placeholders.
pub fn cacheable(stmt: &Stmt) -> bool {
    fn sel_ok(stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Select(q) => q.oid_fn.is_none(),
            Stmt::RelOp { left, right, .. } => sel_ok(left) && sel_ok(right),
            _ => false,
        }
    }
    sel_ok(stmt) && max_param(stmt) == 0
}

/// The plan-cache key: statement text with runs of whitespace collapsed
/// to single spaces (so reformatting does not defeat the cache; the
/// language keeps case significant, so case is preserved).
pub fn normalize_src(src: &str) -> String {
    src.split_whitespace().collect::<Vec<_>>().join(" ")
}

// ---------------------------------------------------------------------
// AST walkers: parameter discovery and substitution
// ---------------------------------------------------------------------

fn walk_stmt(stmt: &Stmt, f: &mut dyn FnMut(&IdTerm)) {
    match stmt {
        Stmt::Select(q) => walk_query(q, f),
        Stmt::RelOp { left, right, .. } => {
            walk_stmt(left, f);
            walk_stmt(right, f);
        }
        Stmt::CreateView(v) => walk_query(&v.query, f),
        Stmt::AlterClass(a) => walk_query(&a.query, f),
        Stmt::Update(u) => walk_update(u, f),
        Stmt::CreateObject(o) => {
            for (_, op) in &o.sets {
                walk_operand(op, f);
            }
        }
        Stmt::Explain { stmt, .. } => walk_stmt(stmt, f),
        Stmt::Prepare { stmt, .. } => walk_stmt(stmt, f),
        Stmt::Execute { args, .. } => {
            for a in args {
                walk_idterm(a, f);
            }
        }
        Stmt::AddSignature { .. }
        | Stmt::CreateClass(_)
        | Stmt::Stats
        | Stmt::Begin
        | Stmt::Commit
        | Stmt::Rollback
        | Stmt::WalOn
        | Stmt::WalOff
        | Stmt::Checkpoint => {}
    }
}

fn walk_query(q: &SelectQuery, f: &mut dyn FnMut(&IdTerm)) {
    for item in &q.select {
        match item {
            SelectItem::Expr(op) => walk_operand(op, f),
            SelectItem::Named { value, .. } => match value {
                SelectValue::Expr(op) => walk_operand(op, f),
                SelectValue::Grouped(_) => {}
            },
            SelectItem::MethodResult { args, value, .. } => {
                for a in args {
                    walk_idterm(a, f);
                }
                walk_operand(value, f);
            }
        }
    }
    for fi in &q.from {
        walk_idterm(&fi.class, f);
    }
    walk_cond(&q.where_clause, f);
}

fn walk_cond(c: &Cond, f: &mut dyn FnMut(&IdTerm)) {
    match c {
        Cond::True => {}
        Cond::Path(p) => walk_path(p, f),
        Cond::Cmp { left, right, .. } => {
            walk_operand(left, f);
            walk_operand(right, f);
        }
        Cond::SetCmp { left, right, .. } => {
            walk_operand(left, f);
            walk_operand(right, f);
        }
        Cond::SubclassOf { sub, sup } => {
            walk_idterm(sub, f);
            walk_idterm(sup, f);
        }
        Cond::InstanceOf { obj, class } => {
            walk_idterm(obj, f);
            walk_idterm(class, f);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            walk_cond(a, f);
            walk_cond(b, f);
        }
        Cond::Not(a) => walk_cond(a, f),
        Cond::Update(u) => walk_update(u, f),
    }
}

fn walk_update(u: &UpdateStmt, f: &mut dyn FnMut(&IdTerm)) {
    for a in &u.assignments {
        walk_path(&a.target, f);
        walk_operand(&a.value, f);
    }
}

fn walk_operand(op: &Operand, f: &mut dyn FnMut(&IdTerm)) {
    match op {
        Operand::Path(p) => walk_path(p, f),
        Operand::Agg(_, p) => walk_path(p, f),
        Operand::SetLit(ts) => {
            for t in ts {
                walk_idterm(t, f);
            }
        }
        Operand::Subquery(q) => walk_query(q, f),
        Operand::Arith(a, _, b)
        | Operand::Union(a, b)
        | Operand::Intersection(a, b)
        | Operand::Difference(a, b) => {
            walk_operand(a, f);
            walk_operand(b, f);
        }
    }
}

fn walk_path(p: &PathExpr, f: &mut dyn FnMut(&IdTerm)) {
    walk_idterm(&p.head, f);
    for s in &p.steps {
        match s {
            Step::Method { args, selector, .. } => {
                for a in args {
                    walk_idterm(a, f);
                }
                if let Some(sel) = selector {
                    walk_idterm(sel, f);
                }
            }
            Step::PathVar { selector, .. } => {
                if let Some(sel) = selector {
                    walk_idterm(sel, f);
                }
            }
        }
    }
}

fn walk_idterm(t: &IdTerm, f: &mut dyn FnMut(&IdTerm)) {
    f(t);
    match t {
        IdTerm::Func(_, args) => {
            for a in args {
                walk_idterm(a, f);
            }
        }
        IdTerm::PathArg(p) => walk_path(p, f),
        _ => {}
    }
}

fn subst_stmt(stmt: &mut Stmt, args: &[Oid]) {
    match stmt {
        Stmt::Select(q) => subst_query(q, args),
        Stmt::RelOp { left, right, .. } => {
            subst_stmt(left, args);
            subst_stmt(right, args);
        }
        Stmt::CreateView(v) => subst_query(&mut v.query, args),
        Stmt::AlterClass(a) => subst_query(&mut a.query, args),
        Stmt::Update(u) => subst_update(u, args),
        Stmt::CreateObject(o) => {
            for (_, op) in &mut o.sets {
                subst_operand(op, args);
            }
        }
        Stmt::Explain { stmt, .. } => subst_stmt(stmt, args),
        Stmt::Prepare { stmt, .. } => subst_stmt(stmt, args),
        Stmt::Execute { args: eargs, .. } => {
            for a in eargs {
                subst_idterm(a, args);
            }
        }
        Stmt::AddSignature { .. }
        | Stmt::CreateClass(_)
        | Stmt::Stats
        | Stmt::Begin
        | Stmt::Commit
        | Stmt::Rollback
        | Stmt::WalOn
        | Stmt::WalOff
        | Stmt::Checkpoint => {}
    }
}

fn subst_query(q: &mut SelectQuery, args: &[Oid]) {
    for item in &mut q.select {
        match item {
            SelectItem::Expr(op) => subst_operand(op, args),
            SelectItem::Named { value, .. } => match value {
                SelectValue::Expr(op) => subst_operand(op, args),
                SelectValue::Grouped(_) => {}
            },
            SelectItem::MethodResult {
                args: margs, value, ..
            } => {
                for a in margs {
                    subst_idterm(a, args);
                }
                subst_operand(value, args);
            }
        }
    }
    for fi in &mut q.from {
        subst_idterm(&mut fi.class, args);
    }
    subst_cond(&mut q.where_clause, args);
}

fn subst_cond(c: &mut Cond, args: &[Oid]) {
    match c {
        Cond::True => {}
        Cond::Path(p) => subst_path(p, args),
        Cond::Cmp { left, right, .. } => {
            subst_operand(left, args);
            subst_operand(right, args);
        }
        Cond::SetCmp { left, right, .. } => {
            subst_operand(left, args);
            subst_operand(right, args);
        }
        Cond::SubclassOf { sub, sup } => {
            subst_idterm(sub, args);
            subst_idterm(sup, args);
        }
        Cond::InstanceOf { obj, class } => {
            subst_idterm(obj, args);
            subst_idterm(class, args);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            subst_cond(a, args);
            subst_cond(b, args);
        }
        Cond::Not(a) => subst_cond(a, args),
        Cond::Update(u) => subst_update(u, args),
    }
}

fn subst_update(u: &mut UpdateStmt, args: &[Oid]) {
    for a in &mut u.assignments {
        subst_path(&mut a.target, args);
        subst_operand(&mut a.value, args);
    }
}

fn subst_operand(op: &mut Operand, args: &[Oid]) {
    match op {
        Operand::Path(p) => subst_path(p, args),
        Operand::Agg(_, p) => subst_path(p, args),
        Operand::SetLit(ts) => {
            for t in ts {
                subst_idterm(t, args);
            }
        }
        Operand::Subquery(q) => subst_query(q, args),
        Operand::Arith(a, _, b)
        | Operand::Union(a, b)
        | Operand::Intersection(a, b)
        | Operand::Difference(a, b) => {
            subst_operand(a, args);
            subst_operand(b, args);
        }
    }
}

fn subst_path(p: &mut PathExpr, args: &[Oid]) {
    subst_idterm(&mut p.head, args);
    for s in &mut p.steps {
        match s {
            Step::Method {
                args: margs,
                selector,
                ..
            } => {
                for a in margs {
                    subst_idterm(a, args);
                }
                if let Some(sel) = selector {
                    subst_idterm(sel, args);
                }
            }
            Step::PathVar { selector, .. } => {
                if let Some(sel) = selector {
                    subst_idterm(sel, args);
                }
            }
        }
    }
}

fn subst_idterm(t: &mut IdTerm, args: &[Oid]) {
    match t {
        IdTerm::Param(n) => {
            // Arity was checked in `bind`; a placeholder beyond the
            // argument list cannot be reached from there.
            if let Some(&o) = args.get((*n - 1) as usize) {
                *t = IdTerm::Oid(o);
            }
        }
        IdTerm::Func(_, fargs) => {
            for a in fargs {
                subst_idterm(a, args);
            }
        }
        IdTerm::PathArg(p) => subst_path(p, args),
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

/// Cached handles for the plan-cache metrics, re-derived whenever the
/// session's registry is swapped.
#[derive(Debug)]
pub struct CacheMetrics {
    /// `xsql_plan_cache_hits_total`.
    pub hits: std::sync::Arc<telemetry::Counter>,
    /// `xsql_plan_cache_misses_total`.
    pub misses: std::sync::Arc<telemetry::Counter>,
    /// `xsql_plan_cache_evictions_total`.
    pub evictions: std::sync::Arc<telemetry::Counter>,
    /// `xsql_plan_cache_invalidations_total`.
    pub invalidations: std::sync::Arc<telemetry::Counter>,
    /// `xsql_plan_cache_stale_executions_total` — defensively counts a
    /// program reaching execution under a foreign schema epoch. The
    /// epoch fence makes this structurally unreachable; the chaos
    /// harness asserts it stays 0.
    pub stale_executions: std::sync::Arc<telemetry::Counter>,
    /// `xsql_plan_cache_size` gauge.
    pub size: std::sync::Arc<telemetry::Gauge>,
}

impl CacheMetrics {
    /// Derives the metric handles from a registry.
    pub fn new(registry: &telemetry::Registry) -> CacheMetrics {
        CacheMetrics {
            hits: registry.counter("xsql_plan_cache_hits_total", &[]),
            misses: registry.counter("xsql_plan_cache_misses_total", &[]),
            evictions: registry.counter("xsql_plan_cache_evictions_total", &[]),
            invalidations: registry.counter("xsql_plan_cache_invalidations_total", &[]),
            stale_executions: registry.counter("xsql_plan_cache_stale_executions_total", &[]),
            size: registry.gauge("xsql_plan_cache_size", &[]),
        }
    }
}

struct CacheEntry {
    prog: std::sync::Arc<Program>,
    /// LRU stamp: the cache tick of the last touch.
    stamp: u64,
}

impl std::fmt::Debug for CacheEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("epoch", &self.prog.epoch)
            .field("stamp", &self.stamp)
            .finish()
    }
}

/// The transparent, session-local plan cache: compiled programs keyed
/// on normalized statement text, fenced by schema epoch, evicted LRU.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: HashMap<String, CacheEntry>,
    tick: u64,
}

impl PlanCache {
    /// Maximum number of cached programs; the least recently used entry
    /// is evicted beyond this.
    pub const CAPACITY: usize = 64;

    /// A fresh, empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key` under the current schema epoch. A hit bumps the
    /// LRU stamp and counts `hits`; an entry compiled under another
    /// epoch is dropped (counted as `invalidations` *and* the miss it
    /// becomes); a plain miss counts `misses`.
    pub fn lookup(
        &mut self,
        key: &str,
        epoch: u64,
        m: &CacheMetrics,
    ) -> Option<std::sync::Arc<Program>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) if entry.prog.epoch == epoch => {
                entry.stamp = self.tick;
                m.hits.inc();
                Some(std::sync::Arc::clone(&entry.prog))
            }
            Some(_) => {
                self.map.remove(key);
                m.invalidations.inc();
                m.misses.inc();
                m.size.set(self.map.len() as i64);
                None
            }
            None => {
                m.misses.inc();
                None
            }
        }
    }

    /// Inserts a freshly compiled program, evicting the least recently
    /// used entry when full.
    pub fn insert(&mut self, key: String, prog: std::sync::Arc<Program>, m: &CacheMetrics) {
        self.tick += 1;
        if self.map.len() >= Self::CAPACITY && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                m.evictions.inc();
            }
        }
        self.map.insert(
            key,
            CacheEntry {
                prog,
                stamp: self.tick,
            },
        );
        m.size.set(self.map.len() as i64);
    }

    /// Drops every cached program (used when the database is replaced
    /// wholesale, e.g. on replica catch-up resets).
    pub fn clear(&mut self, m: &CacheMetrics) {
        self.map.clear();
        m.size.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn max_param_walks_nested_positions() {
        let s = parse("SELECT X FROM Employee X WHERE X.Salary > ?2 AND X.Age < ?1").unwrap();
        assert_eq!(max_param(&s), 2);
        let s = parse("SELECT X FROM Employee X WHERE X.Name[?3]").unwrap();
        assert_eq!(max_param(&s), 3);
        let s = parse("SELECT X FROM Employee X").unwrap();
        assert_eq!(max_param(&s), 0);
    }

    #[test]
    fn normalizes_whitespace_only() {
        assert_eq!(
            normalize_src("SELECT   X\n  FROM Employee\tX"),
            "SELECT X FROM Employee X"
        );
        // Case stays significant.
        assert_ne!(
            normalize_src("select x from Employee x"),
            normalize_src("SELECT X FROM Employee X")
        );
    }

    #[test]
    fn cacheable_excludes_creation_and_params() {
        let ok = parse("SELECT X FROM Employee X").unwrap();
        assert!(cacheable(&ok));
        let relop = parse("SELECT X FROM Employee X UNION SELECT X FROM Employee X").unwrap();
        assert!(cacheable(&relop));
        let oid_fn = parse("SELECT Name = X.Name FROM Employee X OID FUNCTION OF X").unwrap();
        assert!(!cacheable(&oid_fn));
        let param = parse("SELECT X FROM Employee X WHERE X.Salary > ?1").unwrap();
        assert!(!cacheable(&param));
    }
}
