//! The dispatch loop: executes a [`CompiledSelect`]'s instruction
//! stream against a live database.
//!
//! This is an operator-for-operator port of the planner executor
//! (`crate::plan::exec`): candidates come from the same extents
//! filtered by the same `sort_ok`/`holds`, join edges run through the
//! same `compare`/`set_compare`/hash-key canonicalization over cached
//! columns, and emission goes through the same `emit_rows` (or a
//! bare-variable fast path). The tick discipline is equivalent — one
//! tick per candidate examined, per hash probe hit, per theta pair, per
//! emitted cell — so budgets, deadlines, and cancellation keep firing
//! in proportion to work done, and result rows are bit-identical to the
//! other engines. (Tuple-budget charges are batched per driving tuple
//! rather than per pair: same totals, chunk-granular limit checks, far
//! fewer atomic bumps on large joins.)
//!
//! The differences from the planner executor are deliberate:
//!
//! * **Probes materialize at run time.** A compiled [`ProbeSpec`]
//!   becomes a typed key probe only if the attribute index is complete
//!   *now* (and the key may come from a bound parameter). A probe that
//!   does not apply degrades to the plain filtered scan — the rows are
//!   the same either way, because probes only narrow and every
//!   candidate is re-verified with `holds`.
//! * **Conjuncts are re-borrowed per execution.** Opcodes reference
//!   conjuncts by index into the flattened WHERE clause of the bound
//!   statement, so one compiled program serves every parameter binding.

use super::{Body, CompiledSelect, KonstSrc, Op, ProbeSpec, Program};
use crate::ast::{
    CmpOp, Cond, IdTerm, MethodTerm, Operand, PathExpr, Quant, SelectQuery, SetCmpOp, Step,
};
use crate::error::{XsqlError, XsqlResult};
use crate::eval::bindings::Bindings;
use crate::eval::cond::flatten_and;
use crate::eval::select::emit_rows;
use crate::eval::value::{Cell, Elem};
use crate::eval::Ctx;
use crate::plan::exec::{f64_cmp, CanonKey};
use crate::plan::{probe_for, Probe};
use oodb::Oid;
use std::collections::{BTreeSet, HashMap};

/// One all-`f64` theta edge for the tight loop (columns, comparator,
/// whether the new variable is the left side, other side's tuple slot).
type FastEdge<'a> = (&'a [f64], &'a [f64], CmpOp, bool, usize);

/// A join edge re-borrowed from the bound statement.
struct REdge<'q> {
    a: usize,
    b: usize,
    kind: RKind<'q>,
}

enum RKind<'q> {
    Cmp {
        left: &'q Operand,
        lq: Option<Quant>,
        op: CmpOp,
        rq: Option<Quant>,
        right: &'q Operand,
    },
    SetCmp {
        left: &'q Operand,
        op: SetCmpOp,
        right: &'q Operand,
    },
    /// `A.Path[B]` with the selector stripped (rebuilt per execution —
    /// the stripped clone is the only owned piece).
    SetLink { path: PathExpr },
}

/// Cached per-candidate element columns of one edge.
struct EdgeColumns {
    a: Vec<Vec<Elem>>,
    b: Vec<Vec<Elem>>,
    fast: Option<(Vec<f64>, Vec<f64>)>,
}

/// Result rows of one program run.
///
/// The all-OID form is the fast exit: when every SELECT item is a bare
/// FROM variable *and* the template mentions every variable, join
/// tuples are distinct by construction, so the rows need neither
/// interning nor dedup — the caller bulk-builds the relation with one
/// sort instead of paying a `Cell` materialization, a sorted-set build
/// here, and a second tree descent per row there.
pub(crate) enum SelectRows {
    /// Distinct bare-variable rows, in tuple-store order.
    Atoms(Vec<Vec<Oid>>),
    /// General emission: deduped, sorted cell rows.
    Cells(BTreeSet<Vec<Cell>>),
}

fn internal(msg: &str) -> XsqlError {
    XsqlError::Internal(format!("vm: {msg}"))
}

/// Runs a compiled SELECT program over the (already parameter-bound)
/// query, returning the result rows. The caller pairs them with
/// [`CompiledSelect::columns`].
pub(crate) fn run_select(ctx: &Ctx<'_>, prog: &Program, q: &SelectQuery) -> XsqlResult<SelectRows> {
    let Body::Select(cs) = &prog.body else {
        return Err(internal("run_select on a fallback program"));
    };
    let mut conjs: Vec<&Cond> = Vec::new();
    flatten_and(&q.where_clause, &mut conjs);
    let redges = runtime_edges(cs, &conjs)?;
    validate(cs)?;
    if let Some(p) = &ctx.opts.profile {
        p.record_strategy("vm", 1);
        p.record_plan(prog.disassemble());
    }

    let nvars = cs.vars.len();
    // The register file: candidate lists, edge columns, tuple store.
    let mut cands: Vec<Vec<Oid>> = vec![Vec::new(); nvars];
    let mut columns: Vec<Option<EdgeColumns>> = (0..cs.edges.len()).map(|_| None).collect();
    let mut slot: Vec<usize> = vec![usize::MAX; nvars];
    let mut width = 0usize;
    let mut tuples: Vec<u32> = Vec::new();
    let mut ntuples = 0usize;
    let mut rows: BTreeSet<Vec<Cell>> = BTreeSet::new();
    let mut atoms: Option<Vec<Vec<Oid>>> = None;

    for op in &cs.ops {
        match op {
            Op::InitVar { var } => {
                let vi = *var as usize;
                cands[vi] = init_var(ctx, cs, &conjs, vi)?;
            }
            Op::BuildColumns { edge } => {
                let ei = *edge as usize;
                columns[ei] = Some(build_columns(ctx, cs, &redges[ei], &cands)?);
            }
            Op::Scan { var } => {
                let vi = *var as usize;
                tuples = (0..cands[vi].len() as u32).collect();
                width = 1;
                ntuples = tuples.len();
                ctx.count_tuples(ntuples)?;
                slot[vi] = width - 1;
            }
            Op::CrossJoin { var } => {
                let vi = *var as usize;
                let ncand = cands[vi].len() as u32;
                let mut next = Vec::new();
                for t in tuples.chunks_exact(width.max(1)) {
                    for ci in 0..ncand {
                        ctx.tick()?;
                        next.extend_from_slice(t);
                        next.push(ci);
                    }
                    // One budget charge per driving tuple: totals are
                    // unchanged, the limit check just lands at chunk
                    // granularity instead of per pair.
                    ctx.count_tuples(ncand as usize)?;
                }
                tuples = next;
                width += 1;
                ntuples = tuples.len() / width;
                slot[vi] = width - 1;
            }
            Op::HashJoin { var, hash, edges } => {
                let vi = *var as usize;
                let hei = *hash as usize;
                let e = &redges[hei];
                let new_is_a = e.a == vi;
                let cols = columns[hei].as_ref().expect("validated: columns built");
                let build_col = if new_is_a { &cols.a } else { &cols.b };
                let probe_col = if new_is_a { &cols.b } else { &cols.a };
                let other_slot = slot[if new_is_a { e.b } else { e.a }];
                let mut table: HashMap<CanonKey, Vec<u32>> = HashMap::new();
                for (ci, elems) in build_col.iter().enumerate() {
                    ctx.tick()?;
                    for &el in elems {
                        if let Some(k) = CanonKey::of(ctx, el) {
                            let bucket = table.entry(k).or_default();
                            if bucket.last() != Some(&(ci as u32)) {
                                bucket.push(ci as u32);
                            }
                        }
                    }
                }
                let residual: Vec<usize> = edges
                    .iter()
                    .map(|&e| e as usize)
                    .filter(|&ei| ei != hei)
                    .collect();
                let mut next = Vec::new();
                let mut count = 0usize;
                let mut matched: Vec<u32> = Vec::new();
                for t in tuples.chunks_exact(width) {
                    let probe_ci = t[other_slot] as usize;
                    matched.clear();
                    for &el in &probe_col[probe_ci] {
                        if let Some(k) = CanonKey::of(ctx, el) {
                            if let Some(bucket) = table.get(&k) {
                                matched.extend_from_slice(bucket);
                            }
                        }
                    }
                    matched.sort_unstable();
                    matched.dedup();
                    let before = count;
                    'new: for &ci in &matched {
                        ctx.tick()?;
                        for &ei in &residual {
                            let (ai, bi) = pair(&redges[ei], vi, ci, t, &slot);
                            if !edge_holds(ctx, &redges[ei], &columns[ei], ai, bi) {
                                continue 'new;
                            }
                        }
                        count += 1;
                        next.extend_from_slice(t);
                        next.push(ci);
                    }
                    if count > before {
                        ctx.count_tuples(count - before)?;
                    }
                }
                tuples = next;
                width += 1;
                ntuples = count;
                slot[vi] = width - 1;
            }
            Op::ThetaJoin { var, edges } => {
                let vi = *var as usize;
                let ncand = cands[vi].len() as u32;
                // All-f64 edges: raw-number comparisons in a tight loop.
                let fast: Option<Vec<FastEdge>> = edges
                    .iter()
                    .map(|&eidx| {
                        let ei = eidx as usize;
                        let e = &redges[ei];
                        let cols = columns[ei].as_ref()?;
                        let (fa, fb) = cols.fast.as_ref()?;
                        let RKind::Cmp { op, .. } = &e.kind else {
                            return None;
                        };
                        let new_is_a = e.a == vi;
                        let other_slot = slot[if new_is_a { e.b } else { e.a }];
                        Some((fa.as_slice(), fb.as_slice(), *op, new_is_a, other_slot))
                    })
                    .collect();
                let mut next = Vec::new();
                let mut count = 0usize;
                if let Some(fast) = fast {
                    let mut sides: Vec<(CmpOp, &[f64], f64, bool)> = Vec::with_capacity(fast.len());
                    for t in tuples.chunks_exact(width) {
                        sides.clear();
                        sides.extend(fast.iter().map(|&(fa, fb, op, new_is_a, os)| {
                            let other = t[os] as usize;
                            if new_is_a {
                                (op, fa, fb[other], true)
                            } else {
                                (op, fb, fa[other], false)
                            }
                        }));
                        let before = count;
                        'fcand: for ci in 0..ncand as usize {
                            ctx.tick()?;
                            for &(op, col, other, new_is_left) in &sides {
                                let ok = if new_is_left {
                                    f64_cmp(op, col[ci], other)
                                } else {
                                    f64_cmp(op, other, col[ci])
                                };
                                if !ok {
                                    continue 'fcand;
                                }
                            }
                            count += 1;
                            next.extend_from_slice(t);
                            next.push(ci as u32);
                        }
                        if count > before {
                            ctx.count_tuples(count - before)?;
                        }
                    }
                } else {
                    for t in tuples.chunks_exact(width) {
                        let before = count;
                        'cand: for ci in 0..ncand {
                            ctx.tick()?;
                            for &eidx in edges {
                                let ei = eidx as usize;
                                let (ai, bi) = pair(&redges[ei], vi, ci, t, &slot);
                                if !edge_holds(ctx, &redges[ei], &columns[ei], ai, bi) {
                                    continue 'cand;
                                }
                            }
                            count += 1;
                            next.extend_from_slice(t);
                            next.push(ci);
                        }
                        if count > before {
                            ctx.count_tuples(count - before)?;
                        }
                    }
                }
                tuples = next;
                width += 1;
                ntuples = count;
                slot[vi] = width - 1;
            }
            Op::Emit => {
                if let Some(tpl) = &cs.atom_tpl {
                    // Does the template mention every FROM variable? If
                    // so the join tuples' distinctness carries over to
                    // the rows and the sorted-set dedup below is
                    // redundant.
                    let mut mentioned = vec![false; nvars];
                    for &vi in tpl {
                        mentioned[vi as usize] = true;
                    }
                    if mentioned.iter().all(|&m| m) {
                        let ncells = tpl.len() as u64;
                        let mut out: Vec<Vec<Oid>> = Vec::with_capacity(ntuples);
                        for t in tuples.chunks_exact(width.max(1)) {
                            if let Some(p) = &ctx.opts.profile {
                                p.count_solution();
                            }
                            ctx.tick_n(ncells)?;
                            ctx.check_binding_set(1)?;
                            let mut row = Vec::with_capacity(tpl.len());
                            for &vi in tpl {
                                let vi = vi as usize;
                                row.push(cands[vi][t[slot[vi]] as usize]);
                            }
                            out.push(row);
                        }
                        ctx.count_tuples(out.len())?;
                        atoms = Some(out);
                        continue;
                    }
                    let mut out: Vec<Vec<Cell>> = Vec::with_capacity(ntuples);
                    for t in tuples.chunks_exact(width.max(1)) {
                        if let Some(p) = &ctx.opts.profile {
                            p.count_solution();
                        }
                        let mut row = Vec::with_capacity(tpl.len());
                        for &vi in tpl {
                            ctx.tick()?;
                            ctx.check_binding_set(1)?;
                            let vi = vi as usize;
                            row.push(Cell::Obj(cands[vi][t[slot[vi]] as usize]));
                        }
                        out.push(row);
                    }
                    rows = out.into_iter().collect();
                    ctx.count_tuples(rows.len())?;
                } else {
                    let mut bnd = Bindings::new();
                    let mark = bnd.mark();
                    for t in tuples.chunks_exact(width.max(1)) {
                        for (vi, v) in cs.vars.iter().enumerate() {
                            bnd.push(&v.name, cands[vi][t[slot[vi]] as usize]);
                        }
                        if let Some(p) = &ctx.opts.profile {
                            p.count_solution();
                        }
                        emit_rows(ctx, &q.select, &bnd, &mut rows)?;
                        bnd.truncate(mark);
                    }
                }
            }
            Op::Halt => break,
        }
    }
    Ok(match atoms {
        Some(out) => SelectRows::Atoms(out),
        None => SelectRows::Cells(rows),
    })
}

/// Static sanity pass over the instruction stream: every register is
/// written before a join reads it, joins stay in-bounds. Compiled
/// programs always satisfy this; the check turns a compiler bug into a
/// typed error instead of a panic.
fn validate(cs: &CompiledSelect) -> XsqlResult<()> {
    let mut var_ok = vec![false; cs.vars.len()];
    let mut col_ok = vec![false; cs.edges.len()];
    let mut joined = vec![false; cs.vars.len()];
    let var_at = |v: u16, ok: &[bool]| -> XsqlResult<usize> {
        let vi = v as usize;
        if vi >= ok.len() || !ok[vi] {
            return Err(internal("join reads an uninitialized variable register"));
        }
        Ok(vi)
    };
    for op in &cs.ops {
        match op {
            Op::InitVar { var } => {
                *var_ok
                    .get_mut(*var as usize)
                    .ok_or_else(|| internal("InitVar out of bounds"))? = true;
            }
            Op::BuildColumns { edge } => {
                let ei = *edge as usize;
                let e = cs
                    .edges
                    .get(ei)
                    .ok_or_else(|| internal("BuildColumns out of bounds"))?;
                var_at(e.a, &var_ok)?;
                var_at(e.b, &var_ok)?;
                col_ok[ei] = true;
            }
            Op::Scan { var } | Op::CrossJoin { var } => {
                joined[var_at(*var, &var_ok)?] = true;
            }
            Op::HashJoin { var, hash, edges } => {
                joined[var_at(*var, &var_ok)?] = true;
                for e in edges.iter().chain(std::iter::once(hash)) {
                    let ei = *e as usize;
                    if ei >= col_ok.len() || !col_ok[ei] {
                        return Err(internal("join reads an unbuilt column register"));
                    }
                }
            }
            Op::ThetaJoin { var, edges } => {
                joined[var_at(*var, &var_ok)?] = true;
                for e in edges {
                    let ei = *e as usize;
                    if ei >= col_ok.len() || !col_ok[ei] {
                        return Err(internal("join reads an unbuilt column register"));
                    }
                }
            }
            Op::Emit => {
                if !joined.iter().all(|&j| j) {
                    return Err(internal("Emit before every variable is joined"));
                }
            }
            Op::Halt => {}
        }
    }
    Ok(())
}

/// Re-borrows the join edges from the bound statement's conjuncts.
fn runtime_edges<'q>(cs: &CompiledSelect, conjs: &[&'q Cond]) -> XsqlResult<Vec<REdge<'q>>> {
    cs.edges
        .iter()
        .map(|e| {
            let c = conjs
                .get(e.conj as usize)
                .ok_or_else(|| internal("edge conjunct index out of bounds"))?;
            let kind = match c {
                Cond::Cmp {
                    left,
                    lq,
                    op,
                    rq,
                    right,
                } => RKind::Cmp {
                    left,
                    lq: *lq,
                    op: *op,
                    rq: *rq,
                    right,
                },
                Cond::SetCmp { left, op, right } => RKind::SetCmp {
                    left,
                    op: *op,
                    right,
                },
                Cond::Path(p) => {
                    let mut stripped = p.clone();
                    if let Some(Step::Method { selector, .. }) = stripped.steps.last_mut() {
                        *selector = None;
                    }
                    RKind::SetLink { path: stripped }
                }
                _ => return Err(internal("edge conjunct is not a recognized join shape")),
            };
            Ok(REdge {
                a: e.a as usize,
                b: e.b as usize,
                kind,
            })
        })
        .collect()
}

/// Access path for one variable: class extent, narrowed through any
/// applicable index probes, every survivor re-verified with `holds`.
fn init_var(
    ctx: &Ctx<'_>,
    cs: &CompiledSelect,
    conjs: &[&Cond],
    vi: usize,
) -> XsqlResult<Vec<Oid>> {
    let v = &cs.vars[vi];
    let base = ctx.db.instances_of(v.class);
    let mut narrowed: Option<BTreeSet<Oid>> = None;
    for f in cs.filters.iter().filter(|f| f.var as usize == vi) {
        let Some(spec) = &f.probe else { continue };
        let cond = conjs
            .get(f.conj as usize)
            .ok_or_else(|| internal("filter conjunct index out of bounds"))?;
        let Some(probe) = materialize_probe(ctx, spec, cond) else {
            continue;
        };
        let set = match probe {
            Probe::Eq { method, key } => ctx.db.attr_receivers_eq(method, &key),
            Probe::Range { method, lo, hi } => ctx.db.attr_receivers_range(method, (lo, hi)),
        };
        narrowed = Some(match narrowed {
            None => set,
            Some(prev) => prev.intersection(&set).copied().collect(),
        });
    }
    let mut kept = Vec::new();
    let mut bnd = Bindings::new();
    let mark = bnd.mark();
    'cand: for o in base {
        ctx.tick()?;
        if !ctx.sort_ok(crate::ast::VarSort::Individual, o) {
            continue;
        }
        if let Some(set) = &narrowed {
            if !set.contains(&o) {
                continue;
            }
        }
        bnd.push(&v.name, o);
        for f in cs.filters.iter().filter(|f| f.var as usize == vi) {
            let cond = conjs
                .get(f.conj as usize)
                .ok_or_else(|| internal("filter conjunct index out of bounds"))?;
            if !ctx.holds(cond, &bnd)? {
                bnd.truncate(mark);
                continue 'cand;
            }
        }
        bnd.truncate(mark);
        kept.push(o);
    }
    ctx.check_binding_set(kept.len())?;
    Ok(kept)
}

/// Turns a compiled probe spec into a typed key probe, if it applies
/// right now: the method index must be enabled and complete, and a
/// parameter key is read back from the bound conjunct. `None` degrades
/// to the plain scan (sound: probes only narrow).
fn materialize_probe(ctx: &Ctx<'_>, spec: &ProbeSpec, cond: &Cond) -> Option<Probe> {
    if !ctx.opts.use_method_index || !ctx.db.attr_index_complete(spec.method) {
        return None;
    }
    let konst = match spec.konst {
        KonstSrc::Oid(o) => o,
        KonstSrc::Param(_) => bound_konst(cond)?,
    };
    probe_for(ctx, spec.method, spec.op, konst)
}

/// The constant side of a bound probe conjunct (`bind` substituted the
/// parameter, so the bare-path side now heads with an OID). The
/// konst-first orientation matches `probe_spec`'s extraction order.
fn bound_konst(c: &Cond) -> Option<Oid> {
    let Cond::Cmp { left, right, .. } = c else {
        return None;
    };
    for side in [right, left] {
        let Operand::Path(k) = side else { continue };
        if let (IdTerm::Oid(o), []) = (&k.head, k.steps.as_slice()) {
            return Some(*o);
        }
    }
    None
}

/// `V.Attr` — a bare single-attribute path over `var` with no
/// arguments and no selector — resolved to the attribute's OID. The
/// shape the stored-state fast path in [`build_columns`] serves.
fn bare_attr(ctx: &Ctx<'_>, op: &Operand, var: &str) -> Option<Oid> {
    let Operand::Path(p) = op else { return None };
    let IdTerm::Var(v) = &p.head else { return None };
    if v.name != var {
        return None;
    }
    let [Step::Method {
        method: MethodTerm::Name(n),
        args,
        selector: None,
    }] = p.steps.as_slice()
    else {
        return None;
    };
    if !args.is_empty() {
        return None;
    }
    ctx.db.oids().find_sym(n)
}

/// Caches the per-candidate element columns of one edge (the planner
/// executor's stage 2). Bare `V.Attr` operands read the stored state
/// directly — symbol resolved once, no value clone — and fall back to
/// the full evaluator per candidate when the attribute is inherited or
/// computed; the produced elements are identical either way, because
/// `value_at_depth` consults explicit state first.
fn build_columns(
    ctx: &Ctx<'_>,
    cs: &CompiledSelect,
    e: &REdge<'_>,
    cands: &[Vec<Oid>],
) -> XsqlResult<EdgeColumns> {
    let mut bnd = Bindings::new();
    let mark = bnd.mark();
    let mut side = |vi: usize, which_a: bool| -> XsqlResult<Vec<Vec<Elem>>> {
        let v = &cs.vars[vi];
        let mut col = Vec::with_capacity(cands[vi].len());
        let attr = match &e.kind {
            RKind::Cmp { left, right, .. } | RKind::SetCmp { left, right, .. } => {
                bare_attr(ctx, if which_a { left } else { right }, &v.name)
            }
            RKind::SetLink { .. } => None,
        };
        for &o in &cands[vi] {
            ctx.tick()?;
            if let Some(m) = attr {
                if let Some(val) = ctx.db.stored_value(o, m, &[]) {
                    col.push(val.members().map(Elem::Obj).collect());
                    continue;
                }
            }
            bnd.push(&v.name, o);
            let elems = match &e.kind {
                RKind::Cmp { left, right, .. } | RKind::SetCmp { left, right, .. } => {
                    ctx.operand_value(if which_a { left } else { right }, &bnd)?
                }
                RKind::SetLink { path } => {
                    if which_a {
                        ctx.path_value(path, &bnd)?
                            .into_iter()
                            .map(Elem::Obj)
                            .collect()
                    } else {
                        vec![Elem::Obj(o)]
                    }
                }
            };
            bnd.truncate(mark);
            col.push(elems);
        }
        Ok(col)
    };
    let a = side(e.a, true)?;
    let b = side(e.b, false)?;
    let singletons = |col: &[Vec<Elem>]| -> Option<Vec<f64>> {
        col.iter()
            .map(|es| match es.as_slice() {
                [Elem::Num(n)] => Some(*n),
                [Elem::Obj(o)] => ctx.db.oids().as_number(*o),
                _ => None,
            })
            .collect()
    };
    let fast = match &e.kind {
        RKind::Cmp { lq, rq, .. } if *lq != Some(Quant::All) && *rq != Some(Quant::All) => {
            singletons(&a).zip(singletons(&b))
        }
        _ => None,
    };
    Ok(EdgeColumns { a, b, fast })
}

/// True iff the edge holds between candidate `ai` of its a-side and
/// candidate `bi` of its b-side.
fn edge_holds(
    ctx: &Ctx<'_>,
    e: &REdge<'_>,
    cols: &Option<EdgeColumns>,
    ai: usize,
    bi: usize,
) -> bool {
    let cols = cols.as_ref().expect("validated: columns built");
    match &e.kind {
        RKind::Cmp { lq, op, rq, .. } => {
            if let Some((fa, fb)) = &cols.fast {
                return f64_cmp(*op, fa[ai], fb[bi]);
            }
            ctx.compare(&cols.a[ai], *lq, *op, *rq, &cols.b[bi])
        }
        RKind::SetCmp { op, .. } => ctx.set_compare(&cols.a[ai], *op, &cols.b[bi]),
        RKind::SetLink { .. } => ctx.compare(&cols.a[ai], None, CmpOp::Eq, None, &cols.b[bi]),
    }
}

/// Resolves an edge's endpoints into (a-side, b-side) candidate indices
/// given the new variable `vi` at candidate `ci` and an existing tuple.
fn pair(e: &REdge<'_>, vi: usize, ci: u32, t: &[u32], slot: &[usize]) -> (usize, usize) {
    if e.a == vi {
        (ci as usize, t[slot[e.b]] as usize)
    } else {
        (t[slot[e.a]] as usize, ci as usize)
    }
}
