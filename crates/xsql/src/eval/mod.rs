//! Query evaluation.
//!
//! Three engines implement the same semantics (differentially tested):
//!
//! * **Naive** — the specification of §3.4 verbatim: consider all
//!   substitutions of OIDs for variables over the active domain of each
//!   sort, check the FROM and WHERE clauses per substitution. Exponential;
//!   used as ground truth on small databases.
//! * **Pipelined** — the nested-loop strategy the paper describes in §6.2
//!   ("each path expression is evaluated by a sequence of nested loops"):
//!   conjuncts are scheduled greedily, path expressions act as generators
//!   that bind variables by traversal, comparisons as filters.
//! * **Typed** — pipelined plus the Theorem 6.1 optimization: variable
//!   instantiation restricted to the ranges of a coherent type assignment
//!   and evaluation ordered by its execution plan (see `crate::typing`).

pub mod bindings;
pub mod cond;
pub mod create;
pub mod method;
pub mod parallel;
pub mod path;
pub mod profile;
pub mod select;
pub mod update;
pub mod value;
pub mod vars;
pub mod view;

use crate::ast::SelectQuery;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid};
use std::cell::Cell as StdCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cooperative cancellation token, checked at the evaluator's tick
/// points alongside the other [`EvalBudget`] resources. Cloning shares
/// the underlying flag, so one handle can be kept by a controller
/// thread while its clone travels into [`EvalOptions`]; tripping it
/// makes the running statement fail with [`XsqlError::Cancelled`] at
/// the next tick, after which the statement's implicit savepoint rolls
/// all partial effects back.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: the statement evaluating under it cancels at
    /// its next tick point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelFlag::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Counters shared by every [`Ctx`] participating in one statement —
/// the statement's root context plus, under parallel evaluation, the
/// per-worker contexts it spawns. The budget limits of [`EvalOptions`]
/// apply to these shared totals, so `work_limit`, `max_tuples` and the
/// injected `cancel_at_tick` fire cooperatively across all workers
/// exactly as they do on one thread.
#[derive(Debug, Default)]
pub struct EvalCounters {
    /// Ticks published by all contexts. Each context buffers its ticks
    /// locally and publishes them at its poll points (every
    /// [`DEADLINE_CHECK_MASK`]+1 ticks), so the shared counter is not a
    /// per-tick contention point.
    pub work: AtomicU64,
    /// Tuples materialized by all contexts (updated directly — tuple
    /// materialization is orders of magnitude rarer than ticks).
    pub tuples: AtomicUsize,
    /// Tripped when one parallel worker fails, so its siblings stop at
    /// their next poll instead of completing their partitions.
    pub abort: AtomicBool,
}

/// Reason string of the internal `Cancelled` error a worker fails with
/// when a sibling tripped [`EvalCounters::abort`]; the parallel driver
/// filters these out and reports the sibling's original error.
pub(crate) const SIBLING_ABORT_REASON: &str = "aborted because a parallel sibling worker failed";

/// Evaluation strategy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// §3.4 specification semantics: full domain enumeration.
    Naive,
    /// Nested-loop generators/filters with greedy scheduling.
    #[default]
    Pipelined,
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Which engine to use.
    pub strategy: Strategy,
    /// Hard cap on evaluation steps (ticks); exceeded → `WorkLimit`
    /// error. Guards the naive engine on non-toy databases.
    pub work_limit: u64,
    /// Maximum number of hops a path variable (`X.*P.City`) may take.
    pub path_var_limit: usize,
    /// Use the database's inverted method index to seed head-unbound
    /// path expressions (candidates restricted to objects on which the
    /// first step's method may be defined — cf. \[BERT89\]). Sound:
    /// the candidate set is a superset of the satisfying heads. Off in
    /// benchmarks that measure the unindexed engine.
    pub use_method_index: bool,
    /// Resource budgets beyond the tick-based work limit (see
    /// [`EvalBudget`]).
    pub budget: EvalBudget,
    /// Cooperative cancellation token. The default token is never
    /// tripped; a service layer installs a per-statement clone so a
    /// hung or abandoned query degrades into [`XsqlError::Cancelled`]
    /// instead of wedging its worker.
    pub cancel: CancelFlag,
    /// Number of worker threads a top-level pipelined SELECT may use.
    /// `1` (the default) evaluates sequentially; `n ≥ 2` partitions the
    /// outermost candidate domain across `n` scoped workers sharing the
    /// read-only database (see `docs/PARALLELISM.md`). Results are
    /// bit-identical to sequential evaluation. Defaults to the
    /// `XSQL_PARALLELISM` environment variable when set.
    pub parallelism: usize,
    /// Let the cost-based planner (`crate::plan`) take over top-level
    /// pipelined SELECTs whose WHERE clause it fully recognizes: it
    /// picks join order and access path (extent scan, attribute-index
    /// probe or range, hash vs. nested theta join) from estimated
    /// cardinalities. Results are bit-identical to the pipelined and
    /// naive engines — the differential suite crosses all of them.
    /// Defaults to on; the `XSQL_PLANNER=0` environment variable
    /// disables it wholesale (the no-index/no-planner differential leg
    /// and CI use this).
    pub use_planner: bool,
    /// Minimum candidate count of the partitioned generator before the
    /// parallel driver spawns workers. Below this, thread spawn and
    /// merge overhead outweigh the scan (BENCH_parallel.json measured
    /// 0.85× at 2 workers on a 30-row extent), so evaluation falls back
    /// to sequential. Floored at 2 — a 1-candidate partition is never
    /// split. Tests pin it low to force workers on toy extents.
    pub parallel_min_candidates: usize,
    /// Let the bytecode VM (`crate::vm`) compile statements run through
    /// [`Session::run`](crate::Session::run) and serve repeats from the
    /// schema-epoch plan cache, and let `EXECUTE` run prepared programs
    /// through the VM dispatch loop. Results are bit-identical to the
    /// other engines (the differential suite crosses VM cold and warm
    /// cache against naive/pipelined/planner/parallel). Defaults to on;
    /// `XSQL_VM=0` disables compilation and caching wholesale — every
    /// statement then takes today's parse→resolve→evaluate path
    /// unchanged.
    pub use_vm: bool,
    /// Optional execution-profile sink (`EXPLAIN ANALYZE`). When
    /// attached, the evaluator records strategy, partition, stage and
    /// cost information into it; recording sites are gated on the
    /// `Option` and sit at stage boundaries, so ordinary evaluation
    /// pays nothing. Cloning the options (as the parallel driver does
    /// for its workers) shares the sink.
    pub profile: Option<Arc<profile::QueryProfile>>,
}

/// Default parallelism: the `XSQL_PARALLELISM` environment variable
/// when set to a positive integer, else 1 (sequential). The env hook
/// lets CI run entire existing test suites under parallel evaluation
/// without touching each call site.
fn env_parallelism() -> usize {
    std::env::var("XSQL_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Default planner switch: on unless the `XSQL_PLANNER` environment
/// variable is set to `0` (the differential no-planner leg and CI use
/// the env hook to sweep whole suites without touching call sites).
fn env_planner() -> bool {
    std::env::var("XSQL_PLANNER").map_or(true, |v| v != "0")
}

/// Default VM switch: on unless the `XSQL_VM` environment variable is
/// set to `0` (the compatibility leg in CI sweeps whole suites through
/// the pre-VM paths this way).
fn env_vm() -> bool {
    std::env::var("XSQL_VM").map_or(true, |v| v != "0")
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            strategy: Strategy::Pipelined,
            work_limit: 200_000_000,
            path_var_limit: 4,
            use_method_index: true,
            budget: EvalBudget::default(),
            cancel: CancelFlag::default(),
            parallelism: env_parallelism(),
            use_planner: env_planner(),
            parallel_min_candidates: 64,
            use_vm: env_vm(),
            profile: None,
        }
    }
}

/// Resource budgets enforced during evaluation.
///
/// The tick-based `work_limit` bounds CPU; these bound *memory* and
/// *stack*: a runaway query (deep path recursion, a cross product over
/// huge extents, a generator with pathological fan-out) degrades into a
/// clean [`XsqlError::Budget`] instead of exhausting the process. The
/// defaults are generous — ordinary workloads never see them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalBudget {
    /// Maximum evaluator recursion depth while walking path expressions
    /// (steps plus path-variable hops). Bounds stack growth.
    pub max_path_depth: usize,
    /// Maximum number of tuples materialized into any one intermediate
    /// or result relation. Bounds heap growth of row sets.
    pub max_tuples: usize,
    /// Maximum size of a single binding set (the candidate values a
    /// generator enumerates for one variable). Bounds generator fan-out.
    pub max_binding_set: usize,
    /// Wall-clock deadline. Checked every [`DEADLINE_CHECK_MASK`]+1
    /// ticks (reading the clock each tick would dominate evaluation);
    /// past it the statement fails with [`XsqlError::Cancelled`].
    pub deadline: Option<Instant>,
    /// Deterministic cancellation point: the statement cancels at the
    /// first tick whose work count reaches this value. This is the
    /// reproducible twin of [`EvalOptions::cancel`] — the cancellation
    /// proptest sweeps it across every tick of a statement, and the
    /// chaos harness uses it for seeded injected cancellations.
    pub cancel_at_tick: Option<u64>,
}

/// The deadline and the cancellation flag are polled when
/// `work & DEADLINE_CHECK_MASK == 0`, i.e. every 64 ticks — frequent
/// enough that cancellation latency is microseconds, rare enough that
/// the clock read and atomic load vanish from profiles.
pub const DEADLINE_CHECK_MASK: u64 = 63;

impl Default for EvalBudget {
    fn default() -> Self {
        EvalBudget {
            max_path_depth: 128,
            max_tuples: 5_000_000,
            max_binding_set: 1_000_000,
            deadline: None,
            cancel_at_tick: None,
        }
    }
}

impl EvalOptions {
    /// Options selecting the naive §3.4 engine.
    pub fn naive() -> Self {
        EvalOptions {
            strategy: Strategy::Naive,
            ..EvalOptions::default()
        }
    }
}

/// Per-variable instantiation ranges computed by the typing system
/// (Theorem 6.1.2: "it suffices to consider only those instantiations o
/// of X such that o ∈ A(X)"). Maps variable name to the admissible OIDs.
pub type Ranges = BTreeMap<String, BTreeSet<Oid>>;

/// Shared read-only evaluation context. Public so benchmarks and the
/// typing system can drive the engine directly; most users go through
/// [`crate::Session`] or [`eval_select`].
pub struct Ctx<'d> {
    /// The database under query.
    pub db: &'d Database,
    /// Evaluation options.
    pub opts: &'d EvalOptions,
    /// Counters shared with any sibling contexts of the same statement
    /// (parallel workers); budgets apply to the shared totals.
    pub counters: Arc<EvalCounters>,
    /// Ticks performed by this context alone. Exact at every tick;
    /// published to `counters.work` in batches at poll points.
    pub work: StdCell<u64>,
    /// Portion of `work` already published to `counters.work`.
    flushed: StdCell<u64>,
    /// Ticks observed from sibling contexts at the last poll point
    /// (`counters.work` minus this context's published share). Zero
    /// whenever the statement evaluates sequentially, which keeps
    /// single-threaded work accounting bit-exact.
    foreign: StdCell<u64>,
    /// Computed-method invocation depth (recursion guard).
    pub depth: usize,
    /// Current path-walk recursion depth (budgeted; per-thread, since
    /// it tracks this context's own stack).
    pub path_depth: StdCell<usize>,
    /// Optional Theorem 6.1 ranges (typed strategy).
    pub ranges: Option<&'d Ranges>,
}

impl<'d> Ctx<'d> {
    /// A fresh context over a database.
    pub fn new(db: &'d Database, opts: &'d EvalOptions) -> Self {
        Ctx::with_parts(db, opts, None, Arc::new(EvalCounters::default()), 0)
    }

    /// A context whose variable domains are narrowed by Theorem 6.1
    /// ranges.
    pub fn with_ranges(db: &'d Database, opts: &'d EvalOptions, ranges: &'d Ranges) -> Self {
        Ctx::with_parts(db, opts, Some(ranges), Arc::new(EvalCounters::default()), 0)
    }

    /// A fresh context for a computed-method body at invocation depth
    /// `depth`.
    pub fn with_depth(db: &'d Database, opts: &'d EvalOptions, depth: usize) -> Self {
        Ctx::with_parts(db, opts, None, Arc::new(EvalCounters::default()), depth)
    }

    /// The general constructor: a context that shares `counters` with
    /// its siblings. Used by the parallel driver to give each worker a
    /// context of its own (bindings and path depth are per-thread)
    /// while work, tuple, and abort accounting stay statement-global.
    pub fn with_parts(
        db: &'d Database,
        opts: &'d EvalOptions,
        ranges: Option<&'d Ranges>,
        counters: Arc<EvalCounters>,
        depth: usize,
    ) -> Self {
        Ctx {
            db,
            opts,
            counters,
            work: StdCell::new(0),
            flushed: StdCell::new(0),
            foreign: StdCell::new(0),
            depth,
            path_depth: StdCell::new(0),
            ranges,
        }
    }

    /// Accounts one unit of work; errors when the limit is exceeded,
    /// when the statement's deadline has passed, or when its
    /// cancellation token was tripped (the same tick points serve all
    /// three, so every loop the work limit bounds is also a
    /// cancellation point). The limits apply to the statement's total
    /// work: this context's exact tick count plus the ticks published
    /// by any parallel siblings as of the last poll.
    #[inline]
    pub fn tick(&self) -> XsqlResult<()> {
        let w = self.work.get() + 1;
        self.work.set(w);
        let total = w + self.foreign.get();
        if total > self.opts.work_limit {
            return Err(XsqlError::WorkLimit(self.opts.work_limit));
        }
        if let Some(k) = self.opts.budget.cancel_at_tick {
            if total >= k {
                return Err(XsqlError::Cancelled {
                    reason: format!("cancellation injected at tick {k}"),
                });
            }
        }
        // Poll on the first tick too, so an already-expired deadline or
        // pre-tripped token fails fast even on tiny statements.
        if w & DEADLINE_CHECK_MASK == 0 || w == 1 {
            self.check_interrupts()?;
        }
        Ok(())
    }

    /// Accounts `n` units of work in one bump — same totals and limits
    /// as `n` calls to [`Ctx::tick`], but the limit comparison and the
    /// interrupt-poll test run once per batch. Emission loops use this
    /// to charge a whole row at a time; the poll still fires whenever
    /// the batch crosses a `DEADLINE_CHECK_MASK` boundary, so
    /// responsiveness is bounded by the batch size, not lost.
    #[inline]
    pub fn tick_n(&self, n: u64) -> XsqlResult<()> {
        if n == 0 {
            return Ok(());
        }
        let prev = self.work.get();
        let w = prev + n;
        self.work.set(w);
        let total = w + self.foreign.get();
        if total > self.opts.work_limit {
            return Err(XsqlError::WorkLimit(self.opts.work_limit));
        }
        if let Some(k) = self.opts.budget.cancel_at_tick {
            if total >= k {
                return Err(XsqlError::Cancelled {
                    reason: format!("cancellation injected at tick {k}"),
                });
            }
        }
        let stride = DEADLINE_CHECK_MASK + 1;
        if prev < 1 || w / stride != prev / stride {
            self.check_interrupts()?;
        }
        Ok(())
    }

    /// The slow half of [`Ctx::tick`]: publishes buffered ticks,
    /// refreshes the sibling count, and polls the abort flag, the
    /// cancellation flag, and the wall clock. Split out so the fast
    /// path stays a few arithmetic instructions.
    #[cold]
    fn check_interrupts(&self) -> XsqlResult<()> {
        self.flush_work();
        let local = self.work.get();
        self.foreign.set(
            self.counters
                .work
                .load(Ordering::Relaxed)
                .saturating_sub(local),
        );
        if self.counters.abort.load(Ordering::Relaxed) {
            return Err(XsqlError::Cancelled {
                reason: SIBLING_ABORT_REASON.into(),
            });
        }
        if self.opts.cancel.is_cancelled() {
            return Err(XsqlError::Cancelled {
                reason: "cancelled by client".into(),
            });
        }
        if let Some(deadline) = self.opts.budget.deadline {
            if Instant::now() >= deadline {
                return Err(XsqlError::Cancelled {
                    reason: "statement deadline exceeded".into(),
                });
            }
        }
        Ok(())
    }

    /// Publishes this context's buffered ticks to the shared counters.
    /// Called automatically at poll points and by [`Ctx::work_done`];
    /// the parallel driver calls it once more when a worker finishes so
    /// no ticks are lost.
    pub fn flush_work(&self) {
        let local = self.work.get();
        let delta = local - self.flushed.get();
        if delta != 0 {
            self.counters.work.fetch_add(delta, Ordering::Relaxed);
            self.flushed.set(local);
        }
    }

    /// Work performed so far by the whole statement — this context plus
    /// any parallel siblings (exposed for benchmarks/diagnostics).
    pub fn work_done(&self) -> u64 {
        self.flush_work();
        self.counters.work.load(Ordering::Relaxed)
    }

    /// Enters one level of path-walk recursion; the returned guard
    /// decrements the depth when dropped. Errors with
    /// [`XsqlError::Budget`] when the depth budget is exhausted.
    #[inline]
    pub fn enter_path(&self) -> XsqlResult<PathDepthGuard<'_>> {
        let d = self.path_depth.get() + 1;
        if d > self.opts.budget.max_path_depth {
            return Err(XsqlError::Budget {
                resource: "path recursion depth",
                limit: self.opts.budget.max_path_depth,
            });
        }
        self.path_depth.set(d);
        Ok(PathDepthGuard(&self.path_depth))
    }

    /// Accounts `n` freshly materialized tuples; errors with
    /// [`XsqlError::Budget`] when the cumulative tuple budget is
    /// exhausted. The count is statement-global (shared with parallel
    /// siblings); tuples are rare enough relative to ticks that the
    /// direct atomic update never shows up in profiles.
    #[inline]
    pub fn count_tuples(&self, n: usize) -> XsqlResult<()> {
        let t = self
            .counters
            .tuples
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if t > self.opts.budget.max_tuples {
            Err(XsqlError::Budget {
                resource: "materialized tuple",
                limit: self.opts.budget.max_tuples,
            })
        } else {
            Ok(())
        }
    }

    /// Checks a single binding set of `n` candidate values against the
    /// fan-out budget.
    #[inline]
    pub fn check_binding_set(&self, n: usize) -> XsqlResult<()> {
        if let Some(p) = &self.opts.profile {
            p.note_binding_set(n);
        }
        if n > self.opts.budget.max_binding_set {
            Err(XsqlError::Budget {
                resource: "binding set size",
                limit: self.opts.budget.max_binding_set,
            })
        } else {
            Ok(())
        }
    }

    /// The instantiation domain of a variable: its Theorem 6.1 range if
    /// one was computed, otherwise the active domain of its sort.
    pub fn var_domain(&self, name: &str, sort: crate::ast::VarSort) -> Vec<Oid> {
        if let Some(rs) = self.ranges {
            if let Some(set) = rs.get(name) {
                return set.iter().copied().collect();
            }
        }
        self.domain(sort)
    }
}

/// RAII guard for one level of path-walk recursion; see
/// [`Ctx::enter_path`].
pub struct PathDepthGuard<'a>(&'a StdCell<usize>);

impl Drop for PathDepthGuard<'_> {
    fn drop(&mut self) {
        self.0.set(self.0.get() - 1);
    }
}

/// Evaluates a resolved SELECT query read-only and returns a relation.
/// Object-creating queries (with `OID FUNCTION OF`) must go through
/// [`crate::Session::run`] instead. Errors if the SELECT list produces
/// computed numerals (aggregates/arithmetic) — those need interning; use
/// a `Session` for that as well.
pub fn eval_select(
    db: &Database,
    q: &SelectQuery,
    opts: &EvalOptions,
) -> XsqlResult<relalg::Relation> {
    let ctx = Ctx::new(db, opts);
    select::eval_to_relation(&ctx, q)
}

/// As [`eval_select`] with Theorem 6.1 ranges restricting variable
/// instantiation (typed evaluation).
pub fn eval_select_ranged(
    db: &Database,
    q: &SelectQuery,
    opts: &EvalOptions,
    ranges: &Ranges,
) -> XsqlResult<relalg::Relation> {
    let ctx = Ctx::with_ranges(db, opts, ranges);
    select::eval_to_relation(&ctx, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve_stmt;
    use oodb::DbBuilder;

    /// A miniature Figure 1 instance: two people, a company, vehicles.
    fn mini_db() -> Database {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.subclass("Employee", &["Person"]);
        b.class("Address");
        b.class("Company");
        b.class("Vehicle");
        b.subclass("Automobile", &["Vehicle"]);
        b.attr("Person", "Name", "String");
        b.attr("Person", "Age", "Numeral");
        b.attr("Person", "Residence", "Address");
        b.set_attr("Person", "OwnedVehicles", "Vehicle");
        b.set_attr("Employee", "FamMembers", "Person");
        b.attr("Employee", "Salary", "Numeral");
        b.attr("Address", "City", "String");
        b.attr("Company", "Name", "String");
        b.attr("Company", "President", "Person");
        b.attr("Vehicle", "Manufacturer", "Company");
        b.attr("Vehicle", "Color", "String");

        let addr_ny = b.obj("addr_ny", "Address");
        b.set_str(addr_ny, "City", "newyork");
        let addr_sf = b.obj("addr_sf", "Address");
        b.set_str(addr_sf, "City", "sanfrancisco");

        let mary = b.obj("mary123", "Employee");
        b.set_str(mary, "Name", "Mary");
        b.set_int(mary, "Age", 41);
        b.set(mary, "Residence", addr_ny);
        b.set_int(mary, "Salary", 30000);

        let john = b.obj("john13", "Employee");
        b.set_str(john, "Name", "John");
        b.set_int(john, "Age", 25);
        b.set(john, "Residence", addr_sf);
        b.set_int(john, "Salary", 60000);
        b.set_many(john, "FamMembers", &[mary]);

        let uni = b.obj("uniSQL", "Company");
        b.set_str(uni, "Name", "UniSQL");
        b.set(uni, "President", john);

        let car = b.obj("car1", "Automobile");
        b.set(car, "Manufacturer", uni);
        b.set_str(car, "Color", "red");
        b.set_many(john, "OwnedVehicles", &[car]);

        b.build()
    }

    fn run(db: &mut Database, src: &str, opts: &EvalOptions) -> relalg::Relation {
        let stmt = parse(src).unwrap();
        let stmt = resolve_stmt(db, &stmt).unwrap();
        match stmt {
            crate::ast::Stmt::Select(q) => eval_select(db, &q, opts).unwrap(),
            s => panic!("expected select, got {s:?}"),
        }
    }

    fn names(db: &Database, rel: &relalg::Relation) -> Vec<String> {
        rel.iter().map(|t| db.render(t[0])).collect()
    }

    #[test]
    fn ground_path_query() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
            &EvalOptions::default(),
        );
        assert_eq!(names(&db, &r), vec!["addr_ny"]);
    }

    #[test]
    fn nobel_style_open_query() {
        let mut db = mini_db();
        // Which objects have a defined, non-empty FamMembers?
        let r = run(
            &mut db,
            "SELECT X WHERE X.FamMembers",
            &EvalOptions::default(),
        );
        assert_eq!(names(&db, &r), vec!["john13"]);
    }

    #[test]
    fn attribute_variable_query() {
        let mut db = mini_db();
        // Query (3): which attribute leads from a person to newyork?
        let r = run(
            &mut db,
            "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']",
            &EvalOptions::default(),
        );
        assert_eq!(names(&db, &r), vec!["Residence"]);
    }

    #[test]
    fn quantified_comparison() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
            &EvalOptions::default(),
        );
        assert_eq!(names(&db, &r), vec!["john13"]);
    }

    #[test]
    fn explicit_join() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT X, Y FROM Company X, Automobile Y WHERE Y.Manufacturer[X]",
            &EvalOptions::default(),
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn pipelined_matches_naive() {
        let mut db = mini_db();
        for q in [
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
            "SELECT X WHERE X.FamMembers",
            "SELECT X, Y FROM Company X, Automobile Y WHERE Y.Manufacturer[X]",
            "SELECT X FROM Person X WHERE not X.FamMembers",
            "SELECT X FROM Person X WHERE X.Age > 30 or X.Salary > 50000",
        ] {
            let fast = run(&mut db, q, &EvalOptions::default());
            let naive = run(&mut db, q, &EvalOptions::naive());
            assert_eq!(fast, naive, "strategies disagree on {q}");
        }
    }

    #[test]
    fn subclass_query() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT #X WHERE Automobile subclassOf #X",
            &EvalOptions::default(),
        );
        let mut got = names(&db, &r);
        got.sort();
        assert_eq!(got, vec!["Object", "Vehicle"]);
    }

    #[test]
    fn aggregate_filter() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT X FROM Employee X WHERE count(X.FamMembers) >= 1 and X.Salary > 35000",
            &EvalOptions::default(),
        );
        assert_eq!(names(&db, &r), vec!["john13"]);
    }

    #[test]
    fn path_variable_navigation() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT X FROM Person X WHERE X.*P.City['newyork']",
            &EvalOptions::default(),
        );
        // mary lives in newyork directly; john reaches it through
        // FamMembers.Residence.City - both sequences are admissible.
        assert_eq!(names(&db, &r), vec!["mary123", "john13"]);
    }

    #[test]
    fn correlated_subquery() {
        let mut db = mini_db();
        // Companies whose president's family members are all older than 30.
        let r = run(
            &mut db,
            "SELECT X FROM Company X WHERE 30 <all (SELECT W FROM Person Z \
             WHERE X.President.FamMembers[Z].Age[W])",
            &EvalOptions::default(),
        );
        assert_eq!(names(&db, &r), vec!["uniSQL"]);
    }

    #[test]
    fn work_limit_enforced() {
        let mut db = mini_db();
        let stmt = parse("SELECT X, Y, Z FROM Person X, Person Y, Person Z").unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let opts = EvalOptions {
            work_limit: 3,
            ..EvalOptions::default()
        };
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::WorkLimit(3))
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tuple_budget_enforced() {
        let mut db = mini_db();
        let stmt = parse("SELECT X, Y FROM Person X, Person Y").unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let opts = EvalOptions {
            budget: EvalBudget {
                max_tuples: 2,
                ..EvalBudget::default()
            },
            ..EvalOptions::default()
        };
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::Budget {
                        resource: "materialized tuple",
                        limit: 2
                    })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn path_depth_budget_enforced() {
        let mut db = mini_db();
        // A long (but satisfiable prefix) chain of steps exceeds a tiny
        // depth budget before it fails to match.
        let stmt = parse(
            "SELECT X FROM Employee X WHERE \
             X.Residence.City.Residence.City.Residence.City",
        )
        .unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let opts = EvalOptions {
            budget: EvalBudget {
                max_path_depth: 2,
                ..EvalBudget::default()
            },
            ..EvalOptions::default()
        };
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::Budget {
                        resource: "path recursion depth",
                        limit: 2
                    })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn binding_set_budget_enforced() {
        let mut db = mini_db();
        let stmt = parse("SELECT X WHERE X.FamMembers").unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let opts = EvalOptions {
            budget: EvalBudget {
                max_binding_set: 1,
                ..EvalBudget::default()
            },
            // Force the full-domain candidate set (larger than 1).
            use_method_index: false,
            ..EvalOptions::default()
        };
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::Budget {
                        resource: "binding set size",
                        limit: 1
                    })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn injected_cancellation_tick_is_deterministic() {
        let mut db = mini_db();
        let stmt = parse("SELECT X, Y FROM Person X, Person Y").unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let opts = EvalOptions {
            budget: EvalBudget {
                cancel_at_tick: Some(2),
                ..EvalBudget::default()
            },
            ..EvalOptions::default()
        };
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::Cancelled { .. })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tripped_token_cancels_evaluation() {
        let mut db = mini_db();
        let stmt = parse("SELECT X, Y, Z FROM Person X, Person Y, Person Z").unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let cancel = CancelFlag::new();
        cancel.cancel();
        let opts = EvalOptions {
            cancel: cancel.clone(),
            ..EvalOptions::default()
        };
        assert!(cancel.is_cancelled());
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::Cancelled { .. })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn expired_deadline_cancels_evaluation() {
        let mut db = mini_db();
        let stmt = parse("SELECT X, Y, Z FROM Person X, Person Y, Person Z").unwrap();
        let stmt = resolve_stmt(&mut db, &stmt).unwrap();
        let opts = EvalOptions {
            budget: EvalBudget {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..EvalBudget::default()
            },
            ..EvalOptions::default()
        };
        match stmt {
            crate::ast::Stmt::Select(q) => {
                assert!(matches!(
                    eval_select(&db, &q, &opts),
                    Err(XsqlError::Cancelled { .. })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn default_budget_is_invisible() {
        let mut db = mini_db();
        let r = run(
            &mut db,
            "SELECT X FROM Person X WHERE X.*P.City['newyork']",
            &EvalOptions::default(),
        );
        assert_eq!(r.len(), 2);
    }
}
