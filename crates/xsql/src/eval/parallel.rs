//! Parallel evaluation of top-level pipelined SELECT queries.
//!
//! The generate-mode evaluator's outermost loop — an unbound head
//! variable enumerated over `head_candidates` (Theorem 6.1 range >
//! method index > active domain) or a FROM extent — has independent
//! iterations: the solutions with `X = o₁` never interact with the
//! solutions with `X = o₂`. This module partitions that candidate list
//! round-robin across a small pool of scoped worker threads, each
//! running the ordinary `solve_conjuncts` machinery against the shared
//! read-only [`Database`] with the partition variable pre-bound, and
//! merges the per-worker row sets by union.
//!
//! **Determinism.** The result is bit-identical to sequential
//! evaluation: the candidate list is a sound superset of the values the
//! partition variable takes in any solution, `solve_conjuncts` under a
//! pre-bound variable yields exactly the solutions with that binding,
//! rows live in `BTreeSet`s whose canonical order is
//! insertion-independent, and the final union is order-insensitive.
//! Thread scheduling can therefore change nothing but wall-clock time.
//!
//! **Budgets.** Workers share one [`EvalCounters`] with the spawning
//! context, so `work_limit`, `max_tuples`, deadlines, `CancelFlag`
//! cancellation, and injected `cancel_at_tick` all apply to the
//! statement's *total* progress. A failing worker trips the shared
//! abort flag; siblings stop at their next poll point with an internal
//! cancellation that the driver discards in favour of the original
//! error. See `docs/PARALLELISM.md`.

use super::bindings::Bindings;
use super::cond::Partition;
use super::select::{assemble_conjuncts, emit_rows, Prepared};
use super::value::Cell;
use super::vars;
use super::{Ctx, EvalCounters, EvalOptions, Ranges, SIBLING_ABORT_REASON};
use crate::ast::{Cond, SelectItem, SelectQuery, VarSort};
use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Attempts to solve a pipelined query by partitioned parallel
/// evaluation. Returns `Ok(None)` when the query must run sequentially:
/// parallelism is not requested, the query is nested (outer bindings or
/// method depth), or no safe outer partition exists.
pub(crate) fn solve_query_parallel<'q>(
    ctx: &Ctx<'_>,
    q: &'q SelectQuery,
    prep: &'q Prepared,
    outer: &Bindings<'q>,
) -> XsqlResult<Option<BTreeSet<Vec<Cell>>>> {
    if ctx.opts.parallelism < 2 || !outer.is_empty() || ctx.depth != 0 {
        return Ok(None);
    }
    let conjs = assemble_conjuncts(q, prep, outer);
    if conjs.is_empty() {
        return Ok(None);
    }
    let mut outer_vars = BTreeSet::new();
    vars::query_vars(q, &mut outer_vars);
    let Some(Partition {
        var,
        candidates,
        source,
    }) = ctx.choose_partition(&conjs, &outer_vars)?
    else {
        return Ok(None);
    };
    if candidates.len() < ctx.opts.parallel_min_candidates.max(2) {
        // Too few candidates to be worth splitting: below the
        // threshold, thread spawn and merge overhead exceed the scan
        // itself (company_division_join ran 0.85× at 2 workers before
        // this gate). The floor of 2 also keeps the zero/one-candidate
        // cases on the exhaustively-tested sequential path.
        return Ok(None);
    }
    let mut sorts = BTreeMap::new();
    vars::var_sorts(q, &mut sorts);

    let nworkers = ctx.opts.parallelism.min(candidates.len());
    if let Some(p) = &ctx.opts.profile {
        p.record_partition(super::profile::PartitionInfo {
            var: var.to_string(),
            source,
            candidates: candidates.len(),
            workers: nworkers,
        });
    }
    // Nested evaluation inside a worker (subqueries, method bodies)
    // stays sequential: one level of fan-out is where the win is, and
    // it keeps the thread count bounded by `parallelism`.
    let worker_opts = EvalOptions {
        parallelism: 1,
        ..ctx.opts.clone()
    };

    let db = ctx.db;
    let ranges = ctx.ranges;
    let counters = &ctx.counters;
    let depth = ctx.depth;
    let select = q.select.as_slice();
    let conjs_ref = conjs.as_slice();
    let sorts_ref = &sorts;
    let ov_ref = &outer_vars;
    let wopts = &worker_opts;

    let results: Vec<XsqlResult<BTreeSet<Vec<Cell>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|w| {
                // Round-robin striding balances skew better than
                // contiguous chunks when candidate cost correlates
                // with position (e.g. insertion order).
                let chunk: Vec<Oid> = candidates
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(nworkers)
                    .collect();
                s.spawn(move || {
                    run_worker(
                        db,
                        wopts,
                        ranges,
                        Arc::clone(counters),
                        depth,
                        w,
                        &chunk,
                        var,
                        conjs_ref,
                        sorts_ref,
                        ov_ref,
                        select,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    counters.abort.store(true, Ordering::Relaxed);
                    Err(XsqlError::Internal("parallel worker panicked".into()))
                })
            })
            .collect()
    });

    // Merge rows, or surface the first real error (by worker index, for
    // determinism given the same failure); sibling-abort cancellations
    // are fallout, not causes, and are only reported when nothing else
    // is (e.g. a client cancellation that every worker observed).
    let mut merged: BTreeSet<Vec<Cell>> = BTreeSet::new();
    let mut first_err: Option<XsqlError> = None;
    let mut sibling_err: Option<XsqlError> = None;
    for r in results {
        match r {
            Ok(rows) => {
                merged.extend(rows);
            }
            Err(e) => {
                let is_sibling = matches!(
                    &e,
                    XsqlError::Cancelled { reason } if reason == SIBLING_ABORT_REASON
                );
                if is_sibling {
                    sibling_err.get_or_insert(e);
                } else if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err.or(sibling_err) {
        return Err(e);
    }
    Ok(Some(merged))
}

/// One worker: a fresh context sharing the statement's counters, the
/// partition variable pre-bound to each candidate of its chunk in turn,
/// the ordinary conjunct scheduler solving the remainder.
#[allow(clippy::too_many_arguments)]
fn run_worker<'q>(
    db: &Database,
    opts: &EvalOptions,
    ranges: Option<&Ranges>,
    counters: Arc<EvalCounters>,
    depth: usize,
    index: usize,
    chunk: &[Oid],
    var: &'q str,
    conjs: &[&'q Cond],
    sorts: &BTreeMap<&'q str, VarSort>,
    outer_vars: &BTreeSet<&'q str>,
    select: &'q [SelectItem],
) -> XsqlResult<BTreeSet<Vec<Cell>>> {
    let started = opts.profile.as_ref().map(|_| std::time::Instant::now());
    let ctx = Ctx::with_parts(db, opts, ranges, counters, depth);
    let mut rows: BTreeSet<Vec<Cell>> = BTreeSet::new();
    let run = (|| -> XsqlResult<()> {
        let mut bnd = Bindings::new();
        let mark = bnd.mark();
        for &o in chunk {
            ctx.tick()?;
            bnd.push(var, o);
            ctx.solve_conjuncts(conjs, sorts, outer_vars, &mut bnd, &mut |bnd2| {
                if let Some(p) = &ctx.opts.profile {
                    p.count_solution();
                }
                emit_rows(&ctx, select, bnd2, &mut rows)
            })?;
            bnd.truncate(mark);
        }
        Ok(())
    })();
    // Publish remaining buffered ticks so statement-total accounting
    // (work_done, the work limit seen by later pollers) is complete.
    ctx.flush_work();
    if let (Some(p), Some(t0)) = (&opts.profile, started) {
        p.push_worker(super::profile::WorkerProfile {
            index,
            candidates: chunk.len(),
            rows: rows.len(),
            wall_micros: u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
        });
    }
    match run {
        Ok(()) => Ok(rows),
        Err(e) => {
            ctx.counters.abort.store(true, Ordering::Relaxed);
            Err(e)
        }
    }
}
