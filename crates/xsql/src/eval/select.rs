//! SELECT-query evaluation to relations (§3.3–3.4).

use super::bindings::Bindings;
use super::cond::flatten_and;
use super::value::Cell;
use super::vars;
use super::Ctx;
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use relalg::Relation;
use std::collections::{BTreeMap, BTreeSet};

/// Evaluates a resolved, non-creating SELECT query to column names plus
/// a set of rows (duplicates eliminated, §4 intro).
pub fn eval_rows(ctx: &Ctx<'_>, q: &SelectQuery) -> XsqlResult<(Vec<String>, BTreeSet<Vec<Cell>>)> {
    let empty = Bindings::new();
    eval_rows_under(ctx, q, &empty)
}

/// As [`eval_rows`], with outer bindings in effect (correlated
/// subqueries, §5 query (13)).
pub fn eval_rows_under<'q>(
    ctx: &Ctx<'_>,
    q: &'q SelectQuery,
    outer: &Bindings<'q>,
) -> XsqlResult<(Vec<String>, BTreeSet<Vec<Cell>>)> {
    if q.oid_fn.is_some() {
        return Err(XsqlError::Resolve(
            "object-creating queries (OID FUNCTION OF) must be run through a Session".into(),
        ));
    }
    for item in &q.select {
        match item {
            SelectItem::MethodResult { .. } => {
                return Err(XsqlError::Resolve(
                    "method-result SELECT items are only valid in ALTER CLASS".into(),
                ))
            }
            SelectItem::Named {
                value: SelectValue::Grouped(_),
                ..
            } => {
                return Err(XsqlError::Resolve(
                    "grouped `{X}` SELECT items require an OID FUNCTION OF clause".into(),
                ))
            }
            _ => {}
        }
    }
    let columns = column_names(&q.select);
    let prep = prepare(q);
    let mut rows = BTreeSet::new();
    // Profile recording applies to the top-level statement only:
    // correlated subqueries and method bodies re-enter here with outer
    // bindings or at depth, and must not overwrite its record.
    let profile = ctx
        .opts
        .profile
        .as_ref()
        .filter(|_| outer.is_empty() && ctx.depth == 0);
    if let Some(p) = profile {
        let label = match (ctx.opts.strategy, ctx.ranges.is_some()) {
            (super::Strategy::Naive, _) => "naive",
            (super::Strategy::Pipelined, true) => "pipelined+theorem-6.1-ranges",
            (super::Strategy::Pipelined, false) => "pipelined",
        };
        p.record_strategy(label, ctx.opts.parallelism);
    }
    match ctx.opts.strategy {
        super::Strategy::Pipelined => {
            if let Some(planned) = crate::plan::solve_query_planned(ctx, q, &prep, outer)? {
                rows = planned;
            } else if let Some(merged) =
                super::parallel::solve_query_parallel(ctx, q, &prep, outer)?
            {
                rows = merged;
            } else {
                solve_query(ctx, q, &prep, outer, &mut |ctx2, bnd| {
                    if let Some(p) = profile {
                        p.count_solution();
                    }
                    emit_rows(ctx2, &q.select, bnd, &mut rows)
                })?;
            }
        }
        super::Strategy::Naive => {
            solve_query_naive(ctx, q, &prep, outer, &mut |ctx2, bnd| {
                if let Some(p) = profile {
                    p.count_solution();
                }
                emit_rows(ctx2, &q.select, bnd, &mut rows)
            })?;
        }
    }
    if let Some(p) = profile {
        p.record_totals(
            ctx.work_done(),
            ctx.counters
                .tuples
                .load(std::sync::atomic::Ordering::Relaxed),
            rows.len(),
        );
    }
    Ok((columns, rows))
}

/// Owned storage for the conjuncts synthesized from a query: the FROM
/// items (as InstanceOf conditions) and trivial paths enumerating
/// variables that occur only in the SELECT list. Conjunct references
/// borrow from this structure, so it must outlive the solve.
#[derive(Debug)]
pub struct Prepared {
    pub(crate) from_conds: Vec<Cond>,
    pub(crate) select_only: Vec<Cond>,
}

/// Builds the synthesized conjuncts for a query.
pub fn prepare(q: &SelectQuery) -> Prepared {
    let from_conds: Vec<Cond> = q
        .from
        .iter()
        .map(|f| Cond::InstanceOf {
            obj: IdTerm::Var(f.var.clone()),
            class: f.class.clone(),
        })
        .collect();
    // Variables that appear only in the SELECT list still need
    // enumeration (naive semantics); add pseudo-conjuncts for them.
    let mut sorts = BTreeMap::new();
    vars::var_sorts(q, &mut sorts);
    let mut sv = BTreeSet::new();
    for item in &q.select {
        match item {
            SelectItem::Expr(op) => vars::operand_vars(op, &mut sv),
            SelectItem::Named { value, .. } => match value {
                SelectValue::Expr(op) => vars::operand_vars(op, &mut sv),
                SelectValue::Grouped(v) => {
                    sv.insert(v.name.as_str());
                }
            },
            SelectItem::MethodResult { args, value, .. } => {
                for a in args {
                    vars::idterm_vars(a, &mut sv);
                }
                vars::operand_vars(value, &mut sv);
            }
        }
    }
    let mut known = BTreeSet::new();
    cond_list_vars(&q.where_clause, &from_conds, &mut known);
    let select_only: Vec<Cond> = sv
        .iter()
        .filter(|v| !known.contains(*v))
        .map(|v| {
            Cond::Path(PathExpr::atom(IdTerm::Var(Var {
                name: v.to_string(),
                sort: sorts.get(v).copied().unwrap_or(VarSort::Individual),
            })))
        })
        .collect();
    Prepared {
        from_conds,
        select_only,
    }
}

fn cond_list_vars<'q>(where_clause: &'q Cond, from_conds: &'q [Cond], out: &mut BTreeSet<&'q str>) {
    vars::cond_vars(where_clause, out);
    for c in from_conds {
        vars::cond_vars(c, out);
    }
}

/// Enumerates the satisfying bindings of a query's FROM+WHERE under the
/// pipelined strategy, invoking the continuation per solution.
pub fn solve_query<'q>(
    ctx: &Ctx<'_>,
    q: &'q SelectQuery,
    prep: &'q Prepared,
    outer: &Bindings<'q>,
    k: &mut dyn FnMut(&Ctx<'_>, &mut Bindings<'q>) -> XsqlResult<()>,
) -> XsqlResult<()> {
    let conjs = assemble_conjuncts(q, prep, outer);

    let mut outer_vars = BTreeSet::new();
    vars::query_vars(q, &mut outer_vars);
    let mut sorts = BTreeMap::new();
    vars::var_sorts(q, &mut sorts);

    let mut bnd: Bindings<'q> = outer.clone();
    ctx.solve_conjuncts(&conjs, &sorts, &outer_vars, &mut bnd, &mut |bnd2| {
        k(ctx, bnd2)
    })
}

/// The conjunct list the pipelined scheduler solves: the synthesized
/// FROM conditions, the flattened WHERE clause, and the SELECT-only
/// enumeration pseudo-conjuncts (minus any made redundant by outer
/// bindings). Shared by the sequential and the parallel drivers so both
/// solve the same problem.
pub(crate) fn assemble_conjuncts<'q>(
    q: &'q SelectQuery,
    prep: &'q Prepared,
    outer: &Bindings<'q>,
) -> Vec<&'q Cond> {
    let mut conjs: Vec<&'q Cond> = prep.from_conds.iter().collect();
    flatten_and(&q.where_clause, &mut conjs);
    conjs.extend(prep.select_only.iter().filter(|c| match c {
        Cond::Path(p) => match &p.head {
            IdTerm::Var(v) => !outer.is_bound(&v.name),
            _ => true,
        },
        _ => true,
    }));
    conjs
}

/// The §3.4 naive specification engine: enumerate all substitutions of
/// OIDs (per sort) for all variables, filter by FROM and WHERE.
pub fn solve_query_naive<'q>(
    ctx: &Ctx<'_>,
    q: &'q SelectQuery,
    prep: &'q Prepared,
    outer: &Bindings<'q>,
    k: &mut dyn FnMut(&Ctx<'_>, &mut Bindings<'q>) -> XsqlResult<()>,
) -> XsqlResult<()> {
    let mut conjs: Vec<&'q Cond> = prep.from_conds.iter().collect();
    flatten_and(&q.where_clause, &mut conjs);

    let mut all_vars = BTreeSet::new();
    vars::query_vars(q, &mut all_vars);
    let mut sorts = BTreeMap::new();
    vars::var_sorts(q, &mut sorts);
    let todo: Vec<&str> = all_vars
        .iter()
        .copied()
        .filter(|v| !outer.is_bound(v))
        .collect();

    let mut bnd: Bindings<'_> = outer.clone();
    enumerate_all(ctx, &todo, 0, &sorts, &conjs, &mut bnd, k)
}

fn enumerate_all<'q>(
    ctx: &Ctx<'_>,
    todo: &[&'q str],
    i: usize,
    sorts: &BTreeMap<&'q str, VarSort>,
    conjs: &[&'q Cond],
    bnd: &mut Bindings<'q>,
    k: &mut dyn FnMut(&Ctx<'_>, &mut Bindings<'q>) -> XsqlResult<()>,
) -> XsqlResult<()> {
    if i == todo.len() {
        for c in conjs {
            if !ctx.holds(c, bnd)? {
                return Ok(());
            }
        }
        return k(ctx, bnd);
    }
    let v = todo[i];
    let sort = sorts.get(v).copied().unwrap_or(VarSort::Individual);
    let mark = bnd.mark();
    for o in ctx.var_domain(v, sort) {
        ctx.tick()?;
        bnd.push(v, o);
        enumerate_all(ctx, todo, i + 1, sorts, conjs, bnd, k)?;
        bnd.truncate(mark);
    }
    Ok(())
}

/// Evaluates the SELECT list under one satisfying binding and inserts
/// the resulting row(s). A set-valued item is unnested — one row per
/// member, the path-expression philosophy of §3.1 applied to output.
pub(crate) fn emit_rows<'q>(
    ctx: &Ctx<'_>,
    select: &'q [SelectItem],
    bnd: &Bindings<'q>,
    rows: &mut BTreeSet<Vec<Cell>>,
) -> XsqlResult<()> {
    let mut per_item: Vec<Vec<Cell>> = Vec::with_capacity(select.len());
    for item in select {
        let op = match item {
            SelectItem::Expr(op) => op,
            SelectItem::Named {
                value: SelectValue::Expr(op),
                ..
            } => op,
            other => {
                return Err(XsqlError::Internal(format!(
                    "emit_rows reached an unrewritten select item {other:?} \
                     (eval_rows_under rewrites these)"
                )))
            }
        };
        let elems = ctx.operand_value(op, bnd)?;
        if elems.is_empty() {
            // Undefined output expression: no tuple for this binding
            // (the same convention as a failing path).
            return Ok(());
        }
        ctx.check_binding_set(elems.len())?;
        per_item.push(elems.into_iter().map(Cell::from).collect());
    }
    // Cartesian product across items (each is usually a singleton).
    let mut row = Vec::with_capacity(per_item.len());
    product(ctx, &per_item, 0, &mut row, rows)?;
    Ok(())
}

fn product(
    ctx: &Ctx<'_>,
    per_item: &[Vec<Cell>],
    i: usize,
    row: &mut Vec<Cell>,
    rows: &mut BTreeSet<Vec<Cell>>,
) -> XsqlResult<()> {
    if i == per_item.len() {
        if rows.insert(row.clone()) {
            ctx.count_tuples(1)?;
        }
        return Ok(());
    }
    for &c in &per_item[i] {
        ctx.tick()?;
        row.push(c);
        product(ctx, per_item, i + 1, row, rows)?;
        row.pop();
    }
    Ok(())
}

/// Infers output column names (§3.3 examples title columns by the
/// selected attribute).
pub fn column_names(select: &[SelectItem]) -> Vec<String> {
    select
        .iter()
        .enumerate()
        .map(|(i, item)| match item {
            SelectItem::Named { attr, .. } => attr.clone(),
            SelectItem::MethodResult { method, .. } => method.clone(),
            SelectItem::Expr(op) => operand_name(op).unwrap_or_else(|| format!("c{i}")),
        })
        .collect()
}

fn operand_name(op: &Operand) -> Option<String> {
    match op {
        Operand::Path(p) => {
            if let Some(step) = p.steps.last() {
                match step {
                    Step::Method {
                        method: MethodTerm::Name(n),
                        ..
                    } => Some(n.clone()),
                    Step::Method {
                        method: MethodTerm::Var(n),
                        ..
                    } => Some(n.clone()),
                    Step::PathVar { name, .. } => Some(name.clone()),
                }
            } else {
                match &p.head {
                    IdTerm::Var(v) => Some(v.name.clone()),
                    _ => None,
                }
            }
        }
        Operand::Agg(f, _) => Some(
            match f {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            }
            .to_string(),
        ),
        _ => None,
    }
}

/// Converts rows to a relation, rejecting computed numerals (those need
/// interning — use a `Session`).
pub fn eval_to_relation(ctx: &Ctx<'_>, q: &SelectQuery) -> XsqlResult<Relation> {
    let (columns, rows) = eval_rows(ctx, q)?;
    let mut tuples = Vec::with_capacity(rows.len());
    for row in rows {
        let mut t = Vec::with_capacity(row.len());
        for c in row {
            match c {
                Cell::Obj(o) => t.push(o),
                Cell::Num(_) => {
                    return Err(XsqlError::Resolve(
                        "SELECT list computes new numerals; run through a Session \
                         (which can intern them)"
                            .into(),
                    ))
                }
            }
        }
        tuples.push(t);
    }
    Ok(Relation::from_tuples(columns, tuples))
}

#[cfg(test)]
mod column_tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve_stmt;
    use oodb::Database;

    fn cols(src: &str) -> Vec<String> {
        let mut db = Database::new();
        db.define_class("C", &[]).unwrap();
        let stmt = parse(src).unwrap();
        match resolve_stmt(&mut db, &stmt).unwrap() {
            crate::ast::Stmt::Select(q) => column_names(&q.select),
            _ => unreachable!(),
        }
    }

    #[test]
    fn names_follow_paper_conventions() {
        assert_eq!(cols("SELECT X FROM C X"), vec!["X"]);
        assert_eq!(
            cols("SELECT X.Name, W.Salary FROM C X"),
            vec!["Name", "Salary"]
        );
        assert_eq!(cols("SELECT count(X.A) FROM C X"), vec!["count"]);
        assert_eq!(
            cols("SELECT CompName = X.Name FROM C X OID FUNCTION OF X"),
            vec!["CompName"]
        );
        // Unnameable expressions fall back to positional names.
        assert_eq!(cols("SELECT X.A + 1 FROM C X"), vec!["c0"]);
    }
}
