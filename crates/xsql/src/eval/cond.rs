//! WHERE-clause evaluation: greedy nested-loop scheduling of conjuncts.
//!
//! The paper (§6.2) observes that queries are evaluated by nested loops:
//! "each path expression is evaluated by a sequence of nested loops …
//! and different path expressions are evaluated one-by-one". The
//! scheduler here picks, at each point, either a *filter* (a conjunct
//! whose variables are all bound — evaluated as a Boolean) or the
//! cheapest *generator* (a conjunct that can bind new variables by
//! traversal). A variable no conjunct can generate falls back to active-
//! domain enumeration, which preserves the naive §3.4 semantics exactly
//! (differentially tested against the naive engine).

use super::bindings::Bindings;
use super::path::{path_bound, term_bound};
use super::vars;
use super::Ctx;
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::Oid;
use std::collections::{BTreeMap, BTreeSet};

/// Continuation receiving each satisfying binding.
pub type SolveK<'a, 'q> = &'a mut dyn FnMut(&mut Bindings<'q>) -> XsqlResult<()>;

/// Flattens a conjunction into a list of conjuncts.
pub fn flatten_and<'q>(c: &'q Cond, out: &mut Vec<&'q Cond>) {
    match c {
        Cond::True => {}
        Cond::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// The variables that must be bound before conjunct `c` can be evaluated
/// as a filter: its direct variables plus, for nested subqueries, the
/// variables shared with the rest of the statement (`outer_vars`) —
/// those are correlated; purely subquery-local variables are solved by
/// the nested evaluation itself.
pub fn conjunct_vars<'q>(c: &'q Cond, outer_vars: &BTreeSet<&'q str>) -> BTreeSet<&'q str> {
    let mut out = BTreeSet::new();
    vars::cond_vars(c, &mut out);
    let mut subs = BTreeSet::new();
    collect_cond_subquery_vars(c, &mut subs);
    for v in subs {
        if outer_vars.contains(v) {
            out.insert(v);
        }
    }
    out
}

fn collect_cond_subquery_vars<'q>(c: &'q Cond, out: &mut BTreeSet<&'q str>) {
    match c {
        Cond::Cmp { left, right, .. } | Cond::SetCmp { left, right, .. } => {
            vars::subquery_vars(left, out);
            vars::subquery_vars(right, out);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_cond_subquery_vars(a, out);
            collect_cond_subquery_vars(b, out);
        }
        Cond::Not(a) => collect_cond_subquery_vars(a, out),
        Cond::Update(u) => {
            for a in &u.assignments {
                vars::subquery_vars(&a.value, out);
            }
        }
        _ => {}
    }
}

/// A partitionable outermost loop discovered by
/// [`Ctx::choose_partition`] for parallel evaluation: the variable to
/// split on and a sound superset of its satisfying values, already
/// filtered for sort admissibility.
pub(crate) struct Partition<'q> {
    pub var: &'q str,
    pub candidates: Vec<Oid>,
    /// Provenance of the candidate list (mirrors the decision chain of
    /// `head_candidates` / `instance_candidates`); surfaced by the
    /// `EXPLAIN ANALYZE` profile.
    pub source: &'static str,
}

enum Generator<'q> {
    /// A stand-alone path expression: traversal binds its variables.
    Path(&'q PathExpr),
    /// A comparison whose `quant`-`some` side is a path with unbound
    /// variables; traversal of that path binds them, the comparison then
    /// filters (sound only for existential quantification — with `all`,
    /// bindings yielding an *empty* path value satisfy the comparison
    /// vacuously and must come from domain enumeration instead).
    CmpPath(&'q PathExpr),
    /// `FROM C X`-shaped membership: enumerate the extent.
    InstanceOf(&'q IdTerm, &'q IdTerm),
    /// Schema predicate with variable sides: enumerate classes.
    SubclassOf(&'q IdTerm, &'q IdTerm),
    /// Disjunction: solve each branch.
    Or(&'q Cond, &'q Cond),
}

impl<'d> Ctx<'d> {
    /// Enumerates all bindings satisfying the conjunct list, extending
    /// `bnd`; invokes `k` per solution. `sorts` gives each variable's
    /// sort (for fallback domain enumeration); `outer_vars` the
    /// variables of the enclosing statement (for subquery correlation).
    pub fn solve_conjuncts<'q>(
        &self,
        conjs: &[&'q Cond],
        sorts: &BTreeMap<&'q str, VarSort>,
        outer_vars: &BTreeSet<&'q str>,
        bnd: &mut Bindings<'q>,
        k: SolveK<'_, 'q>,
    ) -> XsqlResult<()> {
        self.tick()?;
        if conjs.is_empty() {
            return k(bnd);
        }
        // 1. Any conjunct whose variables are all bound acts as a filter
        //    immediately (cheap pruning).
        for (i, c) in conjs.iter().enumerate() {
            let needs = conjunct_vars(c, outer_vars);
            if needs.iter().all(|v| bnd.is_bound(v)) {
                if !self.holds(c, bnd)? {
                    return Ok(());
                }
                let rest: Vec<&'q Cond> = conjs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, c)| *c)
                    .collect();
                return self.solve_conjuncts(&rest, sorts, outer_vars, bnd, k);
            }
        }
        // 2. Pick the cheapest generator.
        let mut best: Option<(usize, u64, Generator<'q>)> = None;
        for (i, c) in conjs.iter().enumerate() {
            if let Some((score, g)) = self.generator_for(c, bnd, outer_vars) {
                if best.as_ref().is_none_or(|(_, s, _)| score < *s) {
                    best = Some((i, score, g));
                }
            }
        }
        if let Some((i, _, g)) = best {
            let rest: Vec<&'q Cond> = conjs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| *c)
                .collect();
            return self.run_generator(g, conjs[i], &rest, sorts, outer_vars, bnd, k);
        }
        // 3. Fallback: enumerate the domain of some unbound variable.
        let mut unbound: Option<&'q str> = None;
        for c in conjs {
            for v in conjunct_vars(c, outer_vars) {
                if !bnd.is_bound(v) {
                    unbound = Some(v);
                    break;
                }
            }
            if unbound.is_some() {
                break;
            }
        }
        let Some(v) = unbound else {
            // All variables bound yet the all-bound filter pass (step 1)
            // did not fire. This would be a scheduler bug; report it as
            // an error rather than poisoning the process.
            return Err(XsqlError::Internal(
                "conjunct scheduler found no generator, no filter, and no \
                 unbound variable"
                    .into(),
            ));
        };
        let sort = sorts.get(v).copied().unwrap_or(VarSort::Individual);
        let mark = bnd.mark();
        for o in self.var_domain(v, sort) {
            self.tick()?;
            bnd.push(v, o);
            self.solve_conjuncts(conjs, sorts, outer_vars, bnd, k)?;
            bnd.truncate(mark);
        }
        Ok(())
    }

    /// Classifies a conjunct as a generator and estimates its fan-out.
    fn generator_for<'q>(
        &self,
        c: &'q Cond,
        bnd: &Bindings<'q>,
        outer_vars: &BTreeSet<&'q str>,
    ) -> Option<(u64, Generator<'q>)> {
        match c {
            Cond::Path(p) => {
                let head_bound = term_bound(&p.head, bnd);
                let score = if head_bound {
                    8
                } else {
                    self.head_domain_size(&p.head)
                };
                Some((score, Generator::Path(p)))
            }
            Cond::InstanceOf { obj, class } => {
                let score = match self.try_eval(class, bnd) {
                    Some(cl) => self.db.instances_of(cl).len() as u64,
                    None => (self.db.classes().count() as u64) * 64,
                };
                Some((score.max(1), Generator::InstanceOf(obj, class)))
            }
            Cond::SubclassOf { sub, sup } => {
                let n = self.db.classes().count() as u64;
                Some((n.max(1), Generator::SubclassOf(sub, sup)))
            }
            Cond::Or(a, b) => Some((64, Generator::Or(a, b))),
            Cond::Cmp {
                left,
                lq,
                rq,
                right,
                ..
            } => {
                // Existentially-quantified path side with unbound vars,
                // other side fully bound → generate from the path.
                let try_side = |side: &'q Operand,
                                q: Option<Quant>,
                                other: &'q Operand|
                 -> Option<Generator<'q>> {
                    let Operand::Path(p) = side else { return None };
                    if q == Some(Quant::All) {
                        return None;
                    }
                    if path_bound(p, bnd) {
                        return None;
                    }
                    let mut ov = BTreeSet::new();
                    vars::operand_vars(other, &mut ov);
                    let mut sv = BTreeSet::new();
                    vars::subquery_vars(other, &mut sv);
                    for v in sv {
                        if outer_vars.contains(v) {
                            ov.insert(v);
                        }
                    }
                    if ov.iter().all(|v| bnd.is_bound(v)) {
                        Some(Generator::CmpPath(p))
                    } else {
                        None
                    }
                };
                let g = try_side(right, *rq, left).or_else(|| try_side(left, *lq, right))?;
                let score = match &g {
                    Generator::CmpPath(p) if term_bound(&p.head, bnd) => 16,
                    Generator::CmpPath(p) => self.head_domain_size(&p.head) + 8,
                    // try_side only ever builds CmpPath generators.
                    _ => u64::MAX,
                };
                Some((score, g))
            }
            _ => None,
        }
    }

    fn head_domain_size(&self, head: &IdTerm) -> u64 {
        match head {
            IdTerm::Var(v) => match v.sort {
                VarSort::Individual => self.db.individual_count() as u64,
                VarSort::Class => self.db.classes().count() as u64,
                VarSort::Method => self.db.method_objects().count() as u64,
            },
            _ => self.db.individual_count() as u64,
        }
    }

    fn try_eval(&self, t: &IdTerm, bnd: &Bindings<'_>) -> Option<Oid> {
        if term_bound(t, bnd) {
            self.eval_idterm(t, bnd).ok().flatten()
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_generator<'q>(
        &self,
        g: Generator<'q>,
        this: &'q Cond,
        rest: &[&'q Cond],
        sorts: &BTreeMap<&'q str, VarSort>,
        outer_vars: &BTreeSet<&'q str>,
        bnd: &mut Bindings<'q>,
        k: SolveK<'_, 'q>,
    ) -> XsqlResult<()> {
        match g {
            Generator::Path(p) => {
                let (names, tuples) = self.distinct_extensions(p, bnd)?;
                let mark = bnd.mark();
                for tup in &tuples {
                    for (n, &o) in names.iter().zip(tup.iter()) {
                        bnd.push(n, o);
                    }
                    self.solve_conjuncts(rest, sorts, outer_vars, bnd, k)?;
                    bnd.truncate(mark);
                }
                Ok(())
            }
            Generator::CmpPath(p) => {
                let (names, tuples) = self.distinct_extensions(p, bnd)?;
                let mark = bnd.mark();
                for tup in &tuples {
                    for (n, &o) in names.iter().zip(tup.iter()) {
                        bnd.push(n, o);
                    }
                    // The comparison itself still filters under the new
                    // bindings.
                    if self.holds(this, bnd)? {
                        self.solve_conjuncts(rest, sorts, outer_vars, bnd, k)?;
                    }
                    bnd.truncate(mark);
                }
                Ok(())
            }
            Generator::InstanceOf(obj, class) => {
                let mark = bnd.mark();
                match self.try_eval(class, bnd) {
                    Some(cl) => {
                        for o in self.instance_candidates(obj, cl, bnd) {
                            self.tick()?;
                            if self.unify(obj, o, bnd)? {
                                self.solve_conjuncts(rest, sorts, outer_vars, bnd, k)?;
                                bnd.truncate(mark);
                            }
                        }
                        Ok(())
                    }
                    None => {
                        // Class side is a variable: enumerate classes
                        // (the §3.1 query template `FROM #X Y`).
                        let classes: Vec<Oid> = self.db.classes().collect();
                        for cl in classes {
                            self.tick()?;
                            if self.unify(class, cl, bnd)? {
                                for o in self.instance_candidates(obj, cl, bnd) {
                                    self.tick()?;
                                    let m2 = bnd.mark();
                                    if self.unify(obj, o, bnd)? {
                                        self.solve_conjuncts(rest, sorts, outer_vars, bnd, k)?;
                                        bnd.truncate(m2);
                                    }
                                }
                                bnd.truncate(mark);
                            }
                        }
                        Ok(())
                    }
                }
            }
            Generator::SubclassOf(sub, sup) => {
                let classes: Vec<Oid> = self.db.classes().collect();
                let mark = bnd.mark();
                let sub_one;
                let subs: &[Oid] = match self.try_eval(sub, bnd) {
                    Some(c) => {
                        sub_one = [c];
                        &sub_one
                    }
                    None => &classes,
                };
                for &s in subs {
                    if !self.unify(sub, s, bnd)? {
                        continue;
                    }
                    let sup_one;
                    let sups: &[Oid] = match self.try_eval(sup, bnd) {
                        Some(c) => {
                            sup_one = [c];
                            &sup_one
                        }
                        None => &classes,
                    };
                    let m2 = bnd.mark();
                    for &t in sups {
                        self.tick()?;
                        if self.unify(sup, t, bnd)? {
                            if self.db.is_strict_subclass(s, t) {
                                self.solve_conjuncts(rest, sorts, outer_vars, bnd, k)?;
                            }
                            bnd.truncate(m2);
                        }
                    }
                    bnd.truncate(mark);
                }
                Ok(())
            }
            Generator::Or(a, b) => {
                // Solutions of a disjunction: union of the branches.
                // A binding satisfying both branches is emitted twice;
                // results are sets, so this is sound (and the grouped
                // `{W}` accumulator is a set as well).
                for branch in [a, b] {
                    let mut list: Vec<&'q Cond> = Vec::new();
                    flatten_and(branch, &mut list);
                    list.extend_from_slice(rest);
                    self.solve_conjuncts(&list, sorts, outer_vars, bnd, k)?;
                }
                Ok(())
            }
        }
    }

    fn instance_candidates(&self, obj: &IdTerm, class: Oid, bnd: &Bindings<'_>) -> Vec<Oid> {
        // If the object side is already determined, test just it.
        if let Some(o) = self.try_eval(obj, bnd) {
            if self.db.is_instance_of(o, class) {
                return vec![o];
            }
            return Vec::new();
        }
        // Narrow by Theorem 6.1 range if the variable has one.
        if let IdTerm::Var(v) = obj {
            if let Some(rs) = self.ranges {
                if let Some(set) = rs.get(&v.name) {
                    return set
                        .iter()
                        .copied()
                        .filter(|&o| self.db.is_instance_of(o, class))
                        .collect();
                }
            }
        }
        self.db.instances_of(class)
    }

    /// Picks the variable a parallel evaluation partitions on, together
    /// with its candidate values, by mirroring the scheduler's first
    /// generator choice under empty bindings. Returns `None` when no
    /// partition is worthwhile or safe — a ground conjunct present
    /// (sequential evaluation would fire it as a filter first), the
    /// cheapest generator is not an outer candidate loop, or the
    /// candidates cannot be enumerated up front.
    ///
    /// Soundness does not depend on matching the sequential scheduler:
    /// the candidate list is a superset of every value the variable
    /// takes in any solution (Theorem 6.1 ranges, the method index, and
    /// extents are all sound supersets), and `solve_conjuncts` under a
    /// pre-bound variable enumerates exactly the solutions with that
    /// binding — so the union over the partition is the full, exact
    /// solution set.
    pub(crate) fn choose_partition<'q>(
        &self,
        conjs: &[&'q Cond],
        outer_vars: &BTreeSet<&'q str>,
    ) -> XsqlResult<Option<Partition<'q>>> {
        let bnd = Bindings::new();
        for c in conjs {
            if conjunct_vars(c, outer_vars).is_empty() {
                return Ok(None);
            }
        }
        let mut best: Option<(u64, Generator<'q>)> = None;
        for c in conjs {
            if let Some((score, g)) = self.generator_for(c, &bnd, outer_vars) {
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((score, g));
                }
            }
        }
        let part = match best {
            Some((_, Generator::Path(p))) | Some((_, Generator::CmpPath(p))) => {
                let IdTerm::Var(v) = &p.head else {
                    return Ok(None);
                };
                // Mirror `walk_path`: budget the candidate set, then
                // keep only sort-admissible heads.
                let candidates = self.head_candidates(p, v, &bnd);
                self.check_binding_set(candidates.len())?;
                Partition {
                    var: &v.name,
                    candidates: candidates
                        .into_iter()
                        .filter(|&o| self.sort_ok(v.sort, o))
                        .collect(),
                    source: self.head_candidate_source(p, v),
                }
            }
            Some((_, Generator::InstanceOf(obj, class))) => {
                let IdTerm::Var(v) = obj else {
                    return Ok(None);
                };
                let Some(cl) = self.try_eval(class, &bnd) else {
                    return Ok(None);
                };
                Partition {
                    var: &v.name,
                    candidates: self
                        .instance_candidates(obj, cl, &bnd)
                        .into_iter()
                        .filter(|&o| self.sort_ok(v.sort, o))
                        .collect(),
                    source: if self
                        .ranges
                        .is_some_and(|rs| rs.contains_key(v.name.as_str()))
                    {
                        "theorem-6.1-range"
                    } else {
                        "class-extent"
                    },
                }
            }
            _ => return Ok(None),
        };
        Ok(Some(part))
    }

    /// Enumerates the distinct extensions of `bnd` that satisfy path
    /// `p`: returns the unbound variable names and the set of value
    /// tuples (deduplicated — many database paths can induce the same
    /// bindings).
    pub fn distinct_extensions<'q>(
        &self,
        p: &'q PathExpr,
        bnd: &mut Bindings<'q>,
    ) -> XsqlResult<(Vec<&'q str>, BTreeSet<Vec<Oid>>)> {
        let mut pv = BTreeSet::new();
        vars::path_vars(p, &mut pv);
        let names: Vec<&'q str> = pv.into_iter().filter(|v| !bnd.is_bound(v)).collect();
        let mut tuples = BTreeSet::new();
        {
            let names_ref = &names;
            let tuples_ref = &mut tuples;
            self.walk_path(p, bnd, &mut |_tail, bnd2| {
                let mut tup: Vec<Oid> = Vec::with_capacity(names_ref.len());
                for n in names_ref.iter() {
                    match bnd2.get(n) {
                        Some(o) => tup.push(o),
                        None => {
                            return Err(XsqlError::Internal(format!(
                                "path walker reached a solution without binding `{n}`"
                            )))
                        }
                    }
                }
                if tuples_ref.insert(tup) {
                    self.count_tuples(1)?;
                }
                Ok(())
            })?;
        }
        Ok((names, tuples))
    }

    /// Boolean evaluation of a fully-bound condition.
    pub fn holds<'q>(&self, c: &'q Cond, bnd: &Bindings<'q>) -> XsqlResult<bool> {
        self.tick()?;
        match c {
            Cond::True => Ok(true),
            Cond::Path(p) => Ok(!self.path_value(p, bnd)?.is_empty()),
            Cond::Cmp {
                left,
                lq,
                op,
                rq,
                right,
            } => {
                let l = self.operand_value(left, bnd)?;
                let r = self.operand_value(right, bnd)?;
                Ok(self.compare(&l, *lq, *op, *rq, &r))
            }
            Cond::SetCmp { left, op, right } => {
                let l = self.operand_value(left, bnd)?;
                let r = self.operand_value(right, bnd)?;
                Ok(self.set_compare(&l, *op, &r))
            }
            Cond::SubclassOf { sub, sup } => {
                let (Some(s), Some(t)) = (self.eval_idterm(sub, bnd)?, self.eval_idterm(sup, bnd)?)
                else {
                    return Ok(false);
                };
                Ok(self.db.is_strict_subclass(s, t))
            }
            Cond::InstanceOf { obj, class } => {
                let (Some(o), Some(cl)) =
                    (self.eval_idterm(obj, bnd)?, self.eval_idterm(class, bnd)?)
                else {
                    return Ok(false);
                };
                Ok(self.db.is_instance_of(o, cl))
            }
            Cond::And(a, b) => Ok(self.holds(a, bnd)? && self.holds(b, bnd)?),
            Cond::Or(a, b) => Ok(self.holds(a, bnd)? || self.holds(b, bnd)?),
            Cond::Not(a) => Ok(!self.holds(a, bnd)?),
            Cond::Update(_) => Err(XsqlError::Resolve(
                "UPDATE conjuncts are only allowed inside update-method bodies".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve_stmt;
    use oodb::Database;

    fn where_clause(db: &mut Database, src: &str) -> Cond {
        let stmt = parse(src).unwrap();
        match resolve_stmt(db, &stmt).unwrap() {
            crate::ast::Stmt::Select(q) => q.where_clause,
            _ => unreachable!(),
        }
    }

    #[test]
    fn flatten_and_splits_conjunctions_only() {
        let mut db = Database::new();
        db.define_class("C", &[]).unwrap();
        let c = where_clause(
            &mut db,
            "SELECT X FROM C X WHERE X.A and (X.B or X.D) and not X.E",
        );
        let mut out = Vec::new();
        flatten_and(&c, &mut out);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Cond::Path(_)));
        assert!(matches!(out[1], Cond::Or(..)));
        assert!(matches!(out[2], Cond::Not(_)));
    }

    #[test]
    fn conjunct_vars_includes_correlated_subquery_vars_only() {
        let mut db = Database::new();
        db.define_class("C", &[]).unwrap();
        let c = where_clause(
            &mut db,
            "SELECT X FROM C X WHERE 5 <all (SELECT W FROM C Y WHERE X.A[Y].B[W])",
        );
        let mut out = Vec::new();
        flatten_and(&c, &mut out);
        // Outer vars: X (FROM). The subquery's W and Y are local; X is
        // correlated and must gate the conjunct.
        let outer: BTreeSet<&str> = ["X"].into_iter().collect();
        let needs = conjunct_vars(out[0], &outer);
        assert!(needs.contains("X"));
        assert!(!needs.contains("W"));
        assert!(!needs.contains("Y"));
    }
}
