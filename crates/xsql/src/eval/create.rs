//! Object-creating queries (§4.1): `OID FUNCTION OF`.
//!
//! Evaluation is two-phase: a read-only solve collects, per id-function
//! key, the attribute descriptions each satisfying binding contributes;
//! then the mutation phase interns the id-terms, registers the new
//! objects and stores their state. Two bindings with the same key that
//! contribute *different* values to a non-grouped attribute are "two
//! conflicting descriptions of the same object … an ill-defined query (a
//! run-time error)" — exactly the paper's semantics.

use super::bindings::Bindings;
use super::select::{prepare, solve_query};
use super::value::Cell;
use super::{Ctx, EvalOptions};
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid};
use std::collections::{BTreeMap, BTreeSet};

/// How an attribute of the created objects gets its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttrKind {
    /// Per-binding expression; all bindings with the same key must
    /// agree.
    Plain,
    /// `{W}` accumulation across bindings (§4.1 query (8)).
    Grouped,
}

/// Accumulated description of one object-to-be.
#[derive(Debug, Default)]
struct Pending {
    /// attr -> distinct observed value vectors (plain attributes).
    plain: BTreeMap<String, BTreeSet<Vec<Cell>>>,
    /// attr -> accumulated members (grouped attributes).
    grouped: BTreeMap<String, BTreeSet<Cell>>,
}

/// Runs an object-creating query. `fn_name` is the id-function symbol
/// (the view name, or a generated one); `class` the class the created
/// objects become instances of (the view class; `None` for ad-hoc
/// queries); `sig_set_valued` maps declared attributes to their
/// set-valuedness when a SIGNATURE clause is available.
pub fn run_creation(
    db: &mut Database,
    q: &SelectQuery,
    opts: &EvalOptions,
    fn_name: &str,
    class: Option<Oid>,
    sig_set_valued: &BTreeMap<String, bool>,
) -> XsqlResult<Vec<Oid>> {
    let spec = q.oid_fn.as_ref().ok_or_else(|| {
        XsqlError::Resolve("run_creation requires an OID FUNCTION OF clause".into())
    })?;
    let key_vars: Vec<&str> = spec.vars.iter().map(|v| v.name.as_str()).collect();

    // Classify the SELECT items.
    let mut items: Vec<(&str, AttrKind)> = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Named { attr, value } => match value {
                SelectValue::Expr(_) => items.push((attr, AttrKind::Plain)),
                SelectValue::Grouped(_) => items.push((attr, AttrKind::Grouped)),
            },
            other => {
                return Err(XsqlError::Resolve(format!(
                    "object-creating queries must name their attributes \
                     (`Attr = expr`); found {other:?}"
                )))
            }
        }
    }

    // Phase 1: read-only solve, accumulate descriptions per key.
    let mut pending: BTreeMap<Vec<Oid>, Pending> = BTreeMap::new();
    {
        let ctx = Ctx::new(db, opts);
        let prep = prepare(q);
        let outer = Bindings::new();
        solve_query(&ctx, q, &prep, &outer, &mut |ctx2, bnd| {
            let mut key = Vec::with_capacity(key_vars.len());
            for v in &key_vars {
                match bnd.get(v) {
                    Some(o) => key.push(o),
                    None => return Err(XsqlError::Unbound((*v).to_string())),
                }
            }
            let entry = pending.entry(key).or_default();
            for item in &q.select {
                let SelectItem::Named { attr, value } = item else {
                    // The select-list shape was validated above; an
                    // unnamed item here is an engine bug.
                    return Err(XsqlError::Internal(
                        "object-creating query reached phase 1 with an \
                         unnamed select item"
                            .into(),
                    ));
                };
                match value {
                    SelectValue::Expr(op) => {
                        let elems = ctx2.operand_value(op, bnd)?;
                        let cells: Vec<Cell> = elems.into_iter().map(Cell::from).collect();
                        entry.plain.entry(attr.clone()).or_default().insert(cells);
                    }
                    SelectValue::Grouped(v) => {
                        if let Some(o) = bnd.get(&v.name) {
                            entry
                                .grouped
                                .entry(attr.clone())
                                .or_default()
                                .insert(Cell::Obj(o));
                        }
                    }
                }
            }
            Ok(())
        })?;
    }

    // Phase 2: conflict-check, intern, register, store.
    let fn_sym = db.oids_mut().sym(fn_name);
    let mut created = Vec::with_capacity(pending.len());
    for (key, entry) in pending {
        let oid = db.oids_mut().func(fn_sym, &key);
        let classes: Vec<Oid> = class.into_iter().collect();
        db.register_individual(oid, &classes)?;
        created.push(oid);
        for (attr, kind) in &items {
            let m = db.oids_mut().sym(attr);
            match kind {
                AttrKind::Grouped => {
                    let members = entry.grouped.get(*attr).cloned().unwrap_or_default();
                    let oids: Vec<Oid> = members
                        .into_iter()
                        .map(|c| c.into_oid(db.oids_mut()))
                        .collect();
                    db.set_set(oid, m, &[], oids)?;
                }
                AttrKind::Plain => {
                    let observed = entry.plain.get(*attr).cloned().unwrap_or_default();
                    if observed.len() > 1 {
                        // §4.1: "two conflicting descriptions of the
                        // same object … an ill-defined query".
                        // (len > 1 guarantees both unwraps below.)
                        let mut it = observed.iter();
                        let a = render_cells(db, it.next().unwrap());
                        let b = render_cells(db, it.next().unwrap());
                        return Err(XsqlError::IllDefined(format!(
                            "object {} receives conflicting values for `{attr}`: {a} vs {b}",
                            db.render(oid)
                        )));
                    }
                    let Some(cells) = observed.into_iter().next() else {
                        continue;
                    };
                    if cells.is_empty() {
                        // Undefined attribute for this object: a null.
                        continue;
                    }
                    let set_valued = sig_set_valued
                        .get(*attr)
                        .copied()
                        .unwrap_or(cells.len() > 1);
                    if set_valued {
                        let oids: Vec<Oid> = cells
                            .into_iter()
                            .map(|c| c.into_oid(db.oids_mut()))
                            .collect();
                        db.set_set(oid, m, &[], oids)?;
                    } else {
                        if cells.len() > 1 {
                            return Err(XsqlError::IllDefined(format!(
                                "scalar attribute `{attr}` of {} received {} values",
                                db.render(oid),
                                cells.len()
                            )));
                        }
                        let v = cells[0].into_oid(db.oids_mut());
                        db.set_scalar(oid, m, &[], v)?;
                    }
                }
            }
        }
    }
    Ok(created)
}

fn render_cells(db: &Database, cells: &[Cell]) -> String {
    let parts: Vec<String> = cells
        .iter()
        .map(|c| match c {
            Cell::Obj(o) => db.render(*o),
            Cell::Num(n) => format!("{}", n.get()),
        })
        .collect();
    format!("{{{}}}", parts.join(", "))
}
