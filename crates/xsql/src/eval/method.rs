//! Query-defined methods (§5): `ALTER CLASS … ADD SIGNATURE … SELECT
//! (M @ …) = … OID X WHERE …`, including update methods.

use super::bindings::Bindings;
use super::cond::flatten_and;
use super::update::exec_update;
use super::value::Elem;
use super::vars;
use super::{Ctx, EvalOptions};
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, DbError, DbResult, MethodImpl, Oid, Val};
use std::collections::{BTreeMap, BTreeSet};

/// A method whose implementation is an XSQL query (§5). Stored in the
/// database as a [`MethodImpl`]; invocation binds the `OID X` self
/// variable to the receiver, unifies the formal argument terms with the
/// actual arguments, solves the FROM/WHERE clause, and evaluates the
/// result expression per solution.
pub struct QueryMethod {
    /// The resolved defining query (select[0] is `MethodResult`).
    query: SelectQuery,
    /// Name of the self variable (`OID X`).
    self_var: String,
    /// Result multiplicity from the declared signature.
    set_valued: bool,
    /// True when the WHERE clause contains UPDATE conjuncts.
    has_update: bool,
    /// Engine options for the body (always pipelined).
    opts: EvalOptions,
    /// Rendered name, for diagnostics.
    name: String,
}

impl std::fmt::Debug for QueryMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryMethod")
            .field("name", &self.name)
            .field("set_valued", &self.set_valued)
            .field("has_update", &self.has_update)
            .finish()
    }
}

fn cond_has_update(c: &Cond) -> bool {
    match c {
        Cond::Update(_) => true,
        Cond::And(a, b) | Cond::Or(a, b) => cond_has_update(a) || cond_has_update(b),
        Cond::Not(a) => cond_has_update(a),
        _ => false,
    }
}

impl QueryMethod {
    /// Builds a query method from a resolved ALTER CLASS statement.
    pub fn from_alter(a: &AlterClass, opts: EvalOptions) -> XsqlResult<QueryMethod> {
        let spec = a.query.oid_fn.as_ref().ok_or_else(|| {
            XsqlError::Resolve("method definition requires an `OID X` clause".into())
        })?;
        if spec.vars.len() != 1 {
            return Err(XsqlError::Resolve(
                "the `OID` clause of a method definition names exactly the self variable".into(),
            ));
        }
        let Some(SelectItem::MethodResult { method, args, .. }) = a.query.select.first() else {
            return Err(XsqlError::Resolve(
                "method definition SELECT must have the form `(M @ args) = expr`".into(),
            ));
        };
        if *method != a.signature.method {
            return Err(XsqlError::Resolve(format!(
                "SELECT defines `{method}` but the signature declares `{}`",
                a.signature.method
            )));
        }
        if args.len() != a.signature.args.len() {
            return Err(XsqlError::Resolve(format!(
                "`{method}` is declared with {} argument(s) but defined with {}",
                a.signature.args.len(),
                args.len()
            )));
        }
        Ok(QueryMethod {
            query: a.query.clone(),
            self_var: spec.vars[0].name.clone(),
            set_valued: a.signature.set_valued,
            has_update: cond_has_update(&a.query.where_clause),
            opts: EvalOptions {
                strategy: super::Strategy::Pipelined,
                // Method bodies always run under non-empty bindings
                // (the receiver), so they never parallelize; pin the
                // option to make that explicit.
                parallelism: 1,
                ..opts
            },
            name: format!("{}::{}", a.class, method),
        })
    }

    fn parts(&self) -> (&[IdTerm], &Operand) {
        match self.query.select.first() {
            Some(SelectItem::MethodResult { args, value, .. }) => (args, value),
            // Genuinely unreachable: `from_alter` is the only
            // constructor and rejects any other select-list shape, and
            // `query` is never mutated afterwards.
            _ => unreachable!("validated in from_alter"),
        }
    }

    fn fail(&self, msg: impl Into<String>) -> DbError {
        DbError::MethodFailed {
            method: self.name.clone(),
            message: msg.into(),
        }
    }

    /// Binds self and unifies formal parameters; returns the synthesized
    /// parameter conjuncts that must hold (for non-variable formals).
    fn param_conds(&self, actual: &[Oid]) -> Vec<Cond> {
        let (params, _) = self.parts();
        params
            .iter()
            .zip(actual.iter())
            .map(|(t, &a)| {
                // `(MngrSalary @ Y.Name)`: the actual argument must be a
                // member of the formal path's value (the paper's Z-
                // rewriting). A plain-variable formal is bound directly
                // at invocation; the equality below is then a no-op
                // filter that keeps the two cases uniform.
                let left = match t {
                    IdTerm::PathArg(p) => Operand::Path((**p).clone()),
                    other => Operand::Path(PathExpr::atom(other.clone())),
                };
                Cond::Cmp {
                    left,
                    lq: None,
                    op: CmpOp::Eq,
                    rq: None,
                    right: Operand::Path(PathExpr::atom(IdTerm::Oid(a))),
                }
            })
            .collect()
    }

    /// Solves FROM + non-update WHERE prefix, returning binding
    /// snapshots and the conjuncts that remained (the suffix starting at
    /// the first UPDATE, in source order).
    #[allow(clippy::type_complexity)]
    fn solve_prefix<'a>(
        &'a self,
        db: &Database,
        recv: Oid,
        actual: &[Oid],
        depth: usize,
        param_conds: &'a [Cond],
        from_conds: &'a [Cond],
    ) -> XsqlResult<(Vec<Vec<(String, Oid)>>, Vec<&'a Cond>)> {
        let ctx = Ctx::with_depth(db, &self.opts, depth);
        let mut body: Vec<&Cond> = Vec::new();
        flatten_and(&self.query.where_clause, &mut body);
        // Conjuncts are evaluated left-to-right (§5); everything from
        // the first UPDATE on is deferred to the mutation phase.
        let split = body
            .iter()
            .position(|c| matches!(c, Cond::Update(_)))
            .unwrap_or(body.len());
        let (prefix_body, suffix) = body.split_at(split);

        let mut conjs: Vec<&Cond> = Vec::new();
        conjs.extend(param_conds.iter());
        conjs.extend(from_conds.iter());
        conjs.extend(prefix_body.iter().copied());

        let mut sorts = BTreeMap::new();
        vars::var_sorts(&self.query, &mut sorts);
        let mut outer_vars = BTreeSet::new();
        vars::query_vars(&self.query, &mut outer_vars);

        let mut bnd = Bindings::new();
        bnd.push(&self.self_var, recv);
        let (params, _) = self.parts();
        for (t, &a) in params.iter().zip(actual.iter()) {
            if let IdTerm::Var(v) = t {
                bnd.push(&v.name, a);
            }
        }
        let mut snapshots: Vec<Vec<(String, Oid)>> = Vec::new();
        ctx.solve_conjuncts(&conjs, &sorts, &outer_vars, &mut bnd, &mut |bnd2| {
            snapshots.push(bnd2.iter().map(|(n, o)| (n.to_string(), o)).collect());
            Ok(())
        })?;
        Ok((snapshots, suffix.to_vec()))
    }

    #[allow(clippy::wrong_self_convention)] // synthesizes FROM conjuncts
    fn from_conds(&self) -> Vec<Cond> {
        self.query
            .from
            .iter()
            .map(|f| Cond::InstanceOf {
                obj: IdTerm::Var(f.var.clone()),
                class: f.class.clone(),
            })
            .collect()
    }

    fn collect_result(
        &self,
        db: &Database,
        snapshots: &[Vec<(String, Oid)>],
        depth: usize,
    ) -> DbResult<Option<Val>> {
        let (_, result) = self.parts();
        let ctx = Ctx::with_depth(db, &self.opts, depth);
        let mut values: BTreeSet<Oid> = BTreeSet::new();
        for snap in snapshots {
            let mut bnd = Bindings::new();
            for (n, o) in snap {
                bnd.push(n, *o);
            }
            let elems = ctx
                .operand_value(result, &bnd)
                .map_err(|e| self.fail(e.to_string()))?;
            for e in elems {
                match e {
                    Elem::Obj(o) => {
                        values.insert(o);
                    }
                    Elem::Num(_) => {
                        return Err(self.fail(
                            "method result computed a new numeral; store it via an \
                             update method instead",
                        ))
                    }
                }
            }
        }
        if self.set_valued {
            if values.is_empty() {
                Ok(None)
            } else {
                Ok(Some(Val::Set(values)))
            }
        } else {
            match values.len() {
                0 => Ok(None),
                1 => Ok(Some(Val::Scalar(values.into_iter().next().unwrap()))),
                n => Err(self.fail(format!("scalar method produced {n} distinct results"))),
            }
        }
    }
}

impl MethodImpl for QueryMethod {
    fn invoke(
        &self,
        db: &Database,
        recv: Oid,
        args: &[Oid],
        depth: usize,
    ) -> DbResult<Option<Val>> {
        if self.has_update {
            return Err(self.fail("update method invoked in read-only context"));
        }
        let (params, _) = self.parts();
        if params.len() != args.len() {
            return Err(DbError::ArityOrKindMismatch {
                method: self.name.clone(),
                detail: format!("expected {} argument(s), got {}", params.len(), args.len()),
            });
        }
        let param_conds = self.param_conds(args);
        let from_conds = self.from_conds();
        let (snapshots, suffix) = self
            .solve_prefix(db, recv, args, depth, &param_conds, &from_conds)
            .map_err(|e| self.fail(e.to_string()))?;
        debug_assert!(suffix.is_empty());
        self.collect_result(db, &snapshots, depth)
    }

    fn invoke_mut(
        &self,
        db: &mut Database,
        recv: Oid,
        args: &[Oid],
        depth: usize,
    ) -> DbResult<Option<Val>> {
        if !self.has_update {
            return self.invoke(db, recv, args, depth);
        }
        let (params, _) = self.parts();
        if params.len() != args.len() {
            return Err(DbError::ArityOrKindMismatch {
                method: self.name.clone(),
                detail: format!("expected {} argument(s), got {}", params.len(), args.len()),
            });
        }
        let param_conds = self.param_conds(args);
        let from_conds = self.from_conds();
        let (snapshots, suffix_owned): (Vec<Vec<(String, Oid)>>, Vec<Cond>) = {
            let (snaps, suffix) = self
                .solve_prefix(db, recv, args, depth, &param_conds, &from_conds)
                .map_err(|e| self.fail(e.to_string()))?;
            (snaps, suffix.into_iter().cloned().collect())
        };
        // Mutation phase: per binding, evaluate the remaining conjuncts
        // left-to-right against the *current* database state.
        let mut surviving: Vec<Vec<(String, Oid)>> = Vec::new();
        'snap: for snap in snapshots {
            for c in &suffix_owned {
                match c {
                    Cond::Update(u) => {
                        exec_update(db, u, &snap, &self.opts)
                            .map_err(|e| self.fail(e.to_string()))?;
                        // An UPDATE conjunct is true iff it succeeded —
                        // a failure is an error, so reaching here means
                        // success.
                    }
                    other => {
                        let ctx = Ctx::with_depth(db, &self.opts, depth);
                        let mut bnd = Bindings::new();
                        for (n, o) in &snap {
                            bnd.push(n, *o);
                        }
                        if !ctx
                            .holds(other, &bnd)
                            .map_err(|e| self.fail(e.to_string()))?
                        {
                            continue 'snap;
                        }
                    }
                }
            }
            surviving.push(snap);
        }
        self.collect_result(db, &surviving, depth)
    }

    fn is_update(&self) -> bool {
        self.has_update
    }
}

/// Installs a resolved ALTER CLASS statement: declares the signature and
/// defines the query method on the class.
pub fn install_method(
    db: &mut Database,
    a: &AlterClass,
    opts: &EvalOptions,
) -> XsqlResult<(Oid, Oid)> {
    let class = db
        .oids()
        .find_sym(&a.class)
        .filter(|&c| db.is_class(c))
        .ok_or_else(|| XsqlError::Resolve(format!("unknown class `{}`", a.class)))?;
    let mut arg_classes = Vec::with_capacity(a.signature.args.len());
    for name in &a.signature.args {
        let c = db
            .oids()
            .find_sym(name)
            .filter(|&c| db.is_class(c))
            .ok_or_else(|| XsqlError::Resolve(format!("unknown class `{name}` in signature")))?;
        arg_classes.push(c);
    }
    let result_class = db
        .oids()
        .find_sym(&a.signature.result)
        .filter(|&c| db.is_class(c))
        .ok_or_else(|| {
            XsqlError::Resolve(format!(
                "unknown class `{}` in signature",
                a.signature.result
            ))
        })?;
    let method = db.add_signature(
        class,
        &a.signature.method,
        &arg_classes,
        result_class,
        a.signature.set_valued,
    )?;
    let qm = QueryMethod::from_alter(a, opts.clone())?;
    let arity = a.signature.args.len();
    db.define_method(class, method, arity, std::sync::Arc::new(qm))?;
    Ok((class, method))
}
