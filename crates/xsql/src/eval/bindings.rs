//! Variable bindings with stack discipline for backtracking search.

use oodb::Oid;

/// A substitution of OIDs for variables, maintained as a stack so the
/// nested-loop evaluator can bind on descent and truncate on backtrack.
/// Variable names borrow from the (resolved) query AST.
#[derive(Debug, Default, Clone)]
pub struct Bindings<'q> {
    stack: Vec<(&'q str, Oid)>,
}

/// A mark returned by [`Bindings::mark`]; truncating to it undoes every
/// binding pushed since.
#[derive(Debug, Clone, Copy)]
pub struct Mark(usize);

impl<'q> Bindings<'q> {
    /// An empty substitution.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Value bound to `name`, if any. Later bindings shadow earlier ones
    /// (they never coexist in practice — a variable is bound once per
    /// branch — but scanning from the top keeps the invariant cheap).
    pub fn get(&self, name: &str) -> Option<Oid> {
        self.stack
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|&(_, o)| o)
    }

    /// True if `name` is bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Pushes a binding.
    pub fn push(&mut self, name: &'q str, value: Oid) {
        self.stack.push((name, value));
    }

    /// Current stack position.
    pub fn mark(&self) -> Mark {
        Mark(self.stack.len())
    }

    /// Pops bindings back to `mark`.
    pub fn truncate(&mut self, mark: Mark) {
        self.stack.truncate(mark.0);
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Iterates over live bindings (bottom to top).
    pub fn iter(&self) -> impl Iterator<Item = (&'q str, Oid)> + '_ {
        self.stack.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::OidTable;

    #[test]
    fn push_get_truncate() {
        let mut t = OidTable::new();
        let (a, b) = (t.sym("a"), t.sym("b"));
        let mut bnd = Bindings::new();
        assert!(bnd.get("X").is_none());
        bnd.push("X", a);
        let m = bnd.mark();
        bnd.push("Y", b);
        assert_eq!(bnd.get("X"), Some(a));
        assert_eq!(bnd.get("Y"), Some(b));
        bnd.truncate(m);
        assert_eq!(bnd.get("X"), Some(a));
        assert!(bnd.get("Y").is_none());
    }

    #[test]
    fn shadowing_reads_latest() {
        let mut t = OidTable::new();
        let (a, b) = (t.sym("a"), t.sym("b"));
        let mut bnd = Bindings::new();
        bnd.push("X", a);
        bnd.push("X", b);
        assert_eq!(bnd.get("X"), Some(b));
    }
}
