//! Path-expression satisfaction (§3.1, §5).
//!
//! Two entry points share the step-walking core:
//!
//! * [`Ctx::walk_path`] — *generate* mode: unbound variables are
//!   enumerated (head variables over their sort's active domain, method
//!   variables over the methods defined on the current object, unbound
//!   method arguments over the stored argument tuples) and pushed onto
//!   the bindings; the continuation receives every satisfying tail.
//! * [`Ctx::path_value`] — *strict* mode: the value of a ground path
//!   expression, i.e. "the set of the tail objects of the database paths
//!   satisfying it" (§3.2). Any unbound variable is an error — the
//!   scheduler only evaluates operands once their variables are bound.

use super::bindings::Bindings;
use super::Ctx;
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Oid, OidData, Val};
use std::collections::BTreeSet;

/// Continuation invoked with each satisfying tail object.
pub type PathK<'a, 'q> = &'a mut dyn FnMut(Oid, &mut Bindings<'q>) -> XsqlResult<()>;

impl<'d> Ctx<'d> {
    /// True if `o` may be bound to a variable of sort `sort` (§3.1: the
    /// three variable varieties range over the three sub-universes).
    pub fn sort_ok(&self, sort: VarSort, o: Oid) -> bool {
        match sort {
            VarSort::Class => self.db.is_class(o),
            VarSort::Method => self.db.is_method_object(o),
            // Individual variables must not capture class-objects; the
            // class universe is disjoint from the others (§2).
            VarSort::Individual => !self.db.is_class(o),
        }
    }

    /// OID equality with numeral insensitivity: the numeral object `2`
    /// and the numeral object `2.0` denote the same abstract number.
    pub fn oid_eq(&self, a: Oid, b: Oid) -> bool {
        if a == b {
            return true;
        }
        match (self.db.oids().as_number(a), self.db.oids().as_number(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Evaluates a *ground-under-bindings* id-term. `Err(Unbound)` if a
    /// variable is unbound; `Ok(None)` if the term is a ground id-term
    /// that denotes no existing object (an id-function application never
    /// interned) or a PathArg with an empty/ambiguous value.
    pub fn eval_idterm(&self, t: &IdTerm, bnd: &Bindings<'_>) -> XsqlResult<Option<Oid>> {
        match t {
            IdTerm::Oid(o) => Ok(Some(*o)),
            IdTerm::Var(v) => bnd
                .get(&v.name)
                .map(Some)
                .ok_or_else(|| XsqlError::Unbound(v.name.clone())),
            IdTerm::Func(f, args) => {
                let functor = self
                    .db
                    .oids()
                    .find_sym(f)
                    .ok_or_else(|| XsqlError::Resolve(format!("unknown id-function `{f}`")))?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_idterm(a, bnd)? {
                        Some(o) => vals.push(o),
                        None => return Ok(None),
                    }
                }
                Ok(self.db.oids().find_func(functor, &vals))
            }
            IdTerm::PathArg(p) => {
                let v = self.path_value(p, bnd)?;
                if v.len() == 1 {
                    Ok(v.into_iter().next())
                } else if v.is_empty() {
                    Ok(None)
                } else {
                    Err(XsqlError::NotScalar(
                        "path argument produced several values".into(),
                    ))
                }
            }
            // The resolver replaces all surface constants with Oid.
            other => Err(XsqlError::Resolve(format!(
                "unresolved id-term {other:?} reached evaluation"
            ))),
        }
    }

    /// Unifies an id-term against an object, possibly binding variables.
    /// On mismatch restores `bnd` and returns false.
    pub fn unify<'q>(&self, t: &'q IdTerm, o: Oid, bnd: &mut Bindings<'q>) -> XsqlResult<bool> {
        let mark = bnd.mark();
        let ok = self.unify_inner(t, o, bnd)?;
        if !ok {
            bnd.truncate(mark);
        }
        Ok(ok)
    }

    fn unify_inner<'q>(&self, t: &'q IdTerm, o: Oid, bnd: &mut Bindings<'q>) -> XsqlResult<bool> {
        match t {
            IdTerm::Oid(c) => Ok(self.oid_eq(*c, o)),
            IdTerm::Var(v) => match bnd.get(&v.name) {
                Some(b) => Ok(self.oid_eq(b, o)),
                None => {
                    if self.sort_ok(v.sort, o) {
                        bnd.push(&v.name, o);
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                }
            },
            IdTerm::Func(f, args) => {
                let functor = match self.db.oids().find_sym(f) {
                    Some(x) => x,
                    None => return Ok(false),
                };
                match self.db.oids().get(o) {
                    OidData::Func(g, actual) if *g == functor && actual.len() == args.len() => {
                        for (a, &v) in args.iter().zip(actual.iter()) {
                            if !self.unify_inner(a, v, bnd)? {
                                return Ok(false);
                            }
                        }
                        Ok(true)
                    }
                    _ => Ok(false),
                }
            }
            IdTerm::PathArg(p) => {
                let v = self.path_value(p, bnd)?;
                Ok(v.contains(&o) || v.iter().any(|&m| self.oid_eq(m, o)))
            }
            other => Err(XsqlError::Resolve(format!(
                "unresolved id-term {other:?} reached evaluation"
            ))),
        }
    }

    /// The active domain of a variable sort (naive semantics §3.4).
    pub fn domain(&self, sort: VarSort) -> Vec<Oid> {
        match sort {
            VarSort::Individual => self.db.individuals().collect(),
            VarSort::Class => self.db.classes().collect(),
            VarSort::Method => self.db.method_objects().collect(),
        }
    }

    // ------------------------------------------------------------------
    // Generate mode
    // ------------------------------------------------------------------

    /// Enumerates every satisfying extension of `bnd` along path `p`,
    /// invoking `k` with each tail. Bindings pushed during a branch are
    /// removed before the next branch.
    pub fn walk_path<'q>(
        &self,
        p: &'q PathExpr,
        bnd: &mut Bindings<'q>,
        k: PathK<'_, 'q>,
    ) -> XsqlResult<()> {
        let mark = bnd.mark();
        match &p.head {
            IdTerm::Var(v) if !bnd.is_bound(&v.name) => {
                // Head v-selector unbound: range over the sort's domain,
                // narrowed to the Theorem 6.1 range under the typed
                // strategy, or to the inverted method index when the
                // first step names a fixed method (the Nobel-query
                // shape `SELECT X WHERE X.WonNobelPrize`).
                let candidates = self.head_candidates(p, v, bnd);
                self.check_binding_set(candidates.len())?;
                for o in candidates {
                    if !self.sort_ok(v.sort, o) {
                        continue;
                    }
                    self.tick()?;
                    bnd.push(&v.name, o);
                    self.walk_steps(&p.steps, 0, o, bnd, k)?;
                    bnd.truncate(mark);
                }
                Ok(())
            }
            IdTerm::Func(_, _) if !term_bound(&p.head, bnd) => {
                // Partially-unbound id-term head: unify against existing
                // id-term objects (view objects, §4.2). The candidate
                // scan is budgeted exactly like the var-head branch —
                // a database dense in id-term objects would otherwise
                // bypass the fan-out budget entirely.
                let candidates: Vec<Oid> = self
                    .db
                    .individuals()
                    .filter(|&o| matches!(self.db.oids().get(o), OidData::Func(..)))
                    .collect();
                self.check_binding_set(candidates.len())?;
                for o in candidates {
                    self.tick()?;
                    if self.unify(&p.head, o, bnd)? {
                        self.walk_steps(&p.steps, 0, o, bnd, k)?;
                        bnd.truncate(mark);
                    }
                }
                Ok(())
            }
            _ => match self.eval_idterm(&p.head, bnd)? {
                Some(o) => self.walk_steps(&p.steps, 0, o, bnd, k),
                None => Ok(()),
            },
        }
    }

    /// The candidate heads for an unbound head variable: an explicit
    /// Theorem 6.1 range wins; else, when enabled and the first step is
    /// a fixed method name, the inverted index gives a sound superset of
    /// the heads on which that method can be defined; else the sort's
    /// active domain.
    pub(crate) fn head_candidates(
        &self,
        p: &PathExpr,
        v: &crate::ast::Var,
        bnd: &Bindings<'_>,
    ) -> Vec<Oid> {
        let _ = bnd;
        if let Some(rs) = self.ranges {
            if let Some(set) = rs.get(&v.name) {
                return set.iter().copied().collect();
            }
        }
        if self.opts.use_method_index {
            if let Some(Step::Method {
                method: MethodTerm::Name(n),
                selector,
                ..
            }) = p.steps.first()
            {
                if let Some(m) = self.db.oids().find_sym(n) {
                    // A ground first-step selector anchors the lookup to
                    // the (method, value) index — unless the value is a
                    // numeral, where Int/Real spellings may both be
                    // stored and only the unanchored index is sound.
                    if let Some(IdTerm::Oid(sel)) = selector {
                        if self.db.oids().as_number(*sel).is_none() {
                            return self
                                .db
                                .candidates_with_method_value(m, *sel)
                                .into_iter()
                                .collect();
                        }
                    }
                    return self.db.candidates_with_method(m).into_iter().collect();
                }
            }
        }
        self.domain(v.sort)
    }

    /// Which branch of [`Ctx::head_candidates`] would supply the
    /// candidates for `(p, v)` under empty bindings — the provenance
    /// string the `EXPLAIN ANALYZE` profile reports. Mirrors the
    /// decision chain above without enumerating anything.
    pub(crate) fn head_candidate_source(&self, p: &PathExpr, v: &crate::ast::Var) -> &'static str {
        if let Some(rs) = self.ranges {
            if rs.contains_key(&v.name) {
                return "theorem-6.1-range";
            }
        }
        if self.opts.use_method_index {
            if let Some(Step::Method {
                method: MethodTerm::Name(n),
                selector,
                ..
            }) = p.steps.first()
            {
                if self.db.oids().find_sym(n).is_some() {
                    if let Some(IdTerm::Oid(sel)) = selector {
                        if self.db.oids().as_number(*sel).is_none() {
                            return "method-value-index";
                        }
                    }
                    return "method-index";
                }
            }
        }
        "active-domain"
    }

    fn walk_steps<'q>(
        &self,
        steps: &'q [Step],
        i: usize,
        cur: Oid,
        bnd: &mut Bindings<'q>,
        k: PathK<'_, 'q>,
    ) -> XsqlResult<()> {
        self.tick()?;
        if i == steps.len() {
            return k(cur, bnd);
        }
        // Budget: walk_steps recurses through walk_args/each_member (and
        // indirectly via computed methods); the guard bounds stack depth.
        let _depth = self.enter_path()?;
        match &steps[i] {
            Step::Method {
                method,
                args,
                selector,
            } => {
                let mark = bnd.mark();
                for m in self.method_candidates(method, cur, args.len(), bnd)? {
                    if let MethodTerm::Var(name) = method {
                        match bnd.get(name) {
                            None => bnd.push(name, m),
                            Some(b) if !self.oid_eq(b, m) => continue,
                            Some(_) => {}
                        }
                    }
                    self.walk_args(steps, i, cur, m, args, selector.as_ref(), bnd, k)?;
                    bnd.truncate(mark);
                }
                Ok(())
            }
            Step::PathVar { selector, .. } => {
                // Existential navigation over 0..=limit 0-ary steps.
                self.walk_path_var(steps, i, cur, 0, selector.as_ref(), bnd, k)
            }
        }
    }

    /// Candidate method-objects for a step: a fixed name, a bound method
    /// variable, or every method defined on `cur` at this arity
    /// (query (3): `X."Y.City`).
    fn method_candidates(
        &self,
        method: &MethodTerm,
        cur: Oid,
        arity: usize,
        bnd: &Bindings<'_>,
    ) -> XsqlResult<Vec<Oid>> {
        match method {
            MethodTerm::Name(n) => Ok(self.db.oids().find_sym(n).into_iter().collect()),
            MethodTerm::Var(name) => match bnd.get(name) {
                Some(m) => Ok(vec![m]),
                None => Ok(self.db.methods_defined_on(cur, arity).into_iter().collect()),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_args<'q>(
        &self,
        steps: &'q [Step],
        i: usize,
        cur: Oid,
        m: Oid,
        args: &'q [IdTerm],
        selector: Option<&'q IdTerm>,
        bnd: &mut Bindings<'q>,
        k: PathK<'_, 'q>,
    ) -> XsqlResult<()> {
        // Fast path: all arguments evaluable under current bindings.
        if args.iter().all(|a| term_bound(a, bnd)) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                match self.eval_idterm(a, bnd)? {
                    Some(o) => vals.push(o),
                    None => return Ok(()),
                }
            }
            return self.step_value(steps, i, cur, m, &vals, selector, bnd, k);
        }
        // Unbound argument variables: enumerate the stored argument
        // tuples of (cur, m) and unify. (Computed methods cannot be
        // enumerated backwards; the scheduler binds their arguments
        // first whenever the query makes that possible.)
        let entries: Vec<&[Oid]> = self
            .db
            .stored_entries_for(cur, m)
            .filter(|(a, _)| a.len() == args.len())
            .map(|(a, _)| a)
            .collect();
        let mark = bnd.mark();
        'entry: for tuple in entries {
            self.tick()?;
            for (a, &v) in args.iter().zip(tuple.iter()) {
                if !self.unify(a, v, bnd)? {
                    bnd.truncate(mark);
                    continue 'entry;
                }
            }
            self.step_value(steps, i, cur, m, tuple, selector, bnd, k)?;
            bnd.truncate(mark);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn step_value<'q>(
        &self,
        steps: &'q [Step],
        i: usize,
        cur: Oid,
        m: Oid,
        argv: &[Oid],
        selector: Option<&'q IdTerm>,
        bnd: &mut Bindings<'q>,
        k: PathK<'_, 'q>,
    ) -> XsqlResult<()> {
        let val = self.db.value_at_depth(cur, m, argv, self.depth)?;
        let Some(val) = val else { return Ok(()) };
        self.each_member(&val, steps, i, selector, bnd, k)
    }

    fn each_member<'q>(
        &self,
        val: &Val,
        steps: &'q [Step],
        i: usize,
        selector: Option<&'q IdTerm>,
        bnd: &mut Bindings<'q>,
        k: PathK<'_, 'q>,
    ) -> XsqlResult<()> {
        let mark = bnd.mark();
        for member in val.members() {
            self.tick()?;
            match selector {
                None => {
                    self.walk_steps(steps, i + 1, member, bnd, k)?;
                    bnd.truncate(mark);
                }
                Some(t) => {
                    if self.unify(t, member, bnd)? {
                        self.walk_steps(steps, i + 1, member, bnd, k)?;
                        bnd.truncate(mark);
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_path_var<'q>(
        &self,
        steps: &'q [Step],
        i: usize,
        cur: Oid,
        depth: usize,
        selector: Option<&'q IdTerm>,
        bnd: &mut Bindings<'q>,
        k: PathK<'_, 'q>,
    ) -> XsqlResult<()> {
        self.tick()?;
        let _depth = self.enter_path()?;
        // Endpoint option: the sequence so far (possibly empty).
        let mark = bnd.mark();
        match selector {
            None => {
                self.walk_steps(steps, i + 1, cur, bnd, k)?;
                bnd.truncate(mark);
            }
            Some(t) => {
                if self.unify(t, cur, bnd)? {
                    self.walk_steps(steps, i + 1, cur, bnd, k)?;
                    bnd.truncate(mark);
                }
            }
        }
        if depth >= self.opts.path_var_limit {
            return Ok(());
        }
        // Extend by one more 0-ary attribute hop.
        for m in self.db.methods_defined_on(cur, 0) {
            if let Some(val) = self.db.value_at_depth(cur, m, &[], self.depth)? {
                for member in val.members() {
                    self.walk_path_var(steps, i, member, depth + 1, selector, bnd, k)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Strict mode: the value of a ground path expression
    // ------------------------------------------------------------------

    /// The value of a path expression under `bnd` — the set of tails of
    /// satisfying database paths (§3.2). All variables must be bound.
    pub fn path_value(&self, p: &PathExpr, bnd: &Bindings<'_>) -> XsqlResult<BTreeSet<Oid>> {
        let mut out = BTreeSet::new();
        let head = match self.eval_idterm(&p.head, bnd)? {
            Some(o) => o,
            None => return Ok(out),
        };
        self.value_steps(&p.steps, 0, head, bnd, &mut out)?;
        Ok(out)
    }

    fn value_steps(
        &self,
        steps: &[Step],
        i: usize,
        cur: Oid,
        bnd: &Bindings<'_>,
        out: &mut BTreeSet<Oid>,
    ) -> XsqlResult<()> {
        self.tick()?;
        if i == steps.len() {
            out.insert(cur);
            return Ok(());
        }
        let _depth = self.enter_path()?;
        match &steps[i] {
            Step::Method {
                method,
                args,
                selector,
            } => {
                let ms: Vec<Oid> = match method {
                    MethodTerm::Name(n) => self.db.oids().find_sym(n).into_iter().collect(),
                    MethodTerm::Var(name) => vec![bnd
                        .get(name)
                        .ok_or_else(|| XsqlError::Unbound(name.clone()))?],
                };
                for m in ms {
                    let mut argv = Vec::with_capacity(args.len());
                    let mut ok = true;
                    for a in args {
                        match self.eval_idterm(a, bnd)? {
                            Some(o) => argv.push(o),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    if let Some(val) = self.db.value_at_depth(cur, m, &argv, self.depth)? {
                        for member in val.members() {
                            if let Some(t) = selector {
                                let sel = self.eval_idterm(t, bnd)?;
                                match sel {
                                    Some(s) if self.oid_eq(s, member) => {}
                                    _ => continue,
                                }
                            }
                            self.value_steps(steps, i + 1, member, bnd, out)?;
                        }
                    }
                }
                Ok(())
            }
            Step::PathVar { selector, .. } => {
                self.value_path_var(steps, i, cur, 0, selector.as_ref(), bnd, out)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn value_path_var(
        &self,
        steps: &[Step],
        i: usize,
        cur: Oid,
        depth: usize,
        selector: Option<&IdTerm>,
        bnd: &Bindings<'_>,
        out: &mut BTreeSet<Oid>,
    ) -> XsqlResult<()> {
        self.tick()?;
        let _depth = self.enter_path()?;
        let sel_ok = match selector {
            None => true,
            Some(t) => matches!(self.eval_idterm(t, bnd)?, Some(s) if self.oid_eq(s, cur)),
        };
        if sel_ok {
            self.value_steps(steps, i + 1, cur, bnd, out)?;
        }
        if depth >= self.opts.path_var_limit {
            return Ok(());
        }
        for m in self.db.methods_defined_on(cur, 0) {
            if let Some(val) = self.db.value_at_depth(cur, m, &[], self.depth)? {
                for member in val.members() {
                    self.value_path_var(steps, i, member, depth + 1, selector, bnd, out)?;
                }
            }
        }
        Ok(())
    }
}

/// True when every variable in the term is bound (so `eval_idterm`
/// cannot fail with `Unbound`).
pub fn term_bound(t: &IdTerm, bnd: &Bindings<'_>) -> bool {
    match t {
        IdTerm::Var(v) => bnd.is_bound(&v.name),
        IdTerm::Func(_, args) => args.iter().all(|a| term_bound(a, bnd)),
        IdTerm::PathArg(p) => path_bound(p, bnd),
        _ => true,
    }
}

/// True when every variable in the path is bound.
pub fn path_bound(p: &PathExpr, bnd: &Bindings<'_>) -> bool {
    let mut vars = BTreeSet::new();
    super::vars::path_vars(p, &mut vars);
    vars.iter().all(|v| bnd.is_bound(v))
}
