//! Execution-profile collection for `EXPLAIN ANALYZE`.
//!
//! A [`QueryProfile`] is an optional, shared sink attached to
//! [`EvalOptions`](super::EvalOptions): when present, the evaluator
//! records what it actually did — the strategy taken, the partition
//! generator [`choose_partition`](super::Ctx::choose_partition) picked,
//! tick and tuple totals from the statement's shared
//! [`EvalCounters`](super::EvalCounters), the binding-set high-water
//! mark, solution/row counts per pipeline stage, and per-worker wall
//! time under parallel evaluation. Every recording site is gated on the
//! `Option`, so evaluation without a profile attached pays nothing
//! beyond a null check at stage boundaries (never in per-tick loops).
//!
//! The profile renders as a tree via [`relalg::render_tree`]. Under
//! [`TelemetryConfig::deterministic`](telemetry::TelemetryConfig)
//! wall-clock timings are suppressed so golden tests are byte-stable;
//! tick, row, and candidate counts are deterministic functions of the
//! database and options and are always shown.

use relalg::TreeNode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The partition the parallel driver split on, as recorded for a
/// profile (an owned echo of the internal `Partition`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// The variable whose candidate domain was partitioned.
    pub var: String,
    /// Where the candidate list came from: `"theorem-6.1-range"`,
    /// `"method-value-index"`, `"method-index"`, `"class-extent"` or
    /// `"active-domain"`.
    pub source: &'static str,
    /// Number of candidate values split across the workers.
    pub candidates: usize,
    /// Number of worker threads the candidates were striped over.
    pub workers: usize,
}

/// Execution record of one parallel worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index (also its round-robin stripe offset).
    pub index: usize,
    /// Candidates of the partition variable this worker enumerated.
    pub candidates: usize,
    /// Rows the worker produced before the cross-worker union.
    pub rows: usize,
    /// Wall-clock time the worker ran, in microseconds.
    pub wall_micros: u64,
}

/// A profile sink for one top-level SELECT evaluation. Shared via
/// `Arc` between the root context and any parallel workers; all fields
/// are internally synchronized.
#[derive(Debug, Default)]
pub struct QueryProfile {
    strategy: Mutex<Option<String>>,
    parallelism: AtomicUsize,
    partition: Mutex<Option<PartitionInfo>>,
    solutions: AtomicU64,
    binding_set_hwm: AtomicUsize,
    ticks: AtomicU64,
    tuples: AtomicUsize,
    rows_out: AtomicUsize,
    workers: Mutex<Vec<WorkerProfile>>,
    plan: Mutex<Vec<String>>,
}

impl QueryProfile {
    /// Records the strategy label and requested parallelism (top-level
    /// evaluation entry).
    pub(crate) fn record_strategy(&self, label: &str, parallelism: usize) {
        *self.strategy.lock().unwrap() = Some(label.to_string());
        self.parallelism.store(parallelism, Ordering::Relaxed);
    }

    /// Records the partition the parallel driver committed to.
    pub(crate) fn record_partition(&self, info: PartitionInfo) {
        *self.partition.lock().unwrap() = Some(info);
    }

    /// Records the cost-based planner's step lines (join order, access
    /// paths, estimated vs. actual rows).
    pub(crate) fn record_plan(&self, lines: Vec<String>) {
        *self.plan.lock().unwrap() = lines;
    }

    /// Counts one satisfying binding of the top-level FROM+WHERE.
    pub(crate) fn count_solution(&self) {
        self.solutions.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the binding-set high-water mark to `n` if larger. Called
    /// once per enumerated binding set — millions of times on a large
    /// join — so the common already-covered case must stay a plain
    /// load, not an RMW (`fetch_max` is a compare-exchange loop even
    /// uncontended).
    pub(crate) fn note_binding_set(&self, n: usize) {
        if self.binding_set_hwm.load(Ordering::Relaxed) < n {
            self.binding_set_hwm.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Records the statement's final tick/tuple totals and the result
    /// cardinality after duplicate elimination.
    pub(crate) fn record_totals(&self, ticks: u64, tuples: usize, rows_out: usize) {
        self.ticks.store(ticks, Ordering::Relaxed);
        self.tuples.store(tuples, Ordering::Relaxed);
        self.rows_out.store(rows_out, Ordering::Relaxed);
    }

    /// Appends one worker's execution record.
    pub(crate) fn push_worker(&self, w: WorkerProfile) {
        self.workers.lock().unwrap().push(w);
    }

    /// Result rows after duplicate elimination.
    pub fn rows_out(&self) -> usize {
        self.rows_out.load(Ordering::Relaxed)
    }

    /// Total evaluation ticks (all workers).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Satisfying bindings of the top-level FROM+WHERE.
    pub fn solutions(&self) -> u64 {
        self.solutions.load(Ordering::Relaxed)
    }

    /// The recorded partition, if the parallel driver split the query.
    pub fn partition(&self) -> Option<PartitionInfo> {
        self.partition.lock().unwrap().clone()
    }

    /// Lays the profile out as a tree. With `deterministic` set,
    /// wall-clock timings are suppressed (tick/row/candidate counts are
    /// already deterministic).
    pub fn to_tree(&self, deterministic: bool) -> TreeNode {
        let strategy = self
            .strategy
            .lock()
            .unwrap()
            .clone()
            .unwrap_or_else(|| "unknown".to_string());
        let parallelism = self.parallelism.load(Ordering::Relaxed);
        let mut children = vec![TreeNode::leaf(format!(
            "strategy: {strategy}, parallelism {parallelism}"
        ))];

        let plan_lines = self.plan.lock().unwrap().clone();
        if !plan_lines.is_empty() {
            children.push(TreeNode::branch(
                "cost-based plan".to_string(),
                plan_lines.into_iter().map(TreeNode::leaf).collect(),
            ));
        }

        match self.partition() {
            Some(p) => {
                let mut workers = self.workers.lock().unwrap().clone();
                workers.sort_by_key(|w| w.index);
                let kids = workers
                    .iter()
                    .map(|w| {
                        let timing = if deterministic {
                            String::new()
                        } else {
                            format!(" in {} µs", w.wall_micros)
                        };
                        TreeNode::leaf(format!(
                            "worker {}: {} candidates -> {} rows{timing}",
                            w.index, w.candidates, w.rows
                        ))
                    })
                    .collect();
                children.push(TreeNode::branch(
                    format!(
                        "partition: {} via {} ({} candidates, {} workers)",
                        p.var, p.source, p.candidates, p.workers
                    ),
                    kids,
                ));
            }
            None => children.push(TreeNode::leaf("partition: none (sequential)")),
        }

        children.push(TreeNode::branch(
            "pipeline".to_string(),
            vec![
                TreeNode::leaf(format!(
                    "solutions: {} satisfying bindings",
                    self.solutions()
                )),
                TreeNode::leaf(format!(
                    "rows out: {} (after duplicate elimination)",
                    self.rows_out()
                )),
                TreeNode::leaf(format!(
                    "binding-set high-water mark: {}",
                    self.binding_set_hwm.load(Ordering::Relaxed)
                )),
            ],
        ));
        children.push(TreeNode::leaf(format!(
            "cost: {} ticks, {} tuples materialized",
            self.ticks(),
            self.tuples.load(Ordering::Relaxed)
        )));
        TreeNode::branch("profile".to_string(), children)
    }

    /// Renders the profile tree (see [`QueryProfile::to_tree`]).
    pub fn render(&self, deterministic: bool) -> String {
        relalg::render_tree(&self.to_tree(deterministic))
    }
}

/// Renders the **static** plan for plain `EXPLAIN` — what evaluation
/// *would* do under the session's options, without running the query:
/// the strategy label and the partition [`choose_partition`] would
/// commit to (or `none` when the query must run sequentially).
///
/// [`choose_partition`]: super::Ctx::choose_partition
pub(crate) fn static_plan(
    ctx: &super::Ctx<'_>,
    q: &crate::ast::SelectQuery,
) -> crate::error::XsqlResult<String> {
    use super::bindings::Bindings;
    use super::select::{assemble_conjuncts, prepare};
    use super::vars;
    use std::collections::BTreeSet;

    // The planner runs first in the pipelined dispatch; when it would
    // take the query, the static plan is its join order.
    let planner_lines = match ctx.opts.strategy {
        super::Strategy::Pipelined => crate::plan::static_plan_lines(ctx, q),
        super::Strategy::Naive => None,
    };
    let strategy = match (ctx.opts.strategy, ctx.ranges.is_some(), &planner_lines) {
        (super::Strategy::Naive, _, _) => "naive",
        (super::Strategy::Pipelined, _, Some(_)) => "planner",
        (super::Strategy::Pipelined, true, None) => "pipelined+theorem-6.1-ranges",
        (super::Strategy::Pipelined, false, None) => "pipelined",
    };
    let mut children = vec![TreeNode::leaf(format!(
        "strategy: {strategy}, parallelism {}",
        ctx.opts.parallelism
    ))];
    if let Some(lines) = planner_lines {
        children.push(TreeNode::branch(
            "cost-based plan".to_string(),
            lines.into_iter().map(TreeNode::leaf).collect(),
        ));
        return Ok(relalg::render_tree(&TreeNode::branch(
            "plan".to_string(),
            children,
        )));
    }
    let prep = prepare(q);
    let outer = Bindings::new();
    let conjs = assemble_conjuncts(q, &prep, &outer);
    let mut outer_vars = BTreeSet::new();
    vars::query_vars(q, &mut outer_vars);
    // Mirror the parallel driver's gate: a partition is only *used*
    // when parallelism is requested and there is something to split.
    let partition = if ctx.opts.parallelism >= 2 && !conjs.is_empty() {
        ctx.choose_partition(&conjs, &outer_vars)?
    } else {
        None
    };
    match partition {
        // Mirror the parallel driver's small-extent gate: below the
        // candidate threshold it declines the split and runs
        // sequentially, and EXPLAIN must say so.
        Some(p) if p.candidates.len() >= ctx.opts.parallel_min_candidates.max(2) => {
            let workers = ctx.opts.parallelism.min(p.candidates.len());
            children.push(TreeNode::leaf(format!(
                "partition: {} via {} ({} candidates, {workers} workers)",
                p.var,
                p.source,
                p.candidates.len()
            )));
        }
        _ => children.push(TreeNode::leaf("partition: none (sequential)")),
    }
    Ok(relalg::render_tree(&TreeNode::branch(
        "plan".to_string(),
        children,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_render_suppresses_timings() {
        let p = QueryProfile::default();
        p.record_strategy("pipelined", 4);
        p.record_partition(PartitionInfo {
            var: "X".into(),
            source: "class-extent",
            candidates: 10,
            workers: 2,
        });
        p.push_worker(WorkerProfile {
            index: 1,
            candidates: 5,
            rows: 3,
            wall_micros: 1234,
        });
        p.push_worker(WorkerProfile {
            index: 0,
            candidates: 5,
            rows: 2,
            wall_micros: 987,
        });
        p.count_solution();
        p.note_binding_set(10);
        p.note_binding_set(4); // lower: must not regress the mark
        p.record_totals(64, 5, 5);

        let det = p.render(true);
        assert!(!det.contains("µs"), "{det}");
        // Workers are ordered by index regardless of insertion order.
        let w0 = det.find("worker 0").unwrap();
        let w1 = det.find("worker 1").unwrap();
        assert!(w0 < w1, "{det}");
        assert!(det.contains("partition: X via class-extent (10 candidates, 2 workers)"));
        assert!(det.contains("binding-set high-water mark: 10"));
        assert!(det.contains("cost: 64 ticks, 5 tuples materialized"));

        let timed = p.render(false);
        assert!(timed.contains("1234 µs"), "{timed}");
    }

    #[test]
    fn sequential_profile_renders_without_partition() {
        let p = QueryProfile::default();
        p.record_strategy("naive", 1);
        p.record_totals(10, 2, 2);
        let s = p.render(true);
        assert!(s.contains("partition: none (sequential)"), "{s}");
        assert!(s.contains("strategy: naive, parallelism 1"), "{s}");
    }
}
