//! Views (§4.2): `CREATE VIEW … AS SUBCLASS OF … SIGNATURE … SELECT …`,
//! materialization, refresh, and view-update translation.

use super::create::run_creation;
use super::EvalOptions;
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid, OidData};
use std::collections::BTreeMap;

/// A registered view: its class, its defining query and its signature.
/// The id-function of the view is its name (§4.2: the expression
/// `CompSalaries(Y,W)` denotes the object the view's id-function assigns
/// to `(y,w)`).
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View (= class = id-function) name.
    pub name: String,
    /// The view's class-object.
    pub class: Oid,
    /// The resolved defining query (carries the OID FUNCTION OF clause).
    pub query: SelectQuery,
    /// Declared attribute signatures.
    pub signature: Vec<SigDecl>,
}

impl ViewDef {
    fn sig_kinds(&self) -> BTreeMap<String, bool> {
        self.signature
            .iter()
            .map(|s| (s.method.clone(), s.set_valued))
            .collect()
    }
}

/// Creates the view class, declares its signatures, and materializes it.
/// Returns the definition and the created view objects.
pub fn create_view(
    db: &mut Database,
    v: &CreateView,
    opts: &EvalOptions,
) -> XsqlResult<(ViewDef, Vec<Oid>)> {
    let superclass = db
        .oids()
        .find_sym(&v.superclass)
        .filter(|&c| db.is_class(c))
        .ok_or_else(|| {
            XsqlError::Resolve(format!("unknown superclass `{}` for view", v.superclass))
        })?;
    let class = db.define_class(&v.name, &[superclass])?;
    for s in &v.signature {
        let mut args = Vec::with_capacity(s.args.len());
        for name in &s.args {
            let c = db
                .oids()
                .find_sym(name)
                .filter(|&c| db.is_class(c))
                .ok_or_else(|| {
                    XsqlError::Resolve(format!("unknown class `{name}` in view signature"))
                })?;
            args.push(c);
        }
        let result = db
            .oids()
            .find_sym(&s.result)
            .filter(|&c| db.is_class(c))
            .ok_or_else(|| {
                XsqlError::Resolve(format!("unknown class `{}` in view signature", s.result))
            })?;
        db.add_signature(class, &s.method, &args, result, s.set_valued)?;
    }
    let def = ViewDef {
        name: v.name.clone(),
        class,
        query: v.query.clone(),
        signature: v.signature.clone(),
    };
    let oids = materialize(db, &def, opts)?;
    Ok((def, oids))
}

/// Rebuilds a [`ViewDef`] for a view whose class and materialized
/// extent already exist (e.g. restored from a storage snapshot): looks
/// the class up instead of defining it, and does **not** re-run the
/// defining query. Recovery uses this for definitions-only replay of
/// the catalog — the snapshot carries the state, only the in-session
/// definition (a closure over the resolved query) needs rebuilding.
pub fn reattach_view(db: &Database, v: &CreateView) -> XsqlResult<ViewDef> {
    let class = db
        .oids()
        .find_sym(&v.name)
        .filter(|&c| db.is_class(c))
        .ok_or_else(|| {
            XsqlError::Resolve(format!(
                "view class `{}` not present in the restored database",
                v.name
            ))
        })?;
    Ok(ViewDef {
        name: v.name.clone(),
        class,
        query: v.query.clone(),
        signature: v.signature.clone(),
    })
}

/// (Re)materializes a view: runs the defining query; view objects whose
/// key no longer satisfies the query are dropped from the extent and
/// their state cleared.
pub fn materialize(db: &mut Database, def: &ViewDef, opts: &EvalOptions) -> XsqlResult<Vec<Oid>> {
    let before: Vec<Oid> = db.instances_of(def.class);
    let created = run_creation(
        db,
        &def.query,
        opts,
        &def.name,
        Some(def.class),
        &def.sig_kinds(),
    )?;
    for stale in before {
        if !created.contains(&stale) {
            db.remove_instance(stale, def.class);
            for s in &def.signature {
                if let Some(m) = db.oids().find_sym(&s.method) {
                    db.remove_value(stale, m, &[]);
                }
            }
        }
    }
    Ok(created)
}

/// Translates an update on a view object's attribute to an update on the
/// underlying database (§4.2). Requires the one-to-one correspondence
/// the paper requires: the view's id-function must depend on exactly one
/// variable, and the attribute's defining expression must be a path
/// expression rooted at that variable with named 0-ary scalar steps —
/// then the view object corresponds to one base object and the paper's
/// translation applies (e.g. raising `Salary` through `CompSalaries`
/// updates the underlying employee).
pub fn update_through_view(
    db: &mut Database,
    def: &ViewDef,
    view_obj: Oid,
    attr: &str,
    new_value: Oid,
) -> XsqlResult<()> {
    let spec = def
        .query
        .oid_fn
        .as_ref()
        .ok_or_else(|| XsqlError::ViewUpdate("view has no OID FUNCTION OF clause".into()))?;
    // Locate the defining expression of `attr`.
    let mut def_path: Option<&PathExpr> = None;
    for item in &def.query.select {
        if let SelectItem::Named {
            attr: a,
            value: SelectValue::Expr(Operand::Path(p)),
        } = item
        {
            if a == attr {
                def_path = Some(p);
            }
        }
    }
    let p = def_path.ok_or_else(|| {
        XsqlError::ViewUpdate(format!(
            "attribute `{attr}` is not defined by a path expression in view `{}`",
            def.name
        ))
    })?;
    let IdTerm::Var(root) = &p.head else {
        return Err(XsqlError::ViewUpdate(format!(
            "attribute `{attr}` is not rooted at a view variable"
        )));
    };
    // One-to-one correspondence: the id-function depends only on the
    // root variable of this attribute's path.
    let root_pos = spec
        .vars
        .iter()
        .position(|v| v.name == root.name)
        .ok_or_else(|| {
            XsqlError::ViewUpdate(format!(
                "`{attr}` is rooted at `{}`, which the id-function does not depend on",
                root.name
            ))
        })?;
    if spec.vars.len() != 1 {
        return Err(XsqlError::ViewUpdate(format!(
            "view `{}` objects are not in one-to-one correspondence with a base class \
             (its id-function depends on {} variables)",
            def.name,
            spec.vars.len()
        )));
    }
    // Recover the base object from the view object's id-term.
    let fn_sym = db
        .oids()
        .find_sym(&def.name)
        .ok_or_else(|| XsqlError::ViewUpdate("view id-function not interned".into()))?;
    let base = match db.oids().get(view_obj) {
        OidData::Func(f, args) if *f == fn_sym && args.len() == spec.vars.len() => args[root_pos],
        _ => {
            return Err(XsqlError::ViewUpdate(format!(
                "`{}` is not an object of view `{}`",
                db.render(view_obj),
                def.name
            )))
        }
    };
    // Walk the scalar prefix to the object holding the final attribute.
    let mut cur = base;
    let Some((last, prefix)) = p.steps.split_last() else {
        return Err(XsqlError::ViewUpdate(format!(
            "attribute `{attr}` mirrors the base object itself and cannot be updated"
        )));
    };
    for step in prefix {
        let Step::Method {
            method: MethodTerm::Name(n),
            args,
            selector: _,
        } = step
        else {
            return Err(XsqlError::ViewUpdate(
                "view-update paths must consist of named attribute steps".into(),
            ));
        };
        if !args.is_empty() {
            return Err(XsqlError::ViewUpdate(
                "view-update paths cannot pass method arguments".into(),
            ));
        }
        let m = db
            .oids()
            .find_sym(n)
            .ok_or_else(|| XsqlError::ViewUpdate(format!("unknown attribute `{n}`")))?;
        let v = db
            .value(cur, m, &[])?
            .ok_or_else(|| XsqlError::ViewUpdate(format!("`{n}` undefined along the path")))?;
        cur = v.as_scalar().ok_or_else(|| {
            XsqlError::ViewUpdate(format!("`{n}` is set-valued; no one-to-one correspondence"))
        })?;
    }
    let Step::Method {
        method: MethodTerm::Name(n),
        args,
        ..
    } = last
    else {
        return Err(XsqlError::ViewUpdate(
            "view-update target must end in a named attribute".into(),
        ));
    };
    if !args.is_empty() {
        return Err(XsqlError::ViewUpdate(
            "view-update target cannot pass method arguments".into(),
        ));
    }
    let m = db.oids_mut().sym(n);
    db.set_scalar(cur, m, &[], new_value)?;
    // Keep the materialized view consistent.
    let attr_sym = db.oids_mut().sym(attr);
    db.set_scalar(view_obj, attr_sym, &[], new_value)?;
    Ok(())
}
