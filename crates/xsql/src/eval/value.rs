//! Operand values, quantified comparisons (§3.2), set comparators and
//! aggregates.

use super::bindings::Bindings;
use super::Ctx;
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Oid, OidData};

/// One element of an operand value: an existing object or a computed
/// number (result of an aggregate or arithmetic — numbers only become
/// objects when something needs to store them, which requires interning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Elem {
    /// An object.
    Obj(Oid),
    /// A computed numeral (not yet interned).
    Num(f64),
}

impl<'d> Ctx<'d> {
    fn elem_number(&self, e: Elem) -> Option<f64> {
        match e {
            Elem::Num(n) => Some(n),
            Elem::Obj(o) => self.db.oids().as_number(o),
        }
    }

    /// Element equality: numerals compare numerically, strings by
    /// content, everything else by object identity (§2: a numeral's OID
    /// *is* its value).
    pub fn elem_eq(&self, a: Elem, b: Elem) -> bool {
        if let (Some(x), Some(y)) = (self.elem_number(a), self.elem_number(b)) {
            return x == y;
        }
        match (a, b) {
            (Elem::Obj(x), Elem::Obj(y)) => self.oid_eq(x, y),
            _ => false,
        }
    }

    /// Order comparison; defined on numeral pairs (numeric) and string
    /// pairs (lexicographic). Anything else is incomparable and the
    /// comparison is false — a liberal reading: the naive semantics
    /// quantifies over the whole domain, and "users getting unexpected
    /// results rather than type errors" is the liberal end of §6's
    /// spectrum; the typing system is where such errors are caught.
    fn elem_lt(&self, a: Elem, b: Elem) -> bool {
        if let (Some(x), Some(y)) = (self.elem_number(a), self.elem_number(b)) {
            return x < y;
        }
        if let (Elem::Obj(x), Elem::Obj(y)) = (a, b) {
            if let (OidData::Str(s), OidData::Str(t)) =
                (self.db.oids().get(x), self.db.oids().get(y))
            {
                return s < t;
            }
        }
        false
    }

    fn elem_cmp(&self, op: CmpOp, a: Elem, b: Elem) -> bool {
        match op {
            CmpOp::Eq => self.elem_eq(a, b),
            CmpOp::Ne => !self.elem_eq(a, b),
            CmpOp::Lt => self.elem_lt(a, b),
            CmpOp::Gt => self.elem_lt(b, a),
            CmpOp::Le => self.elem_lt(a, b) || self.elem_eq(a, b),
            CmpOp::Ge => self.elem_lt(b, a) || self.elem_eq(a, b),
        }
    }

    /// Evaluates an operand to its element set under fully-determined
    /// bindings (the scheduler guarantees variables are bound).
    pub fn operand_value<'q>(&self, op: &'q Operand, bnd: &Bindings<'q>) -> XsqlResult<Vec<Elem>> {
        match op {
            Operand::Path(p) => Ok(self
                .path_value(p, bnd)?
                .into_iter()
                .map(Elem::Obj)
                .collect()),
            Operand::Agg(f, p) => {
                let v = self.path_value(p, bnd)?;
                self.aggregate(*f, &v)
            }
            Operand::SetLit(ts) => {
                let mut out = Vec::with_capacity(ts.len());
                for t in ts {
                    if let Some(o) = self.eval_idterm(t, bnd)? {
                        let e = Elem::Obj(o);
                        if !out.iter().any(|&x| self.elem_eq(x, e)) {
                            out.push(e);
                        }
                    }
                }
                Ok(out)
            }
            Operand::Subquery(q) => {
                let (_, rows) = super::select::eval_rows_under(self, q, bnd)?;
                let mut out = Vec::new();
                for row in rows {
                    if row.len() != 1 {
                        return Err(XsqlError::NotScalar(
                            "nested subquery must select a single column".into(),
                        ));
                    }
                    let e = row[0].to_elem();
                    if !out.iter().any(|&x| self.elem_eq(x, e)) {
                        out.push(e);
                    }
                }
                Ok(out)
            }
            Operand::Arith(a, f, b) => {
                let x = self.scalar_number(a, bnd)?;
                let y = self.scalar_number(b, bnd)?;
                let (Some(x), Some(y)) = (x, y) else {
                    // Undefined operand: the arithmetic value is
                    // undefined, hence the empty set (like a null).
                    return Ok(Vec::new());
                };
                let r = match f {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Err(XsqlError::NotNumeric("division by zero".into()));
                        }
                        x / y
                    }
                };
                Ok(vec![Elem::Num(r)])
            }
            Operand::Union(a, b) => {
                let mut l = self.operand_value(a, bnd)?;
                for e in self.operand_value(b, bnd)? {
                    if !l.iter().any(|&x| self.elem_eq(x, e)) {
                        l.push(e);
                    }
                }
                Ok(l)
            }
            Operand::Intersection(a, b) => {
                let l = self.operand_value(a, bnd)?;
                let r = self.operand_value(b, bnd)?;
                Ok(l.into_iter()
                    .filter(|&e| r.iter().any(|&x| self.elem_eq(x, e)))
                    .collect())
            }
            Operand::Difference(a, b) => {
                let l = self.operand_value(a, bnd)?;
                let r = self.operand_value(b, bnd)?;
                Ok(l.into_iter()
                    .filter(|&e| !r.iter().any(|&x| self.elem_eq(x, e)))
                    .collect())
            }
        }
    }

    /// A scalar numeric value of an operand: the single element,
    /// converted to a number. `Ok(None)` when the operand's value is
    /// empty (undefined).
    fn scalar_number<'q>(&self, op: &'q Operand, bnd: &Bindings<'q>) -> XsqlResult<Option<f64>> {
        let v = self.operand_value(op, bnd)?;
        match v.len() {
            0 => Ok(None),
            1 => self
                .elem_number(v[0])
                .map(Some)
                .ok_or_else(|| XsqlError::NotNumeric("arithmetic on a non-numeral".into())),
            _ => Err(XsqlError::NotScalar(
                "arithmetic operand produced several values".into(),
            )),
        }
    }

    /// Aggregate functions over a path value (§3.2: "passing path
    /// expressions as arguments to aggregate functions, such as sum,
    /// count, average").
    pub fn aggregate(
        &self,
        f: AggFunc,
        value: &std::collections::BTreeSet<Oid>,
    ) -> XsqlResult<Vec<Elem>> {
        if f == AggFunc::Count {
            return Ok(vec![Elem::Num(value.len() as f64)]);
        }
        let mut nums = Vec::with_capacity(value.len());
        for &o in value {
            match self.db.oids().as_number(o) {
                Some(n) => nums.push(n),
                None => {
                    return Err(XsqlError::NotNumeric(format!(
                        "aggregate over non-numeral `{}`",
                        self.db.render(o)
                    )))
                }
            }
        }
        if nums.is_empty() {
            // sum over the empty set is 0; the others are undefined.
            return Ok(if f == AggFunc::Sum {
                vec![Elem::Num(0.0)]
            } else {
                Vec::new()
            });
        }
        let r = match f {
            AggFunc::Sum => nums.iter().sum(),
            AggFunc::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
            AggFunc::Min => nums.iter().cloned().fold(f64::INFINITY, f64::min),
            AggFunc::Max => nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            // Count returned early above; keep it total anyway.
            AggFunc::Count => nums.len() as f64,
        };
        Ok(vec![Elem::Num(r)])
    }

    /// The quantified comparison of §3.2: `L [ql] op [qr] R`. A missing
    /// quantifier defaults to `some` (the paper omits the quantifier
    /// exactly when the operand is a singleton, where the two readings
    /// coincide). Universal quantification over an empty set is
    /// vacuously true.
    pub fn compare(
        &self,
        left: &[Elem],
        lq: Option<Quant>,
        op: CmpOp,
        rq: Option<Quant>,
        right: &[Elem],
    ) -> bool {
        let lq = lq.unwrap_or(Quant::Some);
        let rq = rq.unwrap_or(Quant::Some);
        let inner = |a: Elem| -> bool {
            match rq {
                Quant::Some => right.iter().any(|&b| self.elem_cmp(op, a, b)),
                Quant::All => right.iter().all(|&b| self.elem_cmp(op, a, b)),
            }
        };
        match lq {
            Quant::Some => left.iter().any(|&a| inner(a)),
            Quant::All => left.iter().all(|&a| inner(a)),
        }
    }

    /// Set comparators (§3.2). `contains`/`subset` are proper,
    /// `containsEq`/`subsetEq` allow equality.
    pub fn set_compare(&self, left: &[Elem], op: SetCmpOp, right: &[Elem]) -> bool {
        let subset_eq =
            |xs: &[Elem], ys: &[Elem]| xs.iter().all(|&x| ys.iter().any(|&y| self.elem_eq(x, y)));
        match op {
            SetCmpOp::SubsetEq => subset_eq(left, right),
            SetCmpOp::Subset => subset_eq(left, right) && !subset_eq(right, left),
            SetCmpOp::ContainsEq => subset_eq(right, left),
            SetCmpOp::Contains => subset_eq(right, left) && !subset_eq(left, right),
        }
    }
}

/// A result cell: an object or a computed number awaiting interning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cell {
    /// An existing object.
    Obj(Oid),
    /// A computed numeral, stored as total-order bits so rows can live
    /// in ordered sets.
    Num(OrdF64),
}

impl Cell {
    /// Builds a numeric cell.
    pub fn num(v: f64) -> Cell {
        Cell::Num(OrdF64::new(v))
    }

    /// Converts to an operand element.
    pub fn to_elem(self) -> Elem {
        match self {
            Cell::Obj(o) => Elem::Obj(o),
            Cell::Num(n) => Elem::Num(n.get()),
        }
    }

    /// Converts to an OID, interning computed numerals. Values within
    /// 1e-9 relative tolerance of an integer are snapped to it, so
    /// `(1 + 10/100) * 90000` stores the numeral object `99000` rather
    /// than a float artifact (comparisons are numeric either way).
    pub fn into_oid(self, oids: &mut oodb::OidTable) -> Oid {
        match self {
            Cell::Obj(o) => o,
            Cell::Num(n) => {
                let v = n.get();
                let snapped = v.round();
                let near_int = (v - snapped).abs() <= 1e-9 * v.abs().max(1.0);
                if near_int && snapped.abs() < i64::MAX as f64 {
                    oids.int(snapped as i64)
                } else {
                    oids.real(v)
                }
            }
        }
    }
}

impl From<Elem> for Cell {
    fn from(e: Elem) -> Cell {
        match e {
            Elem::Obj(o) => Cell::Obj(o),
            Elem::Num(n) => Cell::num(n),
        }
    }
}

/// A totally-ordered f64 (no NaN by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrdF64(u64);

impl OrdF64 {
    /// Wraps a non-NaN float.
    pub fn new(v: f64) -> OrdF64 {
        assert!(!v.is_nan());
        let bits = v.to_bits();
        // Flip so the bit pattern orders like the number.
        let key = if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        };
        OrdF64(key)
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        let key = self.0;
        let bits = if key >> 63 == 1 {
            key & !(1 << 63)
        } else {
            !key
        };
        f64::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_roundtrip_and_order() {
        for v in [-3.5, -0.0, 0.0, 1.0, 2.5, 1e18] {
            assert_eq!(OrdF64::new(v).get(), v);
        }
        assert!(OrdF64::new(-1.0) < OrdF64::new(0.0));
        assert!(OrdF64::new(0.5) < OrdF64::new(2.0));
        assert!(OrdF64::new(-5.0) < OrdF64::new(-1.0));
    }
}

#[cfg(test)]
mod compare_tests {
    use super::*;
    use crate::ast::{CmpOp, Quant, SetCmpOp};
    use crate::eval::{Ctx, EvalOptions};
    use oodb::Database;

    fn ctx_db() -> (Database, EvalOptions) {
        (Database::new(), EvalOptions::default())
    }

    #[test]
    fn quantifier_truth_table() {
        let (mut db, opts) = ctx_db();
        let (a, b, c) = (
            db.oids_mut().int(1),
            db.oids_mut().int(2),
            db.oids_mut().int(3),
        );
        let ctx = Ctx::new(&db, &opts);
        let l = vec![Elem::Obj(a), Elem::Obj(b)]; // {1,2}
        let r = vec![Elem::Obj(b), Elem::Obj(c)]; // {2,3}
        let some = Option::Some(Quant::Some);
        let all = Option::Some(Quant::All);
        // some< : 1 < 2 exists.
        assert!(ctx.compare(&l, some, CmpOp::Lt, None, &r));
        // all<all : 2 < 2 fails.
        assert!(!ctx.compare(&l, all, CmpOp::Lt, all, &r));
        // all< (some on right): every left has a right above it.
        assert!(ctx.compare(&l, all, CmpOp::Lt, None, &r));
        // empty-left all: vacuous truth; empty-left some: false.
        assert!(ctx.compare(&[], all, CmpOp::Lt, None, &r));
        assert!(!ctx.compare(&[], None, CmpOp::Lt, None, &r));
        // empty-right all: vacuous.
        assert!(ctx.compare(&l, None, CmpOp::Lt, all, &[]));
    }

    #[test]
    fn set_comparators_proper_vs_eq() {
        let (mut db, opts) = ctx_db();
        let (a, b) = (db.oids_mut().int(1), db.oids_mut().int(2));
        let ctx = Ctx::new(&db, &opts);
        let small = vec![Elem::Obj(a)];
        let big = vec![Elem::Obj(a), Elem::Obj(b)];
        assert!(ctx.set_compare(&big, SetCmpOp::Contains, &small));
        assert!(!ctx.set_compare(&big, SetCmpOp::Contains, &big));
        assert!(ctx.set_compare(&big, SetCmpOp::ContainsEq, &big));
        assert!(ctx.set_compare(&small, SetCmpOp::Subset, &big));
        assert!(!ctx.set_compare(&small, SetCmpOp::Subset, &small));
        assert!(ctx.set_compare(&small, SetCmpOp::SubsetEq, &small));
    }

    #[test]
    fn mixed_numeral_kinds_equal() {
        let (mut db, opts) = ctx_db();
        let i = db.oids_mut().int(2);
        let r = db.oids_mut().real(2.0);
        let ctx = Ctx::new(&db, &opts);
        assert!(ctx.elem_eq(Elem::Obj(i), Elem::Obj(r)));
        assert!(ctx.elem_eq(Elem::Obj(i), Elem::Num(2.0)));
        assert!(ctx.set_compare(&[Elem::Obj(i)], SetCmpOp::SubsetEq, &[Elem::Obj(r)]));
    }
}
