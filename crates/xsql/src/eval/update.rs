//! UPDATE execution (§5): `UPDATE CLASS c SET path = expr, …`.
//!
//! Each assignment's target path is walked up to (but excluding) its
//! last step, enumerating any unbound variables; the last step names the
//! attribute/method entry to write on each reached object. The value
//! operand is evaluated per binding. Collection is read-only; writes are
//! applied afterwards, so an update never observes its own effects
//! within one assignment (the conjunct-level left-to-right order of §5
//! is preserved across assignments and across UPDATE conjuncts).

use super::bindings::Bindings;
use super::value::Cell;
use super::{Ctx, EvalOptions};
use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid};

/// One pending write.
#[derive(Debug)]
struct Write {
    recv: Oid,
    method_name: String,
    args: Vec<Oid>,
    cells: Vec<Cell>,
}

/// Executes an update statement under the given base bindings (empty
/// for a stand-alone statement; the enclosing method's bindings for an
/// UPDATE conjunct). Returns the number of entries written.
pub fn exec_update(
    db: &mut Database,
    u: &UpdateStmt,
    base: &[(String, Oid)],
    opts: &EvalOptions,
) -> XsqlResult<usize> {
    // The named class is a scoping declaration; validate it exists.
    let class_oid = db
        .oids()
        .find_sym(&u.class)
        .filter(|&c| db.is_class(c))
        .ok_or_else(|| XsqlError::Resolve(format!("unknown class `{}` in UPDATE", u.class)))?;
    let _ = class_oid;

    let mut written = 0usize;
    for a in &u.assignments {
        let writes = collect_writes(db, a, base, opts)?;
        for w in writes {
            let m = db.oids_mut().sym(&w.method_name);
            let set_valued = db
                .signatures_of_method(m, w.args.len())
                .iter()
                .any(|(_, s)| s.set_valued);
            if set_valued || w.cells.len() > 1 {
                let oids: Vec<Oid> = w
                    .cells
                    .into_iter()
                    .map(|c| c.into_oid(db.oids_mut()))
                    .collect();
                db.set_set(w.recv, m, &w.args, oids)?;
            } else if let Some(&cell) = w.cells.first() {
                let v = cell.into_oid(db.oids_mut());
                db.set_scalar(w.recv, m, &w.args, v)?;
            } else {
                // Empty value: the attribute becomes undefined (null).
                db.remove_value(w.recv, m, &w.args);
            }
            written += 1;
        }
    }
    Ok(written)
}

fn collect_writes(
    db: &Database,
    a: &Assignment,
    base: &[(String, Oid)],
    opts: &EvalOptions,
) -> XsqlResult<Vec<Write>> {
    let Some((last, prefix_steps)) = a.target.steps.split_last() else {
        return Err(XsqlError::Resolve(
            "UPDATE target must be a path with at least one step".into(),
        ));
    };
    let Step::Method {
        method,
        args,
        selector,
    } = last
    else {
        return Err(XsqlError::Resolve(
            "UPDATE target cannot end in a path variable".into(),
        ));
    };
    if selector.is_some() {
        return Err(XsqlError::Resolve(
            "UPDATE target's final step cannot carry a selector".into(),
        ));
    }
    let prefix = PathExpr {
        head: a.target.head.clone(),
        steps: prefix_steps.to_vec(),
    };

    let ctx = Ctx::new(db, opts);
    let mut bnd = Bindings::new();
    for (n, o) in base {
        bnd.push(n, *o);
    }
    let mut writes = Vec::new();
    ctx.walk_path(&prefix, &mut bnd, &mut |recv, bnd2| {
        let method_name = match method {
            MethodTerm::Name(n) => n.clone(),
            MethodTerm::Var(v) => {
                let m = bnd2.get(v).ok_or_else(|| XsqlError::Unbound(v.clone()))?;
                ctx.db
                    .oids()
                    .sym_name(m)
                    .ok_or_else(|| {
                        XsqlError::Resolve("method variable bound to non-symbol".into())
                    })?
                    .to_string()
            }
        };
        let mut argv = Vec::with_capacity(args.len());
        for t in args {
            match ctx.eval_idterm(t, bnd2)? {
                Some(o) => argv.push(o),
                None => return Ok(()), // argument denotes nothing: skip
            }
        }
        let cells: Vec<Cell> = ctx
            .operand_value(&a.value, bnd2)?
            .into_iter()
            .map(Cell::from)
            .collect();
        writes.push(Write {
            recv,
            method_name,
            args: argv,
            cells,
        });
        Ok(())
    })?;
    Ok(writes)
}
