//! Free-variable collection over the resolved AST.

use crate::ast::*;
use std::collections::BTreeSet;

/// Collects the variables of an id-term into `out`.
pub fn idterm_vars<'q>(t: &'q IdTerm, out: &mut BTreeSet<&'q str>) {
    match t {
        IdTerm::Var(v) => {
            out.insert(v.name.as_str());
        }
        IdTerm::Func(_, args) => {
            for a in args {
                idterm_vars(a, out);
            }
        }
        IdTerm::PathArg(p) => path_vars(p, out),
        _ => {}
    }
}

/// Collects the variables of a path expression.
pub fn path_vars<'q>(p: &'q PathExpr, out: &mut BTreeSet<&'q str>) {
    idterm_vars(&p.head, out);
    for s in &p.steps {
        match s {
            Step::Method {
                method,
                args,
                selector,
            } => {
                if let MethodTerm::Var(name) = method {
                    out.insert(name.as_str());
                }
                for a in args {
                    idterm_vars(a, out);
                }
                if let Some(t) = selector {
                    idterm_vars(t, out);
                }
            }
            Step::PathVar { selector, .. } => {
                // A path variable is existential navigation, not a
                // first-class binding (see `eval::path`).
                if let Some(t) = selector {
                    idterm_vars(t, out);
                }
            }
        }
    }
}

/// Collects the variables of an operand. Subquery-local variables (its
/// FROM binders) are *not* free in the outer query.
pub fn operand_vars<'q>(op: &'q Operand, out: &mut BTreeSet<&'q str>) {
    match op {
        Operand::Path(p) => path_vars(p, out),
        Operand::Agg(_, p) => path_vars(p, out),
        Operand::SetLit(ts) => {
            for t in ts {
                idterm_vars(t, out);
            }
        }
        Operand::Subquery(_) => {
            // A nested query solves its own variables; variables shared
            // with the outer query are correlated through the bindings
            // in effect when the subquery is evaluated. The scheduler
            // computes that correlation set explicitly (see
            // `eval::cond::conjunct_vars`), so at this level a subquery
            // contributes no free variables.
        }
        Operand::Arith(a, _, b)
        | Operand::Union(a, b)
        | Operand::Intersection(a, b)
        | Operand::Difference(a, b) => {
            operand_vars(a, out);
            operand_vars(b, out);
        }
    }
}

/// Collects the variables occurring inside any nested subquery of an
/// operand (deeply, including the subquery's own binders). Used by the
/// scheduler to compute correlation: a subquery conjunct is ready once
/// the variables it shares with the rest of the outer query are bound.
pub fn subquery_vars<'q>(op: &'q Operand, out: &mut BTreeSet<&'q str>) {
    match op {
        Operand::Subquery(q) => query_vars(q, out),
        Operand::Arith(a, _, b)
        | Operand::Union(a, b)
        | Operand::Intersection(a, b)
        | Operand::Difference(a, b) => {
            subquery_vars(a, out);
            subquery_vars(b, out);
        }
        _ => {}
    }
}

/// Collects the variables of a condition.
pub fn cond_vars<'q>(c: &'q Cond, out: &mut BTreeSet<&'q str>) {
    match c {
        Cond::True => {}
        Cond::Path(p) => path_vars(p, out),
        Cond::Cmp { left, right, .. } => {
            operand_vars(left, out);
            operand_vars(right, out);
        }
        Cond::SetCmp { left, right, .. } => {
            operand_vars(left, out);
            operand_vars(right, out);
        }
        Cond::SubclassOf { sub, sup } => {
            idterm_vars(sub, out);
            idterm_vars(sup, out);
        }
        Cond::InstanceOf { obj, class } => {
            idterm_vars(obj, out);
            idterm_vars(class, out);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
        Cond::Not(a) => cond_vars(a, out),
        Cond::Update(u) => {
            for a in &u.assignments {
                path_vars(&a.target, out);
                operand_vars(&a.value, out);
            }
        }
    }
}

/// Collects all variables of a query (FROM binders, SELECT items,
/// OID-function vars, WHERE).
pub fn query_vars<'q>(q: &'q SelectQuery, out: &mut BTreeSet<&'q str>) {
    for f in &q.from {
        out.insert(f.var.name.as_str());
        idterm_vars(&f.class, out);
    }
    if let Some(spec) = &q.oid_fn {
        for v in &spec.vars {
            out.insert(v.name.as_str());
        }
    }
    for item in &q.select {
        match item {
            SelectItem::Expr(op) => operand_vars(op, out),
            SelectItem::Named { value, .. } => match value {
                SelectValue::Expr(op) => operand_vars(op, out),
                SelectValue::Grouped(v) => {
                    out.insert(v.name.as_str());
                }
            },
            SelectItem::MethodResult { args, value, .. } => {
                for a in args {
                    idterm_vars(a, out);
                }
                operand_vars(value, out);
            }
        }
    }
    cond_vars(&q.where_clause, out);
}

/// The sort of each variable, harvested from the resolved AST (the
/// resolver guarantees consistency).
pub fn var_sorts<'q>(q: &'q SelectQuery, out: &mut std::collections::BTreeMap<&'q str, VarSort>) {
    fn idterm<'q>(t: &'q IdTerm, out: &mut std::collections::BTreeMap<&'q str, VarSort>) {
        match t {
            IdTerm::Var(v) => {
                out.insert(v.name.as_str(), v.sort);
            }
            IdTerm::Func(_, args) => args.iter().for_each(|a| idterm(a, out)),
            IdTerm::PathArg(p) => path(p, out),
            _ => {}
        }
    }
    fn path<'q>(p: &'q PathExpr, out: &mut std::collections::BTreeMap<&'q str, VarSort>) {
        idterm(&p.head, out);
        for s in &p.steps {
            match s {
                Step::Method {
                    method,
                    args,
                    selector,
                } => {
                    if let MethodTerm::Var(name) = method {
                        out.insert(name.as_str(), VarSort::Method);
                    }
                    args.iter().for_each(|a| idterm(a, out));
                    if let Some(t) = selector {
                        idterm(t, out);
                    }
                }
                Step::PathVar { selector, .. } => {
                    if let Some(t) = selector {
                        idterm(t, out);
                    }
                }
            }
        }
    }
    fn operand<'q>(op: &'q Operand, out: &mut std::collections::BTreeMap<&'q str, VarSort>) {
        match op {
            Operand::Path(p) | Operand::Agg(_, p) => path(p, out),
            Operand::SetLit(ts) => ts.iter().for_each(|t| idterm(t, out)),
            Operand::Subquery(q) => var_sorts(q, out),
            Operand::Arith(a, _, b)
            | Operand::Union(a, b)
            | Operand::Intersection(a, b)
            | Operand::Difference(a, b) => {
                operand(a, out);
                operand(b, out);
            }
        }
    }
    fn cond<'q>(c: &'q Cond, out: &mut std::collections::BTreeMap<&'q str, VarSort>) {
        match c {
            Cond::True => {}
            Cond::Path(p) => path(p, out),
            Cond::Cmp { left, right, .. } | Cond::SetCmp { left, right, .. } => {
                operand(left, out);
                operand(right, out);
            }
            Cond::SubclassOf { sub, sup } => {
                idterm(sub, out);
                idterm(sup, out);
            }
            Cond::InstanceOf { obj, class } => {
                idterm(obj, out);
                idterm(class, out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                cond(a, out);
                cond(b, out);
            }
            Cond::Not(a) => cond(a, out),
            Cond::Update(u) => {
                for a in &u.assignments {
                    path(&a.target, out);
                    operand(&a.value, out);
                }
            }
        }
    }
    for f in &q.from {
        out.insert(f.var.name.as_str(), f.var.sort);
        idterm(&f.class, out);
    }
    if let Some(spec) = &q.oid_fn {
        for v in &spec.vars {
            out.insert(v.name.as_str(), v.sort);
        }
    }
    for item in &q.select {
        match item {
            SelectItem::Expr(op) => operand(op, out),
            SelectItem::Named { value, .. } => match value {
                SelectValue::Expr(op) => operand(op, out),
                SelectValue::Grouped(v) => {
                    out.insert(v.name.as_str(), v.sort);
                }
            },
            SelectItem::MethodResult { args, value, .. } => {
                args.iter().for_each(|a| idterm(a, out));
                operand(value, out);
            }
        }
    }
    cond(&q.where_clause, out);
}
