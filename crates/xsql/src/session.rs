//! The user-facing XSQL session: parse → resolve → execute.

use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use crate::eval::select::eval_rows;
use crate::eval::view::{create_view, materialize, reattach_view, update_through_view, ViewDef};
use crate::eval::{create, method, update, Ctx, EvalOptions};
use crate::parser::{parse, parse_script};
use crate::resolve::resolve_stmt;
use crate::unparse::unparse_stmt;
use crate::vm;
use oodb::{Database, Oid};
use relalg::Relation;
use std::collections::BTreeMap;
use std::path::PathBuf;
use storage::codec::{decode_commit, encode_commit, CommitUnit, WalEntry};
use storage::{
    CheckpointStats, SalvageReport, SnapshotFile, StorageFs, Store, StoreConfig, StoreHealth,
};

/// The result of executing one XSQL statement.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A SELECT produced a relation (§3.3).
    Relation(Relation),
    /// An object-creating query produced new objects (§4.1).
    Created {
        /// OIDs of the created objects (id-terms of the id-function).
        oids: Vec<Oid>,
    },
    /// A view was created and materialized (§4.2).
    ViewCreated {
        /// The view's class-object.
        class: Oid,
        /// Number of view objects materialized.
        count: usize,
    },
    /// A method was defined via ALTER CLASS (§5).
    MethodDefined {
        /// The class whose definition was extended.
        class: Oid,
        /// The method-object.
        method: Oid,
    },
    /// An UPDATE wrote this many entries (§5).
    Updated {
        /// Number of state entries written.
        entries: usize,
    },
    /// A class was defined (extension DDL).
    ClassCreated {
        /// The new class-object.
        class: Oid,
    },
    /// An individual was created (extension DDL).
    ObjectCreated {
        /// The new individual.
        oid: Oid,
    },
    /// A signature was declared without a method body.
    SignatureAdded {
        /// The extended class.
        class: Oid,
        /// The declared method-object.
        method: Oid,
    },
    /// EXPLAIN: the typing report and plan (or measured profile, with
    /// ANALYZE) for a query.
    Explained {
        /// Rendered report.
        report: String,
    },
    /// STATS: the session's telemetry exposition.
    Stats {
        /// Rendered metrics (text or JSON per the telemetry config).
        report: String,
    },
    /// `BEGIN WORK` opened an explicit transaction.
    TransactionStarted,
    /// `COMMIT WORK` made the open transaction permanent.
    TransactionCommitted,
    /// `ROLLBACK WORK` restored the `BEGIN WORK` state.
    TransactionRolledBack,
    /// `PREPARE name AS <stmt>` compiled and stored a statement.
    Prepared {
        /// The prepared statement's name.
        name: String,
    },
    /// `WAL ON` enabled write-ahead logging (after a checkpoint).
    WalEnabled,
    /// `WAL OFF` disabled write-ahead logging.
    WalDisabled,
    /// `CHECKPOINT` wrote a snapshot and truncated the WAL.
    Checkpointed,
}

impl Outcome {
    /// The relation, if this outcome is one (convenience for tests).
    pub fn relation(&self) -> Option<&Relation> {
        match self {
            Outcome::Relation(r) => Some(r),
            _ => None,
        }
    }
}

/// An XSQL session: a database plus the view catalogue and evaluation
/// options. The paper's statements are strings; [`Session::run`] is the
/// whole pipeline.
///
/// ```
/// use oodb::DbBuilder;
/// use xsql::Session;
///
/// let mut b = DbBuilder::new();
/// b.class("Person");
/// b.attr("Person", "Name", "String");
/// let mary = b.obj("mary123", "Person");
/// b.set_str(mary, "Name", "Mary");
///
/// let mut s = Session::new(b.build());
/// let r = s.query("SELECT X FROM Person X WHERE X.Name['Mary']").unwrap();
/// assert_eq!(r.len(), 1);
/// ```
#[derive(Debug)]
pub struct Session {
    db: Database,
    opts: EvalOptions,
    views: BTreeMap<String, ViewDef>,
    anon_counter: usize,
    /// Explicit-transaction state: present between `BEGIN WORK` and the
    /// matching `COMMIT WORK`/`ROLLBACK WORK`.
    txn: Option<TxnState>,
    /// Set when a statement fails inside an open explicit transaction:
    /// the transaction is *poisoned* and every further statement except
    /// `ROLLBACK WORK` is rejected with
    /// [`XsqlError::TransactionPoisoned`]. The failed statement itself
    /// was already rolled back; poisoning removes the ambiguity of
    /// continuing a transaction whose script did not go as written.
    poison: Option<String>,
    /// The durable store, when the session was opened over a directory
    /// ([`Session::open_dir`]).
    store: Option<Store>,
    /// Whether committed statements are appended to the WAL. Off by
    /// default for plain in-memory sessions; on after [`Session::open_dir`].
    wal_enabled: bool,
    /// WAL entries of statements committed inside the open explicit
    /// transaction, flushed as one record at `COMMIT WORK`.
    pending: Vec<WalEntry>,
    /// Source text of every definitional statement executed so far
    /// (`ALTER CLASS … SELECT`, `CREATE VIEW`). Their effects are
    /// closures that no snapshot can serialize, so checkpoints persist
    /// this catalog and recovery re-executes it definitions-only.
    catalog: Vec<String>,
    /// Tag of the base fixture the store was created over.
    base_tag: String,
    /// What the last [`Session::open_dir`] recovery found — kept for the
    /// CLI's recovery report.
    recovery: Option<RecoveryInfo>,
    /// Telemetry registry: per-statement latency, recovery counters,
    /// and (once attached) the store's WAL/checkpoint metrics all land
    /// here. Metrics are always recorded — only span capture and the
    /// profile's timing lines follow the registry's
    /// [`telemetry::TelemetryConfig`].
    registry: std::sync::Arc<telemetry::Registry>,
    /// Cached handle so per-statement recording skips the registry lock.
    stmt_latency: std::sync::Arc<telemetry::Histogram>,
    /// Named prepared statements (`PREPARE … AS`). Session-local and
    /// never WAL-logged: a client must re-PREPARE after a crash or
    /// reconnect. Entries compiled under an older schema epoch are
    /// transparently recompiled at EXECUTE.
    prepared: BTreeMap<String, PreparedEntry>,
    /// The transparent plan cache: compiled programs keyed on
    /// normalized statement text, fenced by schema epoch
    /// ([`crate::vm::PlanCache`]). Consulted by [`Session::run`] when
    /// [`EvalOptions::use_vm`] is on.
    plan_cache: vm::PlanCache,
    /// Cached plan-cache metric handles (re-derived on
    /// [`Session::set_registry`]).
    cache_metrics: vm::CacheMetrics,
}

/// One `PREPARE`d statement: the unresolved body (kept for
/// re-resolution when the schema epoch moves) and the compiled program.
#[derive(Debug, Clone)]
struct PreparedEntry {
    /// The statement as written (parameters intact, names unresolved).
    src: Stmt,
    program: std::sync::Arc<vm::Program>,
}

/// Summary of what crash recovery did when the session opened its
/// store — the basis of the CLI's recovery report.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Whether a checkpoint image was loaded (vs. starting from the
    /// base fixture).
    pub snapshot_loaded: bool,
    /// Incremental checkpoint deltas applied on top of the snapshot.
    pub deltas_applied: usize,
    /// Definitional catalog statements re-executed.
    pub catalog_stmts: usize,
    /// WAL commit units replayed past the checkpoint.
    pub wal_units: usize,
    /// Present when recovery discarded WAL bytes: where the first bad
    /// record was and what was quarantined.
    pub salvage: Option<SalvageReport>,
}

impl RecoveryInfo {
    /// Human-readable recovery report (what the CLI prints on open).
    pub fn report(&self) -> String {
        let mut out = format!(
            "recovery: snapshot={} deltas_applied={} catalog_stmts={} wal_units_replayed={}",
            if self.snapshot_loaded {
                "loaded"
            } else {
                "none"
            },
            self.deltas_applied,
            self.catalog_stmts,
            self.wal_units,
        );
        if let Some(s) = &self.salvage {
            out.push_str(&format!(
                "\nsalvage: first bad record in {} at byte {}; {} record(s), {} byte(s) dropped",
                s.segment, s.offset, s.records_dropped, s.bytes_dropped
            ));
            if s.quarantined.is_empty() {
                out.push_str("\nsalvage: torn tail truncated in place (expected crash state)");
            } else {
                out.push_str(&format!(
                    "\nsalvage: quarantined (preserved, never deleted): {}",
                    s.quarantined.join(", ")
                ));
            }
        }
        out
    }
}

/// Snapshot taken at `BEGIN WORK`: the database savepoint plus the
/// session-level catalogue state (views, anonymous-name counter) that
/// the undo log does not cover.
#[derive(Debug)]
struct TxnState {
    sp: oodb::Savepoint,
    views: BTreeMap<String, ViewDef>,
    anon_counter: usize,
    catalog_len: usize,
    /// Prepared statements as of `BEGIN WORK`. `ROLLBACK WORK` restores
    /// this snapshot: a program compiled inside the transaction may
    /// reference OIDs the rollback un-interns, so in-transaction
    /// PREPAREs must not survive it.
    prepared: BTreeMap<String, PreparedEntry>,
}

/// How a committed statement is journaled in the WAL.
enum LogAs {
    /// As the redo ops it recorded (the common case).
    Ops,
    /// As its source text, re-executed on replay (definitional
    /// statements whose effect installs a closure).
    Stmt(String),
}

impl Session {
    /// Opens a session over a database with default (pipelined) options.
    pub fn new(db: Database) -> Session {
        Session::with_options(db, EvalOptions::default())
    }

    /// Opens a session with explicit evaluation options. The telemetry
    /// configuration is read from the environment (`XSQL_TELEMETRY`,
    /// `XSQL_TELEMETRY_FORMAT`, `XSQL_TELEMETRY_DETERMINISTIC`);
    /// [`Session::set_registry`] swaps in a different registry.
    pub fn with_options(db: Database, opts: EvalOptions) -> Session {
        let registry = std::sync::Arc::new(telemetry::Registry::from_env());
        let stmt_latency = registry.latency("xsql_stmt_latency_us", &[]);
        let cache_metrics = vm::CacheMetrics::new(&registry);
        Session {
            db,
            opts,
            views: BTreeMap::new(),
            anon_counter: 0,
            txn: None,
            poison: None,
            store: None,
            wal_enabled: false,
            pending: Vec::new(),
            catalog: Vec::new(),
            base_tag: String::new(),
            recovery: None,
            registry,
            stmt_latency,
            prepared: BTreeMap::new(),
            plan_cache: vm::PlanCache::new(),
            cache_metrics,
        }
    }

    /// Opens a session over a store directory, creating the store on
    /// first use and running crash recovery on every later open.
    ///
    /// `base` is the fixture database the store's history applies to and
    /// `base_tag` names it; the tag is persisted in the store's `meta`
    /// file and must match on reopen (the WAL is a delta over the
    /// fixture, so replaying it onto a different base would corrupt).
    /// Recovery loads the latest valid snapshot (or starts from `base`),
    /// re-executes the definitional catalog, replays the surviving WAL
    /// tail, and leaves the session with WAL logging enabled.
    pub fn open_dir(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
        base: Database,
        base_tag: &str,
        opts: EvalOptions,
    ) -> XsqlResult<Session> {
        let dir = dir.into();
        if !Store::exists(fs.as_ref(), &dir) {
            let mut store = Store::create(fs, &dir, base_tag)?;
            let mut s = Session::with_options(base, opts);
            store.attach_registry(&s.registry);
            s.base_tag = base_tag.to_string();
            s.store = Some(store);
            s.wal_enabled = true;
            s.db.set_redo_logging(true);
            return Ok(s);
        }
        let (store, recovered) = Store::open(fs, &dir)?;
        if recovered.base_tag != base_tag {
            return Err(XsqlError::Storage(format!(
                "store was created over base `{}`, not `{base_tag}`",
                recovered.base_tag
            )));
        }
        let snapshot_loaded = recovered.snapshot.is_some();
        let catalog_stmts = recovered
            .snapshot
            .as_ref()
            .map_or(0, |snap| snap.catalog.len());
        let mut s = Session::restore_image(base, base_tag, recovered.snapshot, opts)?;
        // What recovery had to do, for `STATS` / post-mortems.
        s.registry
            .gauge("xsql_recovery_snapshot_loaded", &[])
            .set(i64::from(snapshot_loaded));
        s.registry
            .counter("xsql_recovery_catalog_stmts_total", &[])
            .add(catalog_stmts as u64);
        s.registry
            .counter("xsql_recovery_wal_units_total", &[])
            .add(recovered.tail.len() as u64);
        if let Some(salvage) = &recovered.salvage {
            // The salvage point, in metrics: one event, how many
            // parseable records it cost, and whether it escalated from
            // a torn tail to quarantine.
            s.registry.counter("storage_wal_salvage_total", &[]).inc();
            s.registry
                .counter("storage_wal_salvage_records_dropped_total", &[])
                .add(salvage.records_dropped);
            s.registry
                .counter("storage_wal_quarantined_segments_total", &[])
                .add(salvage.quarantined.len() as u64);
        }
        s.recovery = Some(RecoveryInfo {
            snapshot_loaded,
            deltas_applied: recovered.deltas_applied,
            catalog_stmts,
            wal_units: recovered.tail.len(),
            salvage: recovered.salvage.clone(),
        });
        // Replay the WAL tail past the checkpoint image.
        for (_seq, payload) in &recovered.tail {
            s.apply_commit_payload(payload)?;
        }
        s.db.commit();
        let mut store = store;
        store.attach_registry(&s.registry);
        s.store = Some(store);
        s.wal_enabled = true;
        s.db.set_redo_logging(true);
        Ok(s)
    }

    /// Builds a session from a checkpoint *image* — the full snapshot
    /// with its delta chain already applied, as [`Store::open`] returns
    /// it — or from the bare fixture when no checkpoint exists yet.
    /// The definitional catalog is replayed definitions-only (the
    /// snapshot already holds the state those statements produced).
    ///
    /// This is the bootstrap half of crash recovery, shared by
    /// [`Session::open_dir`] and by WAL-shipped read replicas, which
    /// rebuild from the primary's shipped image and then stream commit
    /// units through [`Session::apply_commit_payload`]. The returned
    /// session has no store attached and WAL logging off.
    pub fn restore_image(
        base: Database,
        base_tag: &str,
        snapshot: Option<SnapshotFile>,
        opts: EvalOptions,
    ) -> XsqlResult<Session> {
        let (db, snap_anon, snap_catalog) = match snapshot {
            Some(snap) => (
                Database::import_snapshot(snap.db)?,
                snap.anon_counter,
                snap.catalog,
            ),
            None => (base, 0, Vec::new()),
        };
        let mut s = Session::with_options(db, opts);
        s.base_tag = base_tag.to_string();
        s.anon_counter = usize::try_from(snap_anon).expect("counter fits usize");
        for src in snap_catalog {
            s.replay_definition(&src)?;
            s.catalog.push(src);
        }
        Ok(s)
    }

    /// Applies one WAL commit-unit payload (the bytes of a single log
    /// record) to this session's database. Redo ops apply directly;
    /// definitional statements re-execute in full (their effects are
    /// never in a snapshot) and re-enter the catalog. The payload's
    /// anonymous-OID counter overwrites the session's, keeping replayed
    /// name generation aligned with the primary's.
    ///
    /// Both halves of log replay go through here: crash recovery of a
    /// store's own tail, and a replica streaming the primary's shipped
    /// segments. The encoding is position-independent (structural
    /// OIDs), so a unit encoded against the primary's OID table decodes
    /// correctly against this session's.
    pub fn apply_commit_payload(&mut self, payload: &[u8]) -> XsqlResult<()> {
        let unit = decode_commit(payload, self.db.oids_mut())?;
        for entry in unit.entries {
            match entry {
                WalEntry::Ops(ops) => {
                    for op in &ops {
                        self.db.apply_redo(op)?;
                    }
                }
                // `run` also re-appends the statement to the catalog.
                WalEntry::Stmt(src) => {
                    self.run(&src)?;
                }
            }
        }
        self.anon_counter = usize::try_from(unit.anon_counter).expect("counter fits usize");
        Ok(())
    }

    /// Re-installs one definitional statement from the catalog without
    /// re-running its query: method definitions re-resolve and register
    /// their closure (signature insertion is idempotent), views rebuild
    /// their [`ViewDef`] against the already-materialized class.
    fn replay_definition(&mut self, src: &str) -> XsqlResult<()> {
        let stmt = parse(src)?;
        let resolved = resolve_stmt(&mut self.db, &stmt)?;
        match &resolved {
            Stmt::AlterClass(a) => {
                method::install_method(&mut self.db, a, &self.opts)?;
            }
            Stmt::CreateView(v) => {
                let def = reattach_view(&self.db, v)?;
                self.views.insert(v.name.clone(), def);
            }
            other => {
                return Err(XsqlError::Storage(format!(
                    "catalog holds a non-definitional statement: {}",
                    unparse_stmt(other)
                )));
            }
        }
        Ok(())
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consumes the session, returning the database.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// The evaluation options in force.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Replaces the evaluation options.
    pub fn set_options(&mut self, opts: EvalOptions) {
        self.opts = opts;
    }

    /// Sets the worker count for top-level SELECT evaluation (clamped
    /// to at least 1; see [`EvalOptions::parallelism`]). Statements
    /// other than reads, and nested evaluation, always run
    /// sequentially regardless of this setting.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.opts.parallelism = workers.max(1);
    }

    /// A registered view definition.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(name)
    }

    /// The session's telemetry registry.
    pub fn registry(&self) -> &std::sync::Arc<telemetry::Registry> {
        &self.registry
    }

    /// Replaces the telemetry registry — a service attaches one shared
    /// registry to every session this way. Cached metric handles are
    /// re-derived and the store (if any) is re-pointed at the new
    /// registry.
    pub fn set_registry(&mut self, registry: std::sync::Arc<telemetry::Registry>) {
        self.stmt_latency = registry.latency("xsql_stmt_latency_us", &[]);
        self.cache_metrics = vm::CacheMetrics::new(&registry);
        self.cache_metrics.size.set(self.plan_cache.len() as i64);
        if let Some(store) = &mut self.store {
            store.attach_registry(&registry);
        }
        self.registry = registry;
    }

    /// Renders the telemetry exposition (what the `STATS` statement
    /// returns): every metric in the registry, in the configured format.
    pub fn stats_report(&self) -> String {
        self.registry.render()
    }

    /// Parses, resolves and executes one statement.
    ///
    /// Statements are **atomic**: the statement runs inside an implicit
    /// savepoint, and any error rolls the database (and the session's
    /// view catalogue) back to the pre-statement state. Outside an
    /// explicit transaction a successful statement commits immediately;
    /// inside one it stays undoable until `COMMIT WORK`.
    pub fn run(&mut self, src: &str) -> XsqlResult<Outcome> {
        if self.opts.use_vm {
            return self.run_vm(src);
        }
        let stmt = parse(src)?;
        self.execute(&stmt)
    }

    /// [`Session::run`] with the VM front end: the plan cache is
    /// consulted on the normalized statement text under the current
    /// schema epoch; a hit skips parse, resolve and lowering entirely.
    /// On a miss, cacheable statements (plain SELECTs) are compiled,
    /// run, and cached; everything else takes the stock path.
    fn run_vm(&mut self, src: &str) -> XsqlResult<Outcome> {
        let key = vm::normalize_src(src);
        let epoch = self.db.schema_epoch();
        if let Some(prog) = self.plan_cache.lookup(&key, epoch, &self.cache_metrics) {
            return self.execute_program_gated(|s| s.run_program(&prog, &[]));
        }
        let stmt = parse(src)?;
        if !vm::cacheable(&stmt) {
            return self.execute(&stmt);
        }
        let mut compiled: Option<std::sync::Arc<vm::Program>> = None;
        let out = self.execute_program_gated(|s| {
            let resolved = resolve_stmt(&mut s.db, &stmt)?;
            let prog = std::sync::Arc::new(vm::Program::compile(&s.db, &s.opts, resolved, 0));
            let outcome = s.run_program(&prog, &[])?;
            compiled = Some(prog);
            Ok(outcome)
        })?;
        if let Some(prog) = compiled {
            self.plan_cache.insert(key, prog, &self.cache_metrics);
        }
        Ok(out)
    }

    /// Runs a program-producing closure with the same telemetry span,
    /// latency recording, poison gate, atomicity and poison-on-failure
    /// rule as [`Session::execute`].
    fn execute_program_gated(
        &mut self,
        f: impl FnOnce(&mut Self) -> XsqlResult<Outcome>,
    ) -> XsqlResult<Outcome> {
        let registry = std::sync::Arc::clone(&self.registry);
        let _span = registry.span("xsql.execute");
        let started = std::time::Instant::now();
        let result = match self.poison_gate() {
            Ok(()) => {
                let r = self.atomically_as(LogAs::Ops, f);
                if let Err(e) = &r {
                    self.note_statement_failure(e);
                }
                r
            }
            Err(e) => Err(e),
        };
        self.stmt_latency.observe_since(started);
        result
    }

    /// Runs a `;`-separated script, returning the outcome of each
    /// statement. Each statement is atomic ([`Session::run`]); a failing
    /// statement is rolled back but the effects of the preceding
    /// successful ones stay in place, unless the script wrapped them in
    /// `BEGIN WORK … COMMIT WORK`. A transaction left open at the end of
    /// the script stays open in the session.
    pub fn run_script(&mut self, src: &str) -> XsqlResult<Vec<Outcome>> {
        let stmts = parse_script(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            out.push(self.execute(s)?);
        }
        Ok(out)
    }

    /// True between `BEGIN WORK` and the matching `COMMIT`/`ROLLBACK`.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The error that poisoned the open transaction, if any. While
    /// poisoned, only `ROLLBACK WORK` is accepted.
    pub fn transaction_poisoned(&self) -> Option<&str> {
        self.poison.as_deref()
    }

    /// Rejects any statement other than `ROLLBACK WORK` while the open
    /// transaction is poisoned.
    fn poison_gate(&self) -> XsqlResult<()> {
        match &self.poison {
            Some(cause) => Err(XsqlError::TransactionPoisoned {
                cause: cause.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Records a statement failure: inside an open explicit transaction
    /// it poisons the transaction (the statement itself already rolled
    /// back; what remains of the transaction no longer matches the
    /// script the user intended, so further statements are refused
    /// until `ROLLBACK WORK`).
    fn note_statement_failure(&mut self, e: &XsqlError) {
        if self.txn.is_some() && self.poison.is_none() {
            self.poison = Some(e.to_string());
        }
    }

    /// True when the session is backed by a durable store.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// True while committed statements are being appended to the WAL.
    pub fn wal_enabled(&self) -> bool {
        self.wal_enabled
    }

    /// Disables (or re-enables) the fsync after each WAL append.
    /// **For benchmarking only** — without the sync, acknowledged
    /// commits can be lost on power failure. No-op without a store.
    pub fn set_sync_on_commit(&mut self, on: bool) {
        if let Some(store) = &mut self.store {
            store.set_sync_on_commit(on);
        }
    }

    /// Fsyncs the WAL file. Group commit pairs this with
    /// [`set_sync_on_commit`](Session::set_sync_on_commit)`(false)`: a
    /// batch of statements is appended without per-statement syncs and
    /// made durable all at once before any of them is acknowledged.
    /// No-op without a store.
    pub fn sync_wal(&mut self) -> XsqlResult<()> {
        if let Some(store) = &mut self.store {
            store.sync_wal()?;
        }
        Ok(())
    }

    /// What the last [`Session::open_dir`] recovery found, if this
    /// session was opened over a store.
    pub fn recovery_info(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// The store's disk-health state ([`StoreHealth::Healthy`] for a
    /// session without a store — an in-memory session cannot run out of
    /// disk).
    pub fn store_health(&self) -> StoreHealth {
        self.store
            .as_ref()
            .map_or(StoreHealth::Healthy, |s| s.health())
    }

    /// While the store is degraded (disk full), probes for freed space;
    /// returns true when the store accepts writes. Rate-limited by the
    /// store config; a no-op true without a store.
    pub fn probe_space(&mut self) -> bool {
        self.store.as_mut().is_none_or(|s| s.probe_space())
    }

    /// The store's primary generation (fencing term); 1 without a
    /// store (a purely in-memory session can never be deposed).
    pub fn store_generation(&self) -> u64 {
        self.store.as_ref().map_or(1, |s| s.generation())
    }

    /// True once the store observed a newer primary generation and
    /// fenced itself: every further write fails with
    /// [`XsqlError::Fenced`] while reads keep serving.
    pub fn store_fenced(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.is_fenced())
    }

    /// Promotes this session's store to a new primary generation:
    /// bumps the fencing term and rotates onto a segment stamped with
    /// it, deposing any writer still holding the old term. Returns the
    /// new generation. Errors without a store.
    pub fn promote_store(&mut self) -> XsqlResult<u64> {
        match &mut self.store {
            Some(store) => Ok(store.promote()?),
            None => Err(XsqlError::Storage(
                "cannot promote: session has no durable store".into(),
            )),
        }
    }

    /// Replaces the store's tuning config (segment size, checkpoint
    /// triggers, retry policy). No-op without a store.
    pub fn set_store_config(&mut self, cfg: StoreConfig) {
        if let Some(store) = &mut self.store {
            store.set_config(cfg);
        }
    }

    /// Takes an automatic checkpoint if the store says enough WAL has
    /// accumulated ([`Store::checkpoint_due`]); returns the stats when
    /// one ran. Never fires inside a transaction, while the WAL is off,
    /// or while the store is degraded.
    pub fn checkpoint_if_due(&mut self) -> XsqlResult<Option<CheckpointStats>> {
        if self.txn.is_some() || !self.wal_enabled {
            return Ok(None);
        }
        match &self.store {
            Some(store) if store.checkpoint_due() => self.checkpoint_now().map(Some),
            _ => Ok(None),
        }
    }

    /// Runs a statement that must produce a relation.
    pub fn query(&mut self, src: &str) -> XsqlResult<Relation> {
        match self.run(src)? {
            Outcome::Relation(r) => Ok(r),
            o => Err(XsqlError::Resolve(format!(
                "statement did not produce a relation: {o:?}"
            ))),
        }
    }

    /// Executes a parsed statement atomically: name resolution and
    /// evaluation run inside an implicit savepoint, and any error
    /// restores the database and the view catalogue to the
    /// pre-statement state before propagating.
    pub fn execute(&mut self, stmt: &Stmt) -> XsqlResult<Outcome> {
        let registry = std::sync::Arc::clone(&self.registry);
        let _span = registry.span("xsql.execute");
        let started = std::time::Instant::now();
        let result = self.execute_gated(stmt);
        self.stmt_latency.observe_since(started);
        result
    }

    fn execute_gated(&mut self, stmt: &Stmt) -> XsqlResult<Outcome> {
        match stmt {
            // Diagnostics: read the registry without touching the
            // statement pipeline (works even in a poisoned transaction).
            Stmt::Stats => {
                return Ok(Outcome::Stats {
                    report: self.stats_report(),
                })
            }
            Stmt::Begin => return self.poison_gate().and_then(|()| self.txn_begin()),
            Stmt::Commit => return self.poison_gate().and_then(|()| self.txn_commit()),
            Stmt::Rollback => return self.txn_rollback(),
            Stmt::WalOn => return self.poison_gate().and_then(|()| self.wal_on()),
            Stmt::WalOff => return self.poison_gate().and_then(|()| self.wal_off()),
            Stmt::Checkpoint => return self.poison_gate().and_then(|()| self.checkpoint()),
            _ => self.poison_gate()?,
        }
        // Parameters only bind through EXECUTE; a bare `?n` anywhere
        // outside a PREPARE body can never receive a value.
        if !matches!(stmt, Stmt::Prepare { .. }) && vm::max_param(stmt) > 0 {
            let e = XsqlError::Resolve(
                "parameters (`?1`, `?2`, …) are only allowed inside a PREPARE body".into(),
            );
            self.note_statement_failure(&e);
            return Err(e);
        }
        // Definitional statements install closures (computed methods,
        // view definitions) that redo ops cannot capture; they are
        // journaled as source text and re-executed on replay.
        let log_as = match stmt {
            Stmt::AlterClass(_) | Stmt::CreateView(_) => LogAs::Stmt(unparse_stmt(stmt)),
            _ => LogAs::Ops,
        };
        let result = self.atomically_as(log_as, |s| {
            let resolved = resolve_stmt(&mut s.db, stmt)?;
            s.execute_resolved(&resolved)
        });
        if let Err(e) = &result {
            self.note_statement_failure(e);
        }
        result
    }

    /// [`Session::atomically_as`] with op-level journaling — for entry
    /// points that mutate outside the statement pipeline (`invoke`,
    /// `refresh_view`, `update_view`). Applies the same poison gate and
    /// poison-on-failure rule as [`Session::execute`].
    fn atomically<T>(&mut self, f: impl FnOnce(&mut Self) -> XsqlResult<T>) -> XsqlResult<T> {
        self.poison_gate()?;
        let result = self.atomically_as(LogAs::Ops, f);
        if let Err(e) = &result {
            self.note_statement_failure(e);
        }
        result
    }

    /// Runs `f` inside an implicit savepoint: on error the database,
    /// the view catalogue, the anonymous-name counter and the
    /// definitional catalog are restored to their state at entry.
    /// Outside an explicit transaction the savepoint's log is discarded
    /// afterwards (auto-commit); inside one it is kept so `ROLLBACK
    /// WORK` can unwind further. Must not be nested (the inner
    /// auto-commit would discard the outer span).
    ///
    /// When WAL logging is on, success also journals the statement
    /// (immediately outside a transaction, buffered inside one). The
    /// statement is acknowledged only after its WAL record is durable; a
    /// failed append rolls the statement back like any other error, so
    /// memory never runs ahead of the log.
    fn atomically_as<T>(
        &mut self,
        log_as: LogAs,
        f: impl FnOnce(&mut Self) -> XsqlResult<T>,
    ) -> XsqlResult<T> {
        let sp = self.db.savepoint();
        let views = self.views.clone();
        let anon = self.anon_counter;
        let catalog_len = self.catalog.len();
        let mark = self.db.redo_len();
        let result = f(self).and_then(|v| {
            self.flush_statement(log_as, mark)?;
            Ok(v)
        });
        if result.is_err() {
            self.db.truncate_redo(mark);
            if let Err(e) = self.db.rollback_to(sp) {
                // The savepoint was taken in this very span; losing it
                // means something outside the session committed the log.
                return Err(XsqlError::Internal(format!(
                    "statement rollback failed: {e}"
                )));
            }
            self.views = views;
            self.anon_counter = anon;
            self.catalog.truncate(catalog_len);
        }
        if self.txn.is_none() {
            self.db.commit();
        }
        result
    }

    /// Journals one successfully executed statement. Definitional
    /// statements always extend the catalog (checkpoints need them even
    /// when the WAL is off); WAL entries are written only when logging
    /// is on — immediately (one commit unit per auto-committed
    /// statement) or into the transaction's pending buffer.
    fn flush_statement(&mut self, log_as: LogAs, mark: usize) -> XsqlResult<()> {
        let logging = self.store.is_some() && self.wal_enabled;
        let entry = match log_as {
            LogAs::Stmt(src) => {
                // Re-execution covers the ops; drop the duplicate image.
                self.db.truncate_redo(mark);
                self.catalog.push(src.clone());
                if logging {
                    Some(WalEntry::Stmt(src))
                } else {
                    None
                }
            }
            LogAs::Ops => {
                let ops = self.db.take_redo_from(mark);
                if logging && !ops.is_empty() {
                    Some(WalEntry::Ops(ops))
                } else {
                    None
                }
            }
        };
        let Some(entry) = entry else { return Ok(()) };
        if self.txn.is_some() {
            self.pending.push(entry);
            return Ok(());
        }
        let unit = CommitUnit {
            anon_counter: self.anon_counter as u64,
            entries: vec![entry],
        };
        let payload = encode_commit(&unit, self.db.oids());
        let store = self.store.as_mut().expect("logging implies a store");
        store.append_commit(&payload)?;
        Ok(())
    }

    fn txn_begin(&mut self) -> XsqlResult<Outcome> {
        if self.txn.is_some() {
            return Err(XsqlError::Resolve(
                "BEGIN WORK: a transaction is already open".into(),
            ));
        }
        let sp = self.db.begin();
        self.txn = Some(TxnState {
            sp,
            views: self.views.clone(),
            anon_counter: self.anon_counter,
            catalog_len: self.catalog.len(),
            prepared: self.prepared.clone(),
        });
        Ok(Outcome::TransactionStarted)
    }

    fn txn_commit(&mut self) -> XsqlResult<Outcome> {
        if self.txn.is_none() {
            return Err(XsqlError::Resolve(
                "COMMIT WORK: no open transaction".into(),
            ));
        }
        // The whole transaction is one WAL record: replaying a log can
        // never surface half a transaction. If the append fails the
        // transaction stays open — the caller may retry or roll back.
        if let Some(store) = &mut self.store {
            if self.wal_enabled && !self.pending.is_empty() {
                let unit = CommitUnit {
                    anon_counter: self.anon_counter as u64,
                    entries: self.pending.clone(),
                };
                let payload = encode_commit(&unit, self.db.oids());
                store.append_commit(&payload)?;
            }
        }
        self.pending.clear();
        self.txn = None;
        self.db.commit();
        Ok(Outcome::TransactionCommitted)
    }

    fn txn_rollback(&mut self) -> XsqlResult<Outcome> {
        let Some(t) = self.txn.take() else {
            return Err(XsqlError::Resolve(
                "ROLLBACK WORK: no open transaction".into(),
            ));
        };
        // ROLLBACK WORK is the (only) cure for a poisoned transaction.
        self.poison = None;
        self.db.rollback_to(t.sp)?;
        self.db.commit();
        self.views = t.views;
        self.anon_counter = t.anon_counter;
        self.catalog.truncate(t.catalog_len);
        self.prepared = t.prepared;
        self.pending.clear();
        Ok(Outcome::TransactionRolledBack)
    }

    fn require_store(&self, what: &str) -> XsqlResult<()> {
        if self.txn.is_some() {
            return Err(XsqlError::Resolve(format!(
                "{what}: not allowed inside a transaction"
            )));
        }
        if self.store.is_none() {
            return Err(XsqlError::Resolve(format!(
                "{what}: the session has no store (open a directory first)"
            )));
        }
        Ok(())
    }

    fn wal_on(&mut self) -> XsqlResult<Outcome> {
        self.require_store("WAL ON")?;
        if !self.wal_enabled {
            // Changes made while the WAL was off exist only in memory;
            // checkpoint first so the resumed log has no gap.
            self.checkpoint_now()?;
            self.wal_enabled = true;
            self.db.set_redo_logging(true);
        }
        Ok(Outcome::WalEnabled)
    }

    fn wal_off(&mut self) -> XsqlResult<Outcome> {
        self.require_store("WAL OFF")?;
        self.wal_enabled = false;
        self.db.set_redo_logging(false);
        Ok(Outcome::WalDisabled)
    }

    fn checkpoint(&mut self) -> XsqlResult<Outcome> {
        self.require_store("CHECKPOINT")?;
        self.checkpoint_now()?;
        Ok(Outcome::Checkpointed)
    }

    fn checkpoint_now(&mut self) -> XsqlResult<CheckpointStats> {
        let snap = SnapshotFile {
            base_tag: self.base_tag.clone(),
            last_seq: 0, // filled in by the store
            anon_counter: self.anon_counter as u64,
            catalog: self.catalog.clone(),
            db: self.db.export_snapshot(),
        };
        let store = self.store.as_mut().expect("caller ensured a store");
        Ok(store.checkpoint(snap)?)
    }

    /// Executes an already-resolved, non-transaction-control statement.
    fn execute_resolved(&mut self, stmt: &Stmt) -> XsqlResult<Outcome> {
        match stmt {
            Stmt::Select(q) => self.exec_select(q),
            Stmt::RelOp { left, op, right } => {
                let l = self.execute_resolved(left)?;
                let r = self.execute_resolved(right)?;
                let (Outcome::Relation(l), Outcome::Relation(r)) = (l, r) else {
                    return Err(XsqlError::Resolve(
                        "relational operators require SELECT operands".into(),
                    ));
                };
                let out = match op {
                    RelOp::Union => l.union(&r),
                    RelOp::Minus => l.minus(&r),
                    RelOp::Intersect => l.intersect(&r),
                }
                .map_err(|e| XsqlError::Resolve(e.to_string()))?;
                Ok(Outcome::Relation(out))
            }
            Stmt::CreateView(v) => {
                if self.views.contains_key(&v.name) {
                    return Err(XsqlError::Resolve(format!(
                        "view `{}` already exists",
                        v.name
                    )));
                }
                let (def, oids) = create_view(&mut self.db, v, &self.opts)?;
                let class = def.class;
                self.views.insert(v.name.clone(), def);
                Ok(Outcome::ViewCreated {
                    class,
                    count: oids.len(),
                })
            }
            Stmt::AlterClass(a) => {
                let (class, m) = method::install_method(&mut self.db, a, &self.opts)?;
                Ok(Outcome::MethodDefined { class, method: m })
            }
            Stmt::AddSignature { class, signature } => {
                let class_oid = self
                    .db
                    .oids()
                    .find_sym(class)
                    .filter(|&c| self.db.is_class(c))
                    .ok_or_else(|| XsqlError::Resolve(format!("unknown class `{class}`")))?;
                let resolve_class = |db: &Database, n: &str| {
                    db.oids()
                        .find_sym(n)
                        .filter(|&c| db.is_class(c))
                        .ok_or_else(|| XsqlError::Resolve(format!("unknown class `{n}`")))
                };
                let args = signature
                    .args
                    .iter()
                    .map(|n| resolve_class(&self.db, n))
                    .collect::<XsqlResult<Vec<_>>>()?;
                let result = resolve_class(&self.db, &signature.result)?;
                let method = self.db.add_signature(
                    class_oid,
                    &signature.method,
                    &args,
                    result,
                    signature.set_valued,
                )?;
                Ok(Outcome::SignatureAdded {
                    class: class_oid,
                    method,
                })
            }
            Stmt::Update(u) => {
                let entries = update::exec_update(&mut self.db, u, &[], &self.opts)?;
                Ok(Outcome::Updated { entries })
            }
            Stmt::CreateClass(c) => {
                let supers = c
                    .supers
                    .iter()
                    .map(|n| {
                        self.db
                            .oids()
                            .find_sym(n)
                            .filter(|&s| self.db.is_class(s))
                            .ok_or_else(|| XsqlError::Resolve(format!("unknown superclass `{n}`")))
                    })
                    .collect::<XsqlResult<Vec<_>>>()?;
                let class = self.db.define_class(&c.name, &supers)?;
                Ok(Outcome::ClassCreated { class })
            }
            Stmt::CreateObject(o) => {
                let classes = o
                    .classes
                    .iter()
                    .map(|n| {
                        self.db
                            .oids()
                            .find_sym(n)
                            .filter(|&c| self.db.is_class(c))
                            .ok_or_else(|| XsqlError::Resolve(format!("unknown class `{n}`")))
                    })
                    .collect::<XsqlResult<Vec<_>>>()?;
                let oid = self.db.new_individual(&o.name, &classes)?;
                for (attr, op) in &o.sets {
                    // Attribute initializers are evaluated under empty
                    // bindings (they may navigate from constants).
                    let cells: Vec<crate::eval::value::Cell> = {
                        let ctx = Ctx::new(&self.db, &self.opts);
                        let bnd = crate::eval::bindings::Bindings::new();
                        ctx.operand_value(op, &bnd)?
                            .into_iter()
                            .map(crate::eval::value::Cell::from)
                            .collect()
                    };
                    let m = self.db.oids_mut().sym(attr);
                    let set_valued = self
                        .db
                        .signatures_of_method(m, 0)
                        .iter()
                        .any(|(_, s)| s.set_valued);
                    if set_valued || cells.len() > 1 {
                        let oids: Vec<Oid> = cells
                            .into_iter()
                            .map(|c| c.into_oid(self.db.oids_mut()))
                            .collect();
                        self.db.set_set(oid, m, &[], oids)?;
                    } else if let Some(&cell) = cells.first() {
                        let v = cell.into_oid(self.db.oids_mut());
                        self.db.set_scalar(oid, m, &[], v)?;
                    }
                }
                Ok(Outcome::ObjectCreated { oid })
            }
            Stmt::Explain {
                analyze,
                stmt: inner,
            } => {
                // Defense in depth for programmatic ASTs — the parser
                // already rejects non-SELECT operands with a span.
                let Stmt::Select(q) = inner.as_ref() else {
                    return Err(XsqlError::Resolve(
                        "EXPLAIN applies to SELECT queries only".into(),
                    ));
                };
                let report = if *analyze {
                    self.explain_analyze(q)?
                } else {
                    self.explain(q)?
                };
                Ok(Outcome::Explained { report })
            }
            Stmt::Prepare { name, stmt: inner } => {
                // The body is resolved and compiled now; EXECUTE pays
                // zero parse/resolve/lowering cost. The unresolved body
                // is kept so a schema-epoch change can recompile.
                let n_params = vm::max_param(inner);
                let resolved = resolve_stmt(&mut self.db, inner)?;
                let program = std::sync::Arc::new(vm::Program::compile(
                    &self.db, &self.opts, resolved, n_params,
                ));
                self.prepared.insert(
                    name.clone(),
                    PreparedEntry {
                        src: (**inner).clone(),
                        program,
                    },
                );
                Ok(Outcome::Prepared { name: name.clone() })
            }
            Stmt::Execute { name, args } => {
                let entry = self.prepared.get(name).cloned().ok_or_else(|| {
                    XsqlError::Resolve(format!(
                        "unknown prepared statement `{name}` (prepared statements are \
                         session-local; re-PREPARE after reconnect or crash)"
                    ))
                })?;
                let epoch = self.db.schema_epoch();
                let program = if entry.program.epoch == epoch {
                    self.cache_metrics.hits.inc();
                    entry.program
                } else {
                    // The schema moved since PREPARE: the compiled plan
                    // is fenced out; re-resolve the stored body and
                    // recompile under the current epoch.
                    self.cache_metrics.invalidations.inc();
                    let n_params = entry.program.n_params;
                    let resolved = resolve_stmt(&mut self.db, &entry.src)?;
                    let program = std::sync::Arc::new(vm::Program::compile(
                        &self.db, &self.opts, resolved, n_params,
                    ));
                    self.prepared.insert(
                        name.clone(),
                        PreparedEntry {
                            src: entry.src,
                            program: std::sync::Arc::clone(&program),
                        },
                    );
                    program
                };
                let oids: Vec<Oid> = args
                    .iter()
                    .map(|a| match a {
                        IdTerm::Oid(o) => Ok(*o),
                        other => Err(XsqlError::Resolve(format!(
                            "EXECUTE arguments must be constants (got `{other:?}`)"
                        ))),
                    })
                    .collect::<XsqlResult<_>>()?;
                self.run_program(&program, &oids)
            }
            Stmt::Stats => Ok(Outcome::Stats {
                report: self.stats_report(),
            }),
            Stmt::Begin
            | Stmt::Commit
            | Stmt::Rollback
            | Stmt::WalOn
            | Stmt::WalOff
            | Stmt::Checkpoint => Err(XsqlError::Resolve(
                "transaction/storage control cannot be nested inside another statement".into(),
            )),
        }
    }

    /// Renders the §6 typing report plus the static evaluation plan for
    /// a query (plain `EXPLAIN` — nothing is executed).
    fn explain(&self, q: &SelectQuery) -> XsqlResult<String> {
        use crate::typing::{analyze, extract, ranges_for, Exemptions, Verdict};
        let mut out = String::new();
        match analyze(&self.db, q, &Exemptions::none()) {
            Verdict::StrictlyWellTyped { assignment, plan } => {
                let shape = extract(&self.db, q).expect("strict implies extractable");
                out.push_str(
                    "strictly well-typed
",
                );
                out.push_str(&format!(
                    "assignment: {}
",
                    assignment.render(&self.db, &shape)
                ));
                out.push_str(&format!(
                    "coherent plan (path order): {plan:?}
"
                ));
                let occs = shape.occurrences();
                let ranges = ranges_for(&self.db, &shape, &assignment, &occs);
                for (v, classes) in ranges {
                    if v.starts_with("_anon") {
                        continue;
                    }
                    let names: Vec<String> = classes.iter().map(|&c| self.db.render(c)).collect();
                    out.push_str(&format!(
                        "range A({v}) = {{{}}}
",
                        names.join(", ")
                    ));
                }
            }
            Verdict::LiberallyWellTyped { assignment } => {
                let shape = extract(&self.db, q).expect("liberal implies extractable");
                out.push_str(
                    "liberally well-typed (not strictly: no coherent plan)
",
                );
                out.push_str(&format!(
                    "assignment: {}
",
                    assignment.render(&self.db, &shape)
                ));
            }
            Verdict::IllTyped => {
                out.push_str(
                    "ill-typed: no valid complete assignment with non-empty ranges                      (the query returns no answers on any database with this schema)
",
                );
            }
            Verdict::OutsideFragment { reason } => {
                out.push_str(&format!(
                    "outside the §6.2 typable fragment: {reason}
"
                ));
            }
        }
        // The static plan under the session's options — what EXPLAIN
        // ANALYZE would measure, predicted without running the query.
        let ctx = Ctx::new(&self.db, &self.opts);
        out.push_str(&crate::eval::profile::static_plan(&ctx, q)?);
        Ok(out)
    }

    /// Runs the query and renders its measured execution profile
    /// (`EXPLAIN ANALYZE`). Object-creating queries are rejected: the
    /// ANALYZE contract is that the statement's only effect is the
    /// report, and `OID FUNCTION OF` would mutate the database.
    fn explain_analyze(&self, q: &SelectQuery) -> XsqlResult<String> {
        if q.oid_fn.is_some() {
            return Err(XsqlError::Resolve(
                "EXPLAIN ANALYZE cannot run an object-creating query (OID FUNCTION OF)".into(),
            ));
        }
        let profile = std::sync::Arc::new(crate::eval::profile::QueryProfile::default());
        let opts = EvalOptions {
            profile: Some(std::sync::Arc::clone(&profile)),
            ..self.opts.clone()
        };
        let ctx = Ctx::new(&self.db, &opts);
        eval_rows(&ctx, q)?;
        Ok(profile.render(self.registry.config().deterministic))
    }

    /// Executes a compiled program with the given EXECUTE arguments.
    /// Bytecode bodies run through the VM dispatch loop; fallback
    /// bodies re-enter [`Session::execute_resolved`] with the bound
    /// statement (still skipping parse and resolve).
    fn run_program(&mut self, prog: &vm::Program, args: &[Oid]) -> XsqlResult<Outcome> {
        // The epoch fence: callers already validated (cache lookup /
        // EXECUTE recompile), so a mismatch here is a bug — count it
        // (the chaos harness asserts this stays 0) and refuse to run.
        if prog.epoch != self.db.schema_epoch() {
            self.cache_metrics.stale_executions.inc();
            return Err(XsqlError::Internal(
                "vm: stale plan reached execution (schema epoch changed since compilation)".into(),
            ));
        }
        let bound;
        let stmt = if prog.n_params == 0 && args.is_empty() {
            &prog.stmt
        } else {
            bound = prog.bind(args, &self.db)?;
            &bound
        };
        match (&prog.body, stmt) {
            (vm::Body::Select(cs), Stmt::Select(q)) => {
                let rows = {
                    let ctx = Ctx::new(&self.db, &self.opts);
                    vm::exec::run_select(&ctx, prog, q)?
                };
                let rel = match rows {
                    // Bare-OID rows: distinct by construction, nothing
                    // to intern — one bulk build.
                    vm::exec::SelectRows::Atoms(tuples) => {
                        Relation::from_tuples(cs.columns.clone(), tuples)
                    }
                    vm::exec::SelectRows::Cells(rows) => Relation::from_tuples(
                        cs.columns.clone(),
                        rows.into_iter().map(|row| {
                            row.into_iter()
                                .map(|c| c.into_oid(self.db.oids_mut()))
                                .collect()
                        }),
                    ),
                };
                Ok(Outcome::Relation(rel))
            }
            _ => {
                let stmt = stmt.clone();
                self.execute_resolved(&stmt)
            }
        }
    }

    fn exec_select(&mut self, q: &SelectQuery) -> XsqlResult<Outcome> {
        if q.oid_fn.is_some() {
            let fn_name = match q.oid_fn.as_ref().and_then(|s| s.function.clone()) {
                Some(n) => n,
                None => {
                    self.anon_counter += 1;
                    format!("_oidfn{}", self.anon_counter)
                }
            };
            let oids = create::run_creation(
                &mut self.db,
                q,
                &self.opts,
                &fn_name,
                None,
                &BTreeMap::new(),
            )?;
            return Ok(Outcome::Created { oids });
        }
        let (columns, rows) = {
            let ctx = Ctx::new(&self.db, &self.opts);
            eval_rows(&ctx, q)?
        };
        let mut rel = Relation::new(columns);
        for row in rows {
            let t: Vec<Oid> = row
                .into_iter()
                .map(|c| c.into_oid(self.db.oids_mut()))
                .collect();
            rel.insert(t);
        }
        Ok(Outcome::Relation(rel))
    }

    /// Runs a SELECT with the Theorem 6.1 optimization: when the query
    /// is strictly well-typed, evaluation restricts every variable to
    /// its range `A(X)` under a coherent assignment; otherwise it falls
    /// back to plain evaluation (the optimization "is not always
    /// possible", §6.2). Sound on signature-conformant databases
    /// ([`oodb::Database::check_conformance`]).
    pub fn query_typed(&mut self, src: &str) -> XsqlResult<Relation> {
        self.poison_gate()?;
        let stmt = parse(src)?;
        let stmt = resolve_stmt(&mut self.db, &stmt)?;
        let Stmt::Select(q) = &stmt else {
            return Err(XsqlError::Resolve(
                "query_typed applies to SELECT statements".into(),
            ));
        };
        if q.oid_fn.is_some() {
            return Err(XsqlError::Resolve(
                "query_typed does not run object-creating queries".into(),
            ));
        }
        use crate::typing::{theorem61_ranges, Exemptions};
        let ranges = theorem61_ranges(&self.db, q, &Exemptions::none())?;
        let (columns, rows) = {
            let ranges_ref = ranges.as_ref();
            let ctx = match ranges_ref {
                Some(r) => Ctx::with_ranges(&self.db, &self.opts, r),
                None => Ctx::new(&self.db, &self.opts),
            };
            eval_rows(&ctx, q)?
        };
        let mut rel = Relation::new(columns);
        for row in rows {
            let t: Vec<Oid> = row
                .into_iter()
                .map(|c| c.into_oid(self.db.oids_mut()))
                .collect();
            rel.insert(t);
        }
        Ok(rel)
    }

    /// Invokes a (possibly update) method on a receiver by name —
    /// convenience mirroring §5's method-call semantics.
    pub fn invoke(
        &mut self,
        recv: Oid,
        method: &str,
        args: &[Oid],
    ) -> XsqlResult<Option<oodb::Val>> {
        let m = self
            .db
            .oids()
            .find_sym(method)
            .ok_or_else(|| XsqlError::Resolve(format!("unknown method `{method}`")))?;
        // Update methods can fail mid-mutation; run atomically.
        self.atomically(|s| Ok(s.db.invoke_update(recv, m, args)?))
    }

    /// Re-materializes a view after base updates (§4.2 views are
    /// query-defined; this recomputes the extent and drops stale
    /// objects).
    pub fn refresh_view(&mut self, name: &str) -> XsqlResult<usize> {
        let def = self
            .views
            .get(name)
            .cloned()
            .ok_or_else(|| XsqlError::Resolve(format!("unknown view `{name}`")))?;
        self.atomically(|s| {
            let oids = materialize(&mut s.db, &def, &s.opts)?;
            Ok(oids.len())
        })
    }

    /// Translates an update on a view object to the underlying database
    /// (§4.2 "an update made through the view on the Salary attribute …
    /// can be translated into an update on the database").
    pub fn update_view(
        &mut self,
        view: &str,
        view_obj: Oid,
        attr: &str,
        new_value: Oid,
    ) -> XsqlResult<()> {
        let def = self
            .views
            .get(view)
            .cloned()
            .ok_or_else(|| XsqlError::Resolve(format!("unknown view `{view}`")))?;
        self.atomically(|s| update_through_view(&mut s.db, &def, view_obj, attr, new_value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::DbBuilder;

    /// Companies with divisions and employees — the §4 fixture.
    fn company_db() -> Database {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.subclass("Employee", &["Person"]);
        b.class("Company");
        b.class("Division");
        b.attr("Person", "Name", "String");
        b.attr("Employee", "Salary", "Numeral");
        b.set_attr("Employee", "Dependents", "Person");
        b.attr("Company", "Name", "String");
        b.set_attr("Company", "Divisions", "Division");
        b.set_attr("Company", "Retirees", "Person");
        b.attr("Division", "Name", "String");
        b.attr("Division", "Manager", "Employee");
        b.set_attr("Division", "Employees", "Employee");

        let e1 = b.obj("emp1", "Employee");
        b.set_str(e1, "Name", "Alice");
        b.set_int(e1, "Salary", 40000);
        let e2 = b.obj("emp2", "Employee");
        b.set_str(e2, "Name", "Bob");
        b.set_int(e2, "Salary", 30000);
        let e3 = b.obj("emp3", "Employee");
        b.set_str(e3, "Name", "Carol");
        b.set_int(e3, "Salary", 50000);
        let dep = b.obj("kid1", "Person");
        b.set_many(e1, "Dependents", &[dep]);

        let d1 = b.obj("divSales", "Division");
        b.set_str(d1, "Name", "Sales");
        b.set(d1, "Manager", e1);
        b.set_many(d1, "Employees", &[e1, e2]);
        let d2 = b.obj("divEng", "Division");
        b.set_str(d2, "Name", "Engineering");
        b.set(d2, "Manager", e3);
        b.set_many(d2, "Employees", &[e3]);

        let c = b.obj("acme", "Company");
        b.set_str(c, "Name", "Acme");
        b.set_many(c, "Divisions", &[d1, d2]);
        let ret = b.obj("oldTimer", "Person");
        b.set_many(c, "Retirees", &[ret]);
        b.build()
    }

    #[test]
    fn object_creation_per_pair() {
        let mut s = Session::new(company_db());
        let out = s
            .run(
                "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W \
                 WHERE X.Divisions.Employees[W]",
            )
            .unwrap();
        match out {
            Outcome::Created { oids } => assert_eq!(oids.len(), 3),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn ill_defined_query_detected() {
        // §4.1: OID FUNCTION OF X only, but EmpSalary varies per W.
        let mut s = Session::new(company_db());
        let err = s
            .run(
                "SELECT CompName = X.Name, EmpSalary = W.Salary FROM Company X \
                 OID FUNCTION OF X WHERE X.Divisions.Employees[W]",
            )
            .unwrap_err();
        assert!(matches!(err, XsqlError::IllDefined(_)), "got {err}");
    }

    #[test]
    fn grouped_set_attribute() {
        // Query (8): beneficiaries = retirees + dependents.
        let mut s = Session::new(company_db());
        let out = s
            .run(
                "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y \
                 OID FUNCTION OF Y WHERE Y.Retirees[W] \
                 or Y.Divisions.Employees.Dependents[W]",
            )
            .unwrap();
        let Outcome::Created { oids } = out else {
            panic!()
        };
        assert_eq!(oids.len(), 1);
        let obj = oids[0];
        let m = s.db().oids().find_sym("Beneficiaries").unwrap();
        let v = s.db().value(obj, m, &[]).unwrap().unwrap();
        assert_eq!(v.len(), 2); // oldTimer + kid1
    }

    #[test]
    fn view_create_and_query_through() {
        let mut s = Session::new(company_db());
        let out = s
            .run(
                "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
                 SIGNATURE CompName => String, DivName => String, Salary => Numeral \
                 SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary \
                 FROM Company X OID FUNCTION OF X,W \
                 WHERE X.Divisions[Y].Employees[W]",
            )
            .unwrap();
        match out {
            Outcome::ViewCreated { count, .. } => assert_eq!(count, 3),
            o => panic!("unexpected {o:?}"),
        }
        // Query (10)-style: companies with an employee above 35000,
        // through the view's id-function.
        let r = s
            .query(
                "SELECT X.Name FROM Company X, Employee W \
                 WHERE CompSalaries(X, W).Salary > 35000",
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        // The view is also an ordinary class.
        let r = s
            .query("SELECT V FROM CompSalaries V WHERE V.Salary > 35000")
            .unwrap();
        assert_eq!(r.len(), 2); // Alice 40000, Carol 50000
    }

    #[test]
    fn view_update_translates_to_base() {
        let mut s = Session::new(company_db());
        s.run(
            "CREATE VIEW EmpSal AS SUBCLASS OF Object \
             SIGNATURE Salary => Numeral \
             SELECT Salary = W.Salary FROM Employee W OID FUNCTION OF W \
             WHERE W.Salary",
        )
        .unwrap();
        let emp1 = s.db().oids().find_sym("emp1").unwrap();
        let fn_sym = s.db().oids().find_sym("EmpSal").unwrap();
        let view_obj = s.db().oids().find_func(fn_sym, &[emp1]).unwrap();
        let new_sal = s.db_mut().oids_mut().int(99000);
        s.update_view("EmpSal", view_obj, "Salary", new_sal)
            .unwrap();
        let sal = s.db().oids().find_sym("Salary").unwrap();
        let v = s.db().value(emp1, sal, &[]).unwrap().unwrap();
        assert_eq!(
            s.db().oids().as_number(v.as_scalar().unwrap()),
            Some(99000.0)
        );
    }

    #[test]
    fn method_definition_and_use() {
        // Query (12): MngrSalary.
        let mut s = Session::new(company_db());
        s.run(
            "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral \
             SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X \
             WHERE X.Divisions[Y].Manager.Salary[W]",
        )
        .unwrap();
        let acme = s.db().oids().find_sym("acme").unwrap();
        let sales = s.db_mut().oids_mut().str("Sales");
        let v = s.invoke(acme, "MngrSalary", &[sales]).unwrap().unwrap();
        assert_eq!(
            s.db().oids().as_number(v.as_scalar().unwrap()),
            Some(40000.0)
        );
        // And inside a path expression.
        let r = s
            .query("SELECT W FROM Company X WHERE X.(MngrSalary @ 'Engineering')[W]")
            .unwrap();
        assert_eq!(r.len(), 1);
        let w = *r.as_set().iter().next().unwrap();
        assert_eq!(s.db().oids().as_number(w), Some(50000.0));
    }

    #[test]
    fn update_method_raises_salaries() {
        // §5: RaiseMngrSalary.
        let mut s = Session::new(company_db());
        s.run(
            "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral \
             SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X \
             WHERE X.Divisions[Y].Manager.Salary[W]",
        )
        .unwrap();
        s.run(
            "ALTER CLASS Company ADD SIGNATURE RaiseMngrSalary : Numeral => Object \
             SELECT (RaiseMngrSalary @ W) = nil FROM Company X, Numeral W OID X \
             WHERE W < 20 and (UPDATE CLASS Company \
             SET X.Divisions[Y].Manager.Salary = (1 + W/100) * X.(MngrSalary @ Y.Name))",
        )
        .unwrap();
        let acme = s.db().oids().find_sym("acme").unwrap();
        let pct = s.db_mut().oids_mut().int(10);
        let v = s.invoke(acme, "RaiseMngrSalary", &[pct]).unwrap().unwrap();
        assert!(s.db().oids().is_nil(v.as_scalar().unwrap()));
        // Alice 40000 -> 44000, Carol 50000 -> 55000.
        let emp1 = s.db().oids().find_sym("emp1").unwrap();
        let sal = s.db().oids().find_sym("Salary").unwrap();
        let v = s.db().value(emp1, sal, &[]).unwrap().unwrap();
        assert_eq!(
            s.db().oids().as_number(v.as_scalar().unwrap()),
            Some(44000.0)
        );
        let emp3 = s.db().oids().find_sym("emp3").unwrap();
        let v = s.db().value(emp3, sal, &[]).unwrap().unwrap();
        let got = s.db().oids().as_number(v.as_scalar().unwrap()).unwrap();
        assert!((got - 55000.0).abs() < 1e-6, "got {got}");
        // Guard: a raise of 25% is rejected (W < 20 fails) — method
        // returns undefined.
        let pct = s.db_mut().oids_mut().int(25);
        let v = s.invoke(acme, "RaiseMngrSalary", &[pct]).unwrap();
        assert!(v.is_none());
    }

    #[test]
    fn standalone_update() {
        let mut s = Session::new(company_db());
        let out = s
            .run("UPDATE CLASS Employee SET emp2.Salary = 31000")
            .unwrap();
        assert!(matches!(out, Outcome::Updated { entries: 1 }));
        let r = s
            .query("SELECT X FROM Employee X WHERE X.Salary[31000]")
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn relational_union_minus() {
        let mut s = Session::new(company_db());
        let r = s
            .query(
                "SELECT X FROM Employee X WHERE X.Salary > 35000 \
                 UNION SELECT X FROM Employee X WHERE X.Salary < 35000",
            )
            .unwrap();
        assert_eq!(r.len(), 3);
        let r = s
            .query(
                "SELECT X FROM Employee X \
                 MINUS SELECT X FROM Employee X WHERE X.Salary > 35000",
            )
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_aggregate_interned() {
        let mut s = Session::new(company_db());
        let r = s
            .query("SELECT X.Name, count(X.Divisions) FROM Company X")
            .unwrap();
        assert_eq!(r.len(), 1);
        let row = r.iter().next().unwrap();
        assert_eq!(s.db().oids().as_number(row[1]), Some(2.0));
    }

    #[test]
    fn view_refresh_drops_stale() {
        let mut s = Session::new(company_db());
        s.run(
            "CREATE VIEW HighPaid AS SUBCLASS OF Object \
             SIGNATURE Name => String \
             SELECT Name = W.Name FROM Employee W OID FUNCTION OF W \
             WHERE W.Salary > 35000",
        )
        .unwrap();
        let cls = s.db().oids().find_sym("HighPaid").unwrap();
        assert_eq!(s.db().instances_of(cls).len(), 2);
        // Alice drops below the bar; refresh removes her view object.
        s.run("UPDATE CLASS Employee SET emp1.Salary = 20000")
            .unwrap();
        let n = s.refresh_view("HighPaid").unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.db().instances_of(cls).len(), 1);
    }
}
