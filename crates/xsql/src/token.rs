//! Tokens of the XSQL surface syntax.

use std::fmt;

/// A lexical token with its source position (byte offset), used for
/// error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively by the lexer;
/// identifiers keep their spelling (OID case matters: `Person` and
/// `person` are different symbols).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword candidate (`Person`, `X`, `mary123`).
    Ident(String),
    /// Method-variable token `"Y` (§3.1: method variables are prefixed
    /// with a double-quote).
    MethodVar(String),
    /// Class-variable token `#X` (the paper's `§X`).
    ClassVar(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal `'newyork'`.
    Str(String),
    /// Positional parameter `?1` in a prepared statement body
    /// (1-based; `?0` is rejected by the lexer).
    Param(u32),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=>` (scalar arrow in signatures)
    Arrow,
    /// `=>>` or `==>` (set arrow in signatures)
    SetArrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::MethodVar(s) => write!(f, "`\"{s}`"),
            TokenKind::ClassVar(s) => write!(f, "`#{s}`"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Param(n) => write!(f, "`?{n}`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::At => f.write_str("`@`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Arrow => f.write_str("`=>`"),
            TokenKind::SetArrow => f.write_str("`=>>`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}
