//! Dumping a database as an XSQL script — textual persistence.
//!
//! [`dump_script`] renders schema and stored state as `CREATE CLASS` /
//! `ALTER CLASS … ADD SIGNATURE` / `CREATE OBJECT` / `UPDATE` statements
//! that [`crate::Session::run_script`] replays into an equivalent
//! database. The format is the language itself, so a dump is also a
//! readable snapshot.
//!
//! Scope: classes, IS-A edges, signatures, named individuals and their
//! stored state (scalar and set-valued, including k-ary method entries
//! via `UPDATE` of method expressions is *not* expressible in the
//! statement syntax — k-ary entries are emitted as comments). Computed
//! methods and view objects are definitional (queries); re-run their
//! defining statements instead of dumping their materialization.

use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid, OidData};
use std::fmt::Write;

/// Renders a value OID as an XSQL term; `None` for OIDs the statement
/// syntax cannot denote (id-terms of anonymous functions).
fn term(db: &Database, o: Oid) -> Option<String> {
    match db.oids().get(o) {
        OidData::Sym(s) => Some(s.to_string()),
        OidData::Int(v) => Some(v.to_string()),
        OidData::Real(b) => Some(format!("{:?}", f64::from_bits(*b))),
        OidData::Str(s) => Some(format!("'{}'", s.replace('\'', "''"))),
        OidData::Bool(v) => Some(v.to_string()),
        OidData::Nil => Some("nil".to_string()),
        OidData::Func(..) => None,
    }
}

/// Dumps schema and stored state as a replayable XSQL script.
pub fn dump_script(db: &Database) -> XsqlResult<String> {
    let mut out = String::new();
    let b = db.builtins();
    let builtin = [b.object, b.class, b.method, b.numeral, b.string, b.boolean];

    out.push_str("-- XSQL dump: schema\n");
    // Topological order over IS-A: `add_is_a` may link to classes
    // defined later, so definition order is not enough — every class
    // must appear after all its superclasses.
    let mut ordered: Vec<Oid> = Vec::new();
    {
        let mut pending: Vec<Oid> = db.classes().filter(|c| !builtin.contains(c)).collect();
        let mut placed: std::collections::BTreeSet<Oid> = builtin.iter().copied().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&c| {
                if db.direct_supers(c).iter().all(|s| placed.contains(s)) {
                    placed.insert(c);
                    ordered.push(c);
                    false
                } else {
                    true
                }
            });
            assert!(
                pending.len() < before,
                "IS-A is acyclic; progress is guaranteed"
            );
        }
    }
    for &c in &ordered {
        let name = db
            .oids()
            .sym_name(c)
            .ok_or_else(|| XsqlError::Resolve("class with non-symbolic oid".into()))?;
        let supers: Vec<&str> = db
            .direct_supers(c)
            .iter()
            .filter(|&&s| s != b.object)
            .filter_map(|&s| db.oids().sym_name(s))
            .collect();
        if supers.is_empty() {
            let _ = writeln!(out, "CREATE CLASS {name};");
        } else {
            let _ = writeln!(
                out,
                "CREATE CLASS {name} AS SUBCLASS OF {};",
                supers.join(", ")
            );
        }
    }
    for c in db.classes() {
        if builtin.contains(&c) {
            continue;
        }
        let cname = db.oids().sym_name(c).unwrap();
        for sig in db.direct_signatures(c) {
            let m = db.oids().sym_name(sig.method).unwrap_or("?");
            let arrow = if sig.set_valued { "=>>" } else { "=>" };
            let result = db.oids().sym_name(sig.result).unwrap_or("Object");
            if sig.args.is_empty() {
                let _ = writeln!(
                    out,
                    "ALTER CLASS {cname} ADD SIGNATURE {m} {arrow} {result};"
                );
            } else {
                let args: Vec<&str> = sig
                    .args
                    .iter()
                    .filter_map(|&a| db.oids().sym_name(a))
                    .collect();
                let _ = writeln!(
                    out,
                    "ALTER CLASS {cname} ADD SIGNATURE {m} : {} {arrow} {result};",
                    args.join(", ")
                );
            }
        }
    }

    out.push_str("\n-- XSQL dump: individuals\n");
    let mut dumped: Vec<Oid> = Vec::new();
    for o in db.individuals() {
        // Only named individuals with at least one named class are
        // statement-expressible; literals are recreated implicitly by
        // the state they appear in, id-term objects by re-running their
        // creating queries.
        let Some(name) = db.oids().sym_name(o) else {
            continue;
        };
        let classes: Vec<&str> = db
            .direct_classes(o)
            .iter()
            .filter_map(|&c| db.oids().sym_name(c))
            .collect();
        if classes.is_empty() {
            continue;
        }
        let _ = writeln!(out, "CREATE OBJECT {name} CLASS {};", classes.join(", "));
        dumped.push(o);
    }

    out.push_str("\n-- XSQL dump: state\n");
    for (recv, method, args, val) in db.state_entries() {
        let Some(rname) = term(db, recv) else {
            continue; // view objects: re-materialize from their query
        };
        // Skip state on class-objects' builtins and on undumped objects
        // unless the receiver is a class (defaults are dumpable).
        if !db.is_class(recv) && db.oids().sym_name(recv).is_none() {
            continue;
        }
        let mname = db
            .oids()
            .sym_name(method)
            .ok_or_else(|| XsqlError::Resolve("method with non-symbolic oid".into()))?;
        if !args.is_empty() {
            // k-ary stored entries have no statement form; preserved as
            // a comment so the dump stays lossless to a reader.
            let rendered: Vec<String> = args.iter().map(|&a| db.render(a)).collect();
            let _ = writeln!(
                out,
                "-- k-ary entry (restore via API): {rname}.({mname} @ {}) = {}",
                rendered.join(", "),
                match val {
                    oodb::Val::Scalar(v) => db.render(*v),
                    oodb::Val::Set(s) => format!(
                        "{{{}}}",
                        s.iter()
                            .map(|&v| db.render(v))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                }
            );
            continue;
        }
        let class_kw = if db.is_class(recv) { "Class" } else { "Object" };
        match val {
            oodb::Val::Scalar(v) => {
                if let Some(vt) = term(db, *v) {
                    let _ = writeln!(out, "UPDATE CLASS {class_kw} SET {rname}.{mname} = {vt};");
                }
            }
            oodb::Val::Set(s) => {
                let terms: Vec<String> = s.iter().filter_map(|&v| term(db, v)).collect();
                if terms.is_empty() {
                    continue;
                }
                // Build a union chain so the write is set-valued.
                let expr = terms.join(" union ");
                let _ = writeln!(out, "UPDATE CLASS {class_kw} SET {rname}.{mname} = {expr};");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use oodb::DbBuilder;

    #[test]
    fn dump_restores_equivalent_database() {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.subclass("Employee", &["Person"]);
        b.attr("Person", "Name", "String");
        b.attr("Person", "Age", "Numeral");
        b.set_attr("Person", "Friends", "Person");
        b.attr("Employee", "Salary", "Numeral");
        let ann = b.obj("ann", "Person");
        let bob = b.obj("bob", "Employee");
        b.set_str(ann, "Name", "Ann");
        b.set_int(ann, "Age", 31);
        b.set_str(bob, "Name", "Bob");
        b.set_int(bob, "Salary", 50000);
        b.set_many(ann, "Friends", &[bob]);
        let original = b.build();

        let script = dump_script(&original).unwrap();
        let mut restored = Session::new(oodb::Database::new());
        restored.run_script(&script).unwrap();

        // Same answers to a battery of queries.
        let mut orig_s = Session::new(original);
        for q in [
            "SELECT X FROM Person X",
            "SELECT X FROM Employee X WHERE X.Salary > 40000",
            "SELECT W FROM Person X WHERE ann.Friends.Name[W]",
            "SELECT X FROM Person X WHERE X.Age[31]",
        ] {
            let a = orig_s.query(q).unwrap();
            let b2 = restored.query(q).unwrap();
            // Compare rendered rows (OIDs differ between databases).
            let ra: Vec<String> = a
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&o| orig_s.db().render(o))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            let rb: Vec<String> = b2
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&o| restored.db().render(o))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            assert_eq!(ra, rb, "on {q}");
        }
        assert!(restored.db().check_conformance().is_empty());
    }

    #[test]
    fn figure1_dump_replays() {
        let original = datagen::figure1_db();
        let script = dump_script(&original).unwrap();
        let mut restored = Session::new(oodb::Database::new());
        restored.run_script(&script).unwrap();
        assert_eq!(
            restored
                .db()
                .instances_of(restored.db().oids().find_sym("Person").unwrap())
                .len(),
            original
                .instances_of(original.oids().find_sym("Person").unwrap())
                .len()
        );
        // Spot-check a deep path query gives the same answer.
        let mut orig_s = Session::new(original);
        let q = "SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]";
        assert_eq!(
            orig_s.query(q).unwrap().len(),
            restored.query(q).unwrap().len()
        );
    }
}
