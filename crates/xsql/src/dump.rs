//! Dumping a database as an XSQL script — textual persistence.
//!
//! [`dump_script`] renders schema and stored state as `CREATE CLASS` /
//! `ALTER CLASS … ADD SIGNATURE` / `CREATE OBJECT` / `UPDATE` statements
//! that [`crate::Session::run_script`] replays into an equivalent
//! database. The format is the language itself, so a dump is also a
//! readable snapshot.
//!
//! Scope: classes, IS-A edges, signatures, named individuals and their
//! stored state (scalar and set-valued). Entries the statement syntax
//! cannot express — k-ary method entries, values that are id-terms of
//! anonymous functions — are emitted behind an `-- UNRESTORABLE:`
//! prefix and counted in the returned tally, so a caller can tell a
//! lossless dump from a lossy one. (The binary snapshot codec in
//! `crates/storage` has no such gap: it persists every entry.)
//! Computed methods and view objects are definitional (queries); re-run
//! their defining statements instead of dumping their materialization.
//!
//! Output is **canonical**: individuals, class lists and state lines
//! are emitted in rendered order rather than OID-table order, so two
//! databases with the same content but different interning histories
//! (e.g. an original and its crash-recovered twin) dump identically.

use crate::error::{XsqlError, XsqlResult};
use oodb::{Database, Oid, OidData};
use std::fmt::Write;

/// Renders a value OID as an XSQL term; `None` for OIDs the statement
/// syntax cannot denote (id-terms of anonymous functions).
fn term(db: &Database, o: Oid) -> Option<String> {
    match db.oids().get(o) {
        OidData::Sym(s) => Some(s.to_string()),
        OidData::Int(v) => Some(v.to_string()),
        OidData::Real(b) => Some(format!("{:?}", f64::from_bits(*b))),
        OidData::Str(s) => Some(format!("'{}'", s.replace('\'', "''"))),
        OidData::Bool(v) => Some(v.to_string()),
        OidData::Nil => Some("nil".to_string()),
        OidData::Func(..) => None,
    }
}

/// Dumps schema and stored state as a replayable XSQL script. Returns
/// the script and the number of state entries it could not express as
/// statements (each is preserved as an `-- UNRESTORABLE:` comment so
/// the dump stays lossless to a reader, but replaying the script will
/// not recreate them).
pub fn dump_script(db: &Database) -> XsqlResult<(String, usize)> {
    let mut skipped = 0usize;
    let mut out = String::new();
    let b = db.builtins();
    let builtin = [b.object, b.class, b.method, b.numeral, b.string, b.boolean];

    out.push_str("-- XSQL dump: schema\n");
    // Topological order over IS-A: `add_is_a` may link to classes
    // defined later, so definition order is not enough — every class
    // must appear after all its superclasses.
    let mut ordered: Vec<Oid> = Vec::new();
    {
        let mut pending: Vec<Oid> = db.classes().filter(|c| !builtin.contains(c)).collect();
        let mut placed: std::collections::BTreeSet<Oid> = builtin.iter().copied().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&c| {
                if db.direct_supers(c).iter().all(|s| placed.contains(s)) {
                    placed.insert(c);
                    ordered.push(c);
                    false
                } else {
                    true
                }
            });
            assert!(
                pending.len() < before,
                "IS-A is acyclic; progress is guaranteed"
            );
        }
    }
    for &c in &ordered {
        let name = db
            .oids()
            .sym_name(c)
            .ok_or_else(|| XsqlError::Resolve("class with non-symbolic oid".into()))?;
        let supers: Vec<&str> = db
            .direct_supers(c)
            .iter()
            .filter(|&&s| s != b.object)
            .filter_map(|&s| db.oids().sym_name(s))
            .collect();
        if supers.is_empty() {
            let _ = writeln!(out, "CREATE CLASS {name};");
        } else {
            let _ = writeln!(
                out,
                "CREATE CLASS {name} AS SUBCLASS OF {};",
                supers.join(", ")
            );
        }
    }
    for c in db.classes() {
        if builtin.contains(&c) {
            continue;
        }
        let cname = db.oids().sym_name(c).unwrap();
        for sig in db.direct_signatures(c) {
            let m = db.oids().sym_name(sig.method).unwrap_or("?");
            let arrow = if sig.set_valued { "=>>" } else { "=>" };
            let result = db.oids().sym_name(sig.result).unwrap_or("Object");
            if sig.args.is_empty() {
                let _ = writeln!(
                    out,
                    "ALTER CLASS {cname} ADD SIGNATURE {m} {arrow} {result};"
                );
            } else {
                let args: Vec<&str> = sig
                    .args
                    .iter()
                    .filter_map(|&a| db.oids().sym_name(a))
                    .collect();
                let _ = writeln!(
                    out,
                    "ALTER CLASS {cname} ADD SIGNATURE {m} : {} {arrow} {result};",
                    args.join(", ")
                );
            }
        }
    }

    out.push_str("\n-- XSQL dump: individuals\n");
    let mut obj_lines: Vec<String> = Vec::new();
    for o in db.individuals() {
        // Only named individuals with at least one named class are
        // statement-expressible; literals are recreated implicitly by
        // the state they appear in, id-term objects by re-running their
        // creating queries.
        let Some(name) = db.oids().sym_name(o) else {
            continue;
        };
        let mut classes: Vec<&str> = db
            .direct_classes(o)
            .iter()
            .filter_map(|&c| db.oids().sym_name(c))
            .collect();
        if classes.is_empty() {
            continue;
        }
        classes.sort_unstable();
        obj_lines.push(format!(
            "CREATE OBJECT {name} CLASS {};\n",
            classes.join(", ")
        ));
    }
    obj_lines.sort_unstable();
    for l in &obj_lines {
        out.push_str(l);
    }

    out.push_str("\n-- XSQL dump: state\n");
    let mut state_lines: Vec<String> = Vec::new();
    for (recv, method, args, val) in db.state_entries() {
        let Some(rname) = term(db, recv) else {
            continue; // view objects: re-materialize from their query
        };
        // Skip state on class-objects' builtins and on undumped objects
        // unless the receiver is a class (defaults are dumpable).
        if !db.is_class(recv) && db.oids().sym_name(recv).is_none() {
            continue;
        }
        let mname = db
            .oids()
            .sym_name(method)
            .ok_or_else(|| XsqlError::Resolve("method with non-symbolic oid".into()))?;
        let render_val = |val: &oodb::Val| match val {
            oodb::Val::Scalar(v) => db.render(*v),
            oodb::Val::Set(s) => {
                let mut members: Vec<String> = s.iter().map(|&v| db.render(v)).collect();
                members.sort_unstable();
                format!("{{{}}}", members.join(", "))
            }
        };
        if !args.is_empty() {
            // k-ary stored entries have no statement form.
            skipped += 1;
            let rendered: Vec<String> = args.iter().map(|&a| db.render(a)).collect();
            state_lines.push(format!(
                "-- UNRESTORABLE: k-ary entry (restore via API): \
                 {rname}.({mname} @ {}) = {}\n",
                rendered.join(", "),
                render_val(val)
            ));
            continue;
        }
        let class_kw = if db.is_class(recv) { "Class" } else { "Object" };
        match val {
            oodb::Val::Scalar(v) => {
                if let Some(vt) = term(db, *v) {
                    state_lines.push(format!(
                        "UPDATE CLASS {class_kw} SET {rname}.{mname} = {vt};\n"
                    ));
                } else {
                    // The value is an id-term of an anonymous function;
                    // no statement can denote it.
                    skipped += 1;
                    state_lines.push(format!(
                        "-- UNRESTORABLE: {rname}.{mname} = {}\n",
                        db.render(*v)
                    ));
                }
            }
            oodb::Val::Set(s) => {
                let mut terms: Vec<String> = s.iter().filter_map(|&v| term(db, v)).collect();
                terms.sort_unstable();
                if terms.len() < s.len() {
                    // Some members are id-terms; the UPDATE below (if
                    // any) restores only the denotable ones.
                    skipped += 1;
                    state_lines.push(format!(
                        "-- UNRESTORABLE: {rname}.{mname} ⊇ {}\n",
                        render_val(val)
                    ));
                }
                if !terms.is_empty() {
                    // Build a union chain so the write is set-valued.
                    let expr = terms.join(" union ");
                    state_lines.push(format!(
                        "UPDATE CLASS {class_kw} SET {rname}.{mname} = {expr};\n"
                    ));
                }
            }
        }
    }
    state_lines.sort_unstable();
    for l in &state_lines {
        out.push_str(l);
    }
    Ok((out, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use oodb::DbBuilder;

    #[test]
    fn dump_restores_equivalent_database() {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.subclass("Employee", &["Person"]);
        b.attr("Person", "Name", "String");
        b.attr("Person", "Age", "Numeral");
        b.set_attr("Person", "Friends", "Person");
        b.attr("Employee", "Salary", "Numeral");
        let ann = b.obj("ann", "Person");
        let bob = b.obj("bob", "Employee");
        b.set_str(ann, "Name", "Ann");
        b.set_int(ann, "Age", 31);
        b.set_str(bob, "Name", "Bob");
        b.set_int(bob, "Salary", 50000);
        b.set_many(ann, "Friends", &[bob]);
        let original = b.build();

        let (script, skipped) = dump_script(&original).unwrap();
        assert_eq!(skipped, 0, "everything here is statement-expressible");
        let mut restored = Session::new(oodb::Database::new());
        restored.run_script(&script).unwrap();

        // Same answers to a battery of queries.
        let mut orig_s = Session::new(original);
        for q in [
            "SELECT X FROM Person X",
            "SELECT X FROM Employee X WHERE X.Salary > 40000",
            "SELECT W FROM Person X WHERE ann.Friends.Name[W]",
            "SELECT X FROM Person X WHERE X.Age[31]",
        ] {
            let a = orig_s.query(q).unwrap();
            let b2 = restored.query(q).unwrap();
            // Compare rendered rows (OIDs differ between databases).
            let ra: Vec<String> = a
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&o| orig_s.db().render(o))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            let rb: Vec<String> = b2
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&o| restored.db().render(o))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            assert_eq!(ra, rb, "on {q}");
        }
        assert!(restored.db().check_conformance().is_empty());
    }

    #[test]
    fn figure1_dump_replays() {
        let original = datagen::figure1_db();
        let (script, _) = dump_script(&original).unwrap();
        let mut restored = Session::new(oodb::Database::new());
        restored.run_script(&script).unwrap();
        assert_eq!(
            restored
                .db()
                .instances_of(restored.db().oids().find_sym("Person").unwrap())
                .len(),
            original
                .instances_of(original.oids().find_sym("Person").unwrap())
                .len()
        );
        // Spot-check a deep path query gives the same answer.
        let mut orig_s = Session::new(original);
        let q = "SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]";
        assert_eq!(
            orig_s.query(q).unwrap().len(),
            restored.query(q).unwrap().len()
        );
    }
}
