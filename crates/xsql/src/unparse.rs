//! Rendering resolved or surface ASTs back to XSQL source text.
//!
//! Used for diagnostics (view definitions, typing reports) and for the
//! parser round-trip property tests: `parse(unparse(q)) == q` modulo
//! constant interning.

use crate::ast::*;
use std::fmt::Write;

/// Renders a statement to XSQL source.
pub fn unparse_stmt(s: &Stmt) -> String {
    let mut out = String::new();
    stmt(s, &mut out);
    out
}

/// Renders a SELECT query to XSQL source.
pub fn unparse_query(q: &SelectQuery) -> String {
    let mut out = String::new();
    query(q, &mut out);
    out
}

fn stmt(s: &Stmt, out: &mut String) {
    match s {
        Stmt::Select(q) => query(q, out),
        Stmt::RelOp { left, op, right } => {
            stmt(left, out);
            out.push_str(match op {
                RelOp::Union => " UNION ",
                RelOp::Minus => " MINUS ",
                RelOp::Intersect => " INTERSECT ",
            });
            stmt(right, out);
        }
        Stmt::CreateView(v) => {
            let _ = write!(
                out,
                "CREATE VIEW {} AS SUBCLASS OF {}",
                v.name, v.superclass
            );
            if !v.signature.is_empty() {
                out.push_str(" SIGNATURE ");
                for (i, d) in v.signature.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    sig_decl(d, out);
                }
            }
            out.push(' ');
            query(&v.query, out);
        }
        Stmt::AlterClass(a) => {
            let _ = write!(out, "ALTER CLASS {} ADD SIGNATURE ", a.class);
            sig_decl(&a.signature, out);
            out.push(' ');
            query(&a.query, out);
        }
        Stmt::AddSignature { class, signature } => {
            let _ = write!(out, "ALTER CLASS {class} ADD SIGNATURE ");
            sig_decl(signature, out);
        }
        Stmt::Update(u) => update(u, out),
        Stmt::CreateClass(c) => {
            let _ = write!(out, "CREATE CLASS {}", c.name);
            if !c.supers.is_empty() {
                let _ = write!(out, " AS SUBCLASS OF {}", c.supers.join(", "));
            }
        }
        Stmt::CreateObject(o) => {
            let _ = write!(
                out,
                "CREATE OBJECT {} CLASS {}",
                o.name,
                o.classes.join(", ")
            );
            if !o.sets.is_empty() {
                out.push_str(" SET ");
                for (i, (a, v)) in o.sets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{a} = ");
                    operand(v, out);
                }
            }
        }
        Stmt::Explain {
            analyze,
            stmt: inner,
        } => {
            out.push_str(if *analyze {
                "EXPLAIN ANALYZE "
            } else {
                "EXPLAIN "
            });
            stmt(inner, out);
        }
        Stmt::Stats => out.push_str("STATS"),
        Stmt::Begin => out.push_str("BEGIN WORK"),
        Stmt::Commit => out.push_str("COMMIT WORK"),
        Stmt::Rollback => out.push_str("ROLLBACK WORK"),
        Stmt::WalOn => out.push_str("WAL ON"),
        Stmt::WalOff => out.push_str("WAL OFF"),
        Stmt::Checkpoint => out.push_str("CHECKPOINT"),
        Stmt::Prepare { name, stmt: inner } => {
            let _ = write!(out, "PREPARE {name} AS ");
            stmt(inner, out);
        }
        Stmt::Execute { name, args } => {
            let _ = write!(out, "EXECUTE {name}");
            if !args.is_empty() {
                out.push_str(" (");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    idterm(a, out);
                }
                out.push(')');
            }
        }
    }
}

fn sig_decl(d: &SigDecl, out: &mut String) {
    out.push_str(&d.method);
    if !d.args.is_empty() {
        out.push_str(" : ");
        out.push_str(&d.args.join(", "));
    }
    out.push_str(if d.set_valued { " =>> " } else { " => " });
    out.push_str(&d.result);
}

fn update(u: &UpdateStmt, out: &mut String) {
    let _ = write!(out, "UPDATE CLASS {} SET ", u.class);
    for (i, a) in u.assignments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        path(&a.target, out);
        out.push_str(" = ");
        operand(&a.value, out);
    }
}

fn query(q: &SelectQuery, out: &mut String) {
    out.push_str("SELECT ");
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Expr(op) => operand(op, out),
            SelectItem::Named { attr, value } => {
                let _ = write!(out, "{attr} = ");
                match value {
                    SelectValue::Expr(op) => operand(op, out),
                    SelectValue::Grouped(v) => {
                        let _ = write!(out, "{{{}}}", v.name);
                    }
                }
            }
            SelectItem::MethodResult {
                method,
                args,
                value,
            } => {
                let _ = write!(out, "({method} @ ");
                for (j, a) in args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    idterm(a, out);
                }
                out.push_str(") = ");
                operand(value, out);
            }
        }
    }
    if !q.from.is_empty() {
        out.push_str(" FROM ");
        for (i, f) in q.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            idterm(&f.class, out);
            out.push(' ');
            var_bare(&f.var, out);
        }
    }
    if let Some(spec) = &q.oid_fn {
        out.push_str(" OID FUNCTION OF ");
        for (i, v) in spec.vars.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            var_bare(v, out);
        }
    }
    if q.where_clause != Cond::True {
        out.push_str(" WHERE ");
        cond(&q.where_clause, out, false);
    }
}

/// Variables in binder positions are written bare (the parser assigns
/// the sort from the binder's own syntax).
fn var_bare(v: &Var, out: &mut String) {
    match v.sort {
        VarSort::Individual => out.push_str(&v.name),
        VarSort::Method => {
            let _ = write!(out, "\"{}", v.name);
        }
        VarSort::Class => {
            let _ = write!(out, "#{}", v.name);
        }
    }
}

fn cond(c: &Cond, out: &mut String, parenthesize: bool) {
    match c {
        Cond::True => out.push_str("true = true"),
        Cond::Path(p) => path(p, out),
        Cond::Cmp {
            left,
            lq,
            op,
            rq,
            right,
        } => {
            operand(left, out);
            out.push(' ');
            if let Some(q) = lq {
                out.push_str(quant(q));
            }
            out.push_str(match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            });
            if let Some(q) = rq {
                out.push_str(quant(q));
            }
            out.push(' ');
            operand(right, out);
        }
        Cond::SetCmp { left, op, right } => {
            operand(left, out);
            out.push_str(match op {
                SetCmpOp::Contains => " contains ",
                SetCmpOp::ContainsEq => " containsEq ",
                SetCmpOp::Subset => " subset ",
                SetCmpOp::SubsetEq => " subsetEq ",
            });
            operand(right, out);
        }
        Cond::SubclassOf { sub, sup } => {
            idterm(sub, out);
            out.push_str(" subclassOf ");
            idterm(sup, out);
        }
        Cond::InstanceOf { obj, class } => {
            idterm(obj, out);
            out.push_str(" instanceOf ");
            idterm(class, out);
        }
        Cond::And(a, b) => {
            if parenthesize {
                out.push('(');
            }
            cond(a, out, true);
            out.push_str(" and ");
            cond(b, out, true);
            if parenthesize {
                out.push(')');
            }
        }
        Cond::Or(a, b) => {
            out.push('(');
            cond(a, out, true);
            out.push_str(" or ");
            cond(b, out, true);
            out.push(')');
        }
        Cond::Not(a) => {
            out.push_str("not (");
            cond(a, out, false);
            out.push(')');
        }
        Cond::Update(u) => {
            out.push('(');
            update(u, out);
            out.push(')');
        }
    }
}

fn quant(q: &Quant) -> &'static str {
    match q {
        Quant::Some => "some",
        Quant::All => "all",
    }
}

fn operand(op: &Operand, out: &mut String) {
    match op {
        Operand::Path(p) => path(p, out),
        Operand::Agg(f, p) => {
            out.push_str(match f {
                AggFunc::Count => "count(",
                AggFunc::Sum => "sum(",
                AggFunc::Avg => "avg(",
                AggFunc::Min => "min(",
                AggFunc::Max => "max(",
            });
            path(p, out);
            out.push(')');
        }
        Operand::SetLit(ts) => {
            out.push('{');
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                idterm(t, out);
            }
            out.push('}');
        }
        Operand::Subquery(q) => {
            out.push('(');
            query(q, out);
            out.push(')');
        }
        Operand::Arith(a, f, b) => {
            out.push('(');
            operand(a, out);
            out.push_str(match f {
                ArithOp::Add => " + ",
                ArithOp::Sub => " - ",
                ArithOp::Mul => " * ",
                ArithOp::Div => " / ",
            });
            operand(b, out);
            out.push(')');
        }
        Operand::Union(a, b) => {
            out.push('(');
            operand(a, out);
            out.push_str(" union ");
            operand(b, out);
            out.push(')');
        }
        Operand::Intersection(a, b) => {
            out.push('(');
            operand(a, out);
            out.push_str(" intersect ");
            operand(b, out);
            out.push(')');
        }
        Operand::Difference(a, b) => {
            out.push('(');
            operand(a, out);
            out.push_str(" except ");
            operand(b, out);
            out.push(')');
        }
    }
}

fn path(p: &PathExpr, out: &mut String) {
    idterm(&p.head, out);
    for s in &p.steps {
        out.push('.');
        match s {
            Step::Method {
                method,
                args,
                selector,
            } => {
                if args.is_empty() {
                    match method {
                        MethodTerm::Name(n) => out.push_str(n),
                        MethodTerm::Var(v) => {
                            let _ = write!(out, "\"{v}");
                        }
                    }
                } else {
                    out.push('(');
                    match method {
                        MethodTerm::Name(n) => out.push_str(n),
                        MethodTerm::Var(v) => {
                            let _ = write!(out, "\"{v}");
                        }
                    }
                    out.push_str(" @ ");
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        idterm(a, out);
                    }
                    out.push(')');
                }
                if let Some(t) = selector {
                    out.push('[');
                    idterm(t, out);
                    out.push(']');
                }
            }
            Step::PathVar { name, selector } => {
                let _ = write!(out, "*{name}");
                if let Some(t) = selector {
                    out.push('[');
                    idterm(t, out);
                    out.push(']');
                }
            }
        }
    }
}

fn idterm(t: &IdTerm, out: &mut String) {
    match t {
        IdTerm::Oid(o) => {
            // Resolved constants render positionally; we cannot recover
            // the database here, so emit a placeholder the round-trip
            // tests never hit (they unparse surface ASTs).
            let _ = write!(out, "__oid{}", o.index());
        }
        IdTerm::Sym(s) => out.push_str(s),
        IdTerm::Int(v) => {
            let _ = write!(out, "{v}");
        }
        IdTerm::Real(v) => {
            let _ = write!(out, "{v:?}");
        }
        IdTerm::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        IdTerm::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        IdTerm::Nil => out.push_str("nil"),
        IdTerm::Param(n) => {
            let _ = write!(out, "?{n}");
        }
        IdTerm::Var(v) => var_bare(v, out),
        IdTerm::Func(f, args) => {
            out.push_str(f);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                idterm(a, out);
            }
            out.push(')');
        }
        IdTerm::PathArg(p) => path(p, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Round-trips a statement: parse → unparse → parse again; the two
    /// parses must agree.
    fn roundtrip(src: &str) {
        let a = parse(src).unwrap();
        let rendered = unparse_stmt(&a);
        let b = parse(&rendered).unwrap_or_else(|e| panic!("re-parse of `{rendered}` failed: {e}"));
        assert_eq!(a, b, "round-trip changed `{src}` → `{rendered}`");
    }

    #[test]
    fn roundtrips_paper_statements() {
        for src in [
            "SELECT X WHERE X.WonNobelPrize",
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
            "SELECT #X WHERE TurboEngine subclassOf #X",
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
            "SELECT X FROM Person X WHERE X.Residence =all X.FamMembers.Residence",
            "SELECT X, Y FROM Person X, Person Y WHERE Y.FamMembers.Age all<all X.FamMembers.Age",
            "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] \
             and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} \
             and X.President.Age < 30",
            "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 and X.Salary < 35000",
            "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X, W \
             WHERE X.Divisions.Employees[W]",
            "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y OID FUNCTION OF Y \
             WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]",
            "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
             SIGNATURE CompName => String, Salary => Numeral \
             SELECT CompName = X.Name, Salary = W.Salary FROM Company X \
             OID FUNCTION OF X, W WHERE X.Divisions[Y].Employees[W]",
            "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral \
             SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X \
             WHERE X.Divisions[Y].Manager.Salary[W]",
            "UPDATE CLASS Employee SET kim1.Salary = 31000",
            "SELECT X FROM Person X UNION SELECT Y FROM Company Y",
            "SELECT X FROM Vehicle X WHERE 200000 <all (SELECT W FROM Division Y \
             WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])",
            "SELECT X FROM Person X WHERE X.*P.City['austin']",
            "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']",
            "SELECT X FROM Person X WHERE not X.FamMembers",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_prepared_statements() {
        for src in [
            "PREPARE q1 AS SELECT X FROM Employee X WHERE X.Salary > ?1",
            "PREPARE pair AS SELECT X, Y FROM Employee X, Employee Y \
             WHERE X.Salary > ?1 AND X.Age < ?2",
            "PREPARE ddl AS CREATE CLASS Widget",
            "EXECUTE q1 (35000)",
            "EXECUTE pair (35000, 40)",
            "EXECUTE noargs",
            "EXECUTE strs ('newyork', mary123)",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn oid_function_abbreviation_normalizes() {
        // `OID X` unparses as `OID FUNCTION OF X` — same AST.
        let a = parse("SELECT (M @) = nil FROM Company X OID X").unwrap();
        let b = parse(&unparse_stmt(&a)).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod ddl_tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrips_ddl_statements() {
        for src in [
            "CREATE CLASS Person",
            "CREATE CLASS Workstudy AS SUBCLASS OF Student, Employee",
            "CREATE OBJECT ann CLASS Person SET Name = 'Ann', Age = 31",
            "ALTER CLASS Person ADD SIGNATURE Friends =>> Person",
            "EXPLAIN SELECT X FROM Person X WHERE X.Age > 30",
        ] {
            let a = parse(src).unwrap();
            let rendered = unparse_stmt(&a);
            let b = parse(&rendered).unwrap_or_else(|e| panic!("re-parse of `{rendered}`: {e}"));
            assert_eq!(a, b, "round-trip changed `{src}` -> `{rendered}`");
        }
    }
}
