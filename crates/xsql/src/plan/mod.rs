//! Cost-based planning for pipelined SELECT queries.
//!
//! The pipelined engine of `crate::eval` schedules conjuncts greedily
//! and re-scans class extents with nested loops; on multi-variable
//! joins that is quadratic re-traversal per candidate pair (the
//! `employee_self_join` bench spent ~1.1 s on a 193k-row join that
//! way). This module recognizes the join-shaped fragment of XSQL —
//! queries whose FROM items are plain individual variables over classes
//! and whose flattened WHERE conjuncts each touch one variable (a
//! *filter*) or two (a *join edge*) — and, when the whole query fits,
//! takes over evaluation with set-oriented operators:
//!
//! * **Access paths** — each variable's candidate set starts from its
//!   class extent; equality and range filters over a stored attribute
//!   narrow it through the typed ordered index
//!   ([`oodb::Database::attr_index`]) when the index is complete for
//!   the attribute. Narrowed candidates are *always* re-verified with
//!   the evaluator's own [`holds`](crate::eval::Ctx::holds), so the
//!   index only needs to be a sound superset.
//! * **Join operators** — a hash join for equality edges and for the
//!   Odra-style fusion of set-valued selector paths (`X.Children[Y]`
//!   joins `Y` against the members of `X.Children` through one hash
//!   table instead of re-walking the path per pair), and a nested theta
//!   join over cached per-candidate columns for everything else (with a
//!   direct `f64` fast path when both columns are singleton numerals).
//! * **Cost model** — `cost.rs` estimates cardinalities from extent
//!   sizes and per-attribute distinct counts ([`oodb::AttrStats`]) and
//!   picks the join order greedily. The chosen plan renders into
//!   `EXPLAIN` / `EXPLAIN ANALYZE` (estimated vs. actual rows).
//!
//! Anything outside the fragment — class/method variables, ground
//! conjuncts, three-variable conjuncts, Theorem 6.1 ranges, nested or
//! correlated position, object-creating queries — falls back to the
//! unchanged pipelined engine. Results are bit-identical across
//! planner, pipelined and naive engines: candidates come from the same
//! extents, predicates are evaluated by the same `holds` / `compare` /
//! `path_value` code, and emission goes through the same `emit_rows`.
//! The differential suite crosses all engines on every paper query.

use crate::ast::*;
use crate::error::XsqlResult;
use crate::eval::bindings::Bindings;
use crate::eval::cond::{conjunct_vars, flatten_and};
use crate::eval::select::Prepared;
use crate::eval::value::Cell;
use crate::eval::{vars, Ctx};
use oodb::{Oid, ValueKey};
use std::collections::BTreeSet;
use std::ops::Bound;

mod cost;
pub(crate) mod exec;

/// One FROM variable of a planned query.
pub struct PlanVar<'q> {
    /// Variable name (borrowed from the query).
    pub name: &'q str,
    /// The class whose extent seeds the candidate set.
    pub class: Oid,
    /// Rendered class name (for EXPLAIN).
    pub class_name: String,
    /// Extent size (candidate count before filters).
    pub extent: usize,
    /// Estimated candidates after filters.
    pub est_rows: f64,
}

/// An index probe a filter can be narrowed through (always re-verified
/// by `holds` afterwards — the probe only needs to be a superset).
pub enum Probe {
    /// Equality against one typed key.
    Eq {
        /// The attribute (0-ary method) the index is over.
        method: Oid,
        /// The probe key.
        key: ValueKey,
    },
    /// An ordered range within one type family.
    Range {
        /// The attribute the index is over.
        method: Oid,
        /// Lower bound.
        lo: Bound<ValueKey>,
        /// Upper bound.
        hi: Bound<ValueKey>,
    },
}

/// A single-variable conjunct: evaluated per candidate via `holds`,
/// optionally narrowed through an index probe first.
pub struct PlanFilter<'q> {
    /// Index into [`Plan::vars`].
    pub var: usize,
    /// The conjunct (evaluated by the stock `holds`).
    pub cond: &'q Cond,
    /// Index narrowing, when recognized and sound.
    pub probe: Option<Probe>,
    /// Rendered form (for EXPLAIN).
    pub label: String,
}

/// How a two-variable conjunct joins its sides.
pub enum EdgeKind<'q> {
    /// A quantified comparison; `left` depends only on var `a`, `right`
    /// only on var `b`.
    Cmp {
        /// Left operand.
        left: &'q Operand,
        /// Left quantifier.
        lq: Option<Quant>,
        /// Comparator.
        op: CmpOp,
        /// Right quantifier.
        rq: Option<Quant>,
        /// Right operand.
        right: &'q Operand,
    },
    /// A set comparison with the same side split.
    SetCmp {
        /// Left operand.
        left: &'q Operand,
        /// Set comparator.
        op: SetCmpOp,
        /// Right operand.
        right: &'q Operand,
    },
    /// `A.Path[B]` — a set-valued path on `a` whose final selector is
    /// var `b`: satisfied iff some member of the (selector-stripped)
    /// path value is `oid_eq` to `b`'s binding. `path` is the stripped
    /// path, depending only on var `a`.
    SetLink {
        /// The selector-stripped path (head is var `a`).
        path: PathExpr,
    },
}

/// A two-variable conjunct (join edge).
pub struct PlanEdge<'q> {
    /// Var index owning the left / head side.
    pub a: usize,
    /// Var index owning the right / selector side.
    pub b: usize,
    /// Operational shape.
    pub kind: EdgeKind<'q>,
    /// Rendered form (for EXPLAIN).
    pub label: String,
}

impl PlanEdge<'_> {
    /// True when the edge admits a hash join: element-equality
    /// semantics with existential quantifiers on both sides.
    pub fn hashable(&self) -> bool {
        match &self.kind {
            EdgeKind::Cmp { lq, op, rq, .. } => {
                *op == CmpOp::Eq && *lq != Some(Quant::All) && *rq != Some(Quant::All)
            }
            EdgeKind::SetLink { .. } => true,
            EdgeKind::SetCmp { .. } => false,
        }
    }
}

/// How one step of the join order combines the next variable.
pub enum StepMethod {
    /// The driver variable: its filtered candidates seed the tuples.
    Scan,
    /// Hash join on the given edge index (others in
    /// [`PlanStep::edges`] are residual pair filters).
    Hash(usize),
    /// Nested theta join evaluating every edge per candidate pair.
    Theta,
    /// No connecting edge: cross product.
    Cross,
}

/// One step of the chosen join order.
pub struct PlanStep {
    /// Index into [`Plan::vars`].
    pub var: usize,
    /// Join method for this step.
    pub method: StepMethod,
    /// All edges between this variable and the already-joined set.
    pub edges: Vec<usize>,
    /// Estimated tuples after this step.
    pub est_rows: f64,
}

/// A fully-recognized, cost-ordered plan for one SELECT query.
pub struct Plan<'q> {
    /// FROM variables, in FROM order.
    pub vars: Vec<PlanVar<'q>>,
    /// Single-variable conjuncts, in conjunct order.
    pub filters: Vec<PlanFilter<'q>>,
    /// Two-variable conjuncts, in conjunct order.
    pub edges: Vec<PlanEdge<'q>>,
    /// Chosen join order (first step is the driver scan).
    pub steps: Vec<PlanStep>,
}

impl Plan<'_> {
    /// Renders the plan, one line per join step plus one per filter.
    /// `actuals`, when given (EXPLAIN ANALYZE), holds the measured
    /// tuple count after each step.
    pub fn render_lines(&self, actuals: Option<&[usize]>) -> Vec<String> {
        let mut out = Vec::new();
        for (si, step) in self.steps.iter().enumerate() {
            let v = &self.vars[step.var];
            let actual = actuals
                .and_then(|a| a.get(si))
                .map(|n| format!(", actual {n} rows"))
                .unwrap_or_default();
            let est = step.est_rows.round() as u64;
            match &step.method {
                StepMethod::Scan => out.push(format!(
                    "scan {}: {} extent, {} objects, est {est} rows{actual}",
                    v.name, v.class_name, v.extent
                )),
                StepMethod::Hash(e) => {
                    let mut labels = vec![self.edges[*e].label.clone()];
                    labels.extend(
                        step.edges
                            .iter()
                            .filter(|i| *i != e)
                            .map(|&i| self.edges[i].label.clone()),
                    );
                    out.push(format!(
                        "join {} (hash): {}, est {est} rows{actual}",
                        v.name,
                        labels.join(" and ")
                    ));
                }
                StepMethod::Theta => {
                    let labels: Vec<String> = step
                        .edges
                        .iter()
                        .map(|&i| self.edges[i].label.clone())
                        .collect();
                    out.push(format!(
                        "join {} (nested-theta): {}, est {est} rows{actual}",
                        v.name,
                        labels.join(" and ")
                    ));
                }
                StepMethod::Cross => out.push(format!(
                    "join {} (cross product): est {est} rows{actual}",
                    v.name
                )),
            }
            for f in self.filters.iter().filter(|f| f.var == step.var) {
                let via = match &f.probe {
                    Some(Probe::Eq { .. }) => " via attr-index eq",
                    Some(Probe::Range { .. }) => " via attr-index range",
                    None => "",
                };
                out.push(format!("filter {}: {}{via}", v.name, f.label));
            }
        }
        out
    }
}

/// Attempts to take over a top-level pipelined SELECT. Returns
/// `Ok(None)` when the planner declines (options, query shape, or
/// position outside the recognized fragment) — the caller falls back to
/// the stock pipelined engine.
pub(crate) fn solve_query_planned(
    ctx: &Ctx<'_>,
    q: &SelectQuery,
    prep: &Prepared,
    outer: &Bindings<'_>,
) -> XsqlResult<Option<BTreeSet<Vec<Cell>>>> {
    if !ctx.opts.use_planner || ctx.ranges.is_some() || !outer.is_empty() || ctx.depth != 0 {
        return Ok(None);
    }
    let Some(plan) = plan_query(ctx, q, prep) else {
        return Ok(None);
    };
    let profile = ctx.opts.profile.as_ref();
    if let Some(p) = profile {
        p.record_strategy("planner", ctx.opts.parallelism);
    }
    let mut rows = BTreeSet::new();
    let actuals = exec::execute(ctx, q, &plan, &mut rows)?;
    if let Some(p) = profile {
        p.record_plan(plan.render_lines(Some(&actuals)));
    }
    Ok(Some(rows))
}

/// Static plan lines for plain `EXPLAIN`: what the planner would do,
/// without executing. `None` when the planner would decline.
pub(crate) fn static_plan_lines(ctx: &Ctx<'_>, q: &SelectQuery) -> Option<Vec<String>> {
    if !ctx.opts.use_planner || ctx.ranges.is_some() {
        return None;
    }
    let prep = crate::eval::select::prepare(q);
    plan_query(ctx, q, &prep).map(|plan| plan.render_lines(None))
}

/// Recognizes the query and, if it fits the fragment entirely, builds
/// the cost-ordered plan. Pure analysis: no ticks, no evaluation.
pub(crate) fn plan_query<'q>(
    ctx: &Ctx<'_>,
    q: &'q SelectQuery,
    prep: &Prepared,
) -> Option<Plan<'q>> {
    if q.from.is_empty() || q.oid_fn.is_some() || !prep.select_only.is_empty() {
        return None;
    }
    let mut names: BTreeSet<&str> = BTreeSet::new();
    let mut plan_vars = Vec::with_capacity(q.from.len());
    for f in &q.from {
        if f.var.sort != VarSort::Individual {
            return None;
        }
        let IdTerm::Oid(class) = f.class else {
            return None;
        };
        if !ctx.db.is_class(class) || !names.insert(f.var.name.as_str()) {
            return None;
        }
        plan_vars.push(PlanVar {
            name: f.var.name.as_str(),
            class,
            class_name: ctx.db.render(class),
            extent: 0,
            est_rows: 0.0,
        });
    }
    for item in &q.select {
        let op = match item {
            SelectItem::Expr(op) => op,
            SelectItem::Named {
                value: SelectValue::Expr(op),
                ..
            } => op,
            _ => return None,
        };
        let mut sv = BTreeSet::new();
        vars::operand_vars(op, &mut sv);
        if !sv.iter().all(|v| names.contains(v)) {
            return None;
        }
    }
    let mut conjs = Vec::new();
    flatten_and(&q.where_clause, &mut conjs);
    if conjs.is_empty() {
        // Pure FROM products carry no predicates to plan around; the
        // pipelined engine handles them identically, and several
        // resource-budget goldens pin its tick accounting there.
        return None;
    }
    let mut outer_vars = BTreeSet::new();
    vars::query_vars(q, &mut outer_vars);
    let var_idx = |n: &str| plan_vars.iter().position(|v| v.name == n);
    let mut filters = Vec::new();
    let mut edges = Vec::new();
    for c in conjs {
        if matches!(c, Cond::Update(_)) {
            return None;
        }
        let cv = conjunct_vars(c, &outer_vars);
        if cv.is_empty() || !cv.iter().all(|v| names.contains(v)) {
            return None;
        }
        match cv.len() {
            1 => {
                let vi = var_idx(cv.first().unwrap())?;
                let probe = filter_probe(ctx, c, plan_vars[vi].name);
                filters.push(PlanFilter {
                    var: vi,
                    cond: c,
                    probe,
                    label: cond_label(ctx, c),
                });
            }
            2 => edges.push(recognize_edge(ctx, c, &outer_vars, &var_idx)?),
            _ => return None,
        }
    }
    let mut plan = Plan {
        vars: plan_vars,
        filters,
        edges,
        steps: Vec::new(),
    };
    cost::order(ctx, &mut plan);
    Some(plan)
}

/// The variables one comparison side depends on: its free variables
/// plus the correlated variables of any nested subquery.
fn side_vars<'q>(op: &'q Operand, outer_vars: &BTreeSet<&'q str>) -> BTreeSet<&'q str> {
    let mut out = BTreeSet::new();
    vars::operand_vars(op, &mut out);
    let mut subs = BTreeSet::new();
    vars::subquery_vars(op, &mut subs);
    for v in subs {
        if outer_vars.contains(v) {
            out.insert(v);
        }
    }
    out
}

fn recognize_edge<'q>(
    ctx: &Ctx<'_>,
    c: &'q Cond,
    outer_vars: &BTreeSet<&'q str>,
    var_idx: &dyn Fn(&str) -> Option<usize>,
) -> Option<PlanEdge<'q>> {
    match c {
        Cond::Cmp {
            left,
            lq,
            op,
            rq,
            right,
        } => {
            let lv = side_vars(left, outer_vars);
            let rv = side_vars(right, outer_vars);
            if lv.len() != 1 || rv.len() != 1 || lv == rv {
                return None;
            }
            Some(PlanEdge {
                a: var_idx(lv.first().unwrap())?,
                b: var_idx(rv.first().unwrap())?,
                kind: EdgeKind::Cmp {
                    left,
                    lq: *lq,
                    op: *op,
                    rq: *rq,
                    right,
                },
                label: format!(
                    "{} {} {}",
                    operand_label(ctx, left),
                    cmp_symbol(*op),
                    operand_label(ctx, right)
                ),
            })
        }
        Cond::SetCmp { left, op, right } => {
            let lv = side_vars(left, outer_vars);
            let rv = side_vars(right, outer_vars);
            if lv.len() != 1 || rv.len() != 1 || lv == rv {
                return None;
            }
            Some(PlanEdge {
                a: var_idx(lv.first().unwrap())?,
                b: var_idx(rv.first().unwrap())?,
                kind: EdgeKind::SetCmp {
                    left,
                    op: *op,
                    right,
                },
                label: format!(
                    "{} {} {}",
                    operand_label(ctx, left),
                    set_cmp_symbol(*op),
                    operand_label(ctx, right)
                ),
            })
        }
        Cond::Path(p) => {
            let IdTerm::Var(hv) = &p.head else {
                return None;
            };
            let Some(Step::Method {
                selector: Some(IdTerm::Var(sv)),
                ..
            }) = p.steps.last()
            else {
                return None;
            };
            if sv.sort != VarSort::Individual || sv.name == hv.name {
                return None;
            }
            let mut stripped = p.clone();
            if let Some(Step::Method { selector, .. }) = stripped.steps.last_mut() {
                *selector = None;
            }
            let mut spv = BTreeSet::new();
            vars::path_vars(&stripped, &mut spv);
            if spv.len() != 1 || !spv.contains(hv.name.as_str()) {
                return None;
            }
            let label = format!("{}[{}]", path_label(ctx, &stripped), sv.name);
            Some(PlanEdge {
                a: var_idx(&hv.name)?,
                b: var_idx(&sv.name)?,
                kind: EdgeKind::SetLink { path: stripped },
                label,
            })
        }
        _ => None,
    }
}

/// Recognizes an index-narrowable filter: `V.Attr op constant` (either
/// orientation) where `Attr` is a stored 0-ary attribute whose ordered
/// index is complete, the path-side quantifier is existential, and the
/// operator/constant pair maps onto a typed key probe. The probe is a
/// sound *superset* (k-ary entries and numeral collapsing make it
/// non-exact); execution re-verifies every survivor with `holds`.
fn filter_probe(ctx: &Ctx<'_>, c: &Cond, var: &str) -> Option<Probe> {
    if !ctx.opts.use_method_index {
        return None;
    }
    let Cond::Cmp {
        left,
        lq,
        op,
        rq,
        right,
    } = c
    else {
        return None;
    };
    let oriented = |path_op: &Operand, pq: Option<Quant>, cmp: CmpOp, konst: &Operand| {
        if pq == Some(Quant::All) {
            return None;
        }
        let Operand::Path(p) = path_op else {
            return None;
        };
        let IdTerm::Var(v) = &p.head else {
            return None;
        };
        if v.name != var {
            return None;
        }
        let [Step::Method {
            method: MethodTerm::Name(attr),
            args,
            selector: None,
        }] = p.steps.as_slice()
        else {
            return None;
        };
        if !args.is_empty() {
            return None;
        }
        let Operand::Path(k) = konst else {
            return None;
        };
        let (IdTerm::Oid(konst_oid), []) = (&k.head, k.steps.as_slice()) else {
            return None;
        };
        let m = ctx.db.oids().find_sym(attr)?;
        if !ctx.db.attr_index_complete(m) {
            return None;
        }
        probe_for(ctx, m, cmp, *konst_oid)
    };
    oriented(left, *lq, *op, right).or_else(|| oriented(right, *rq, flip(*op), left))
}

/// `a op b` ⟺ `b flip(op) a`.
pub(crate) fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Maps `attr op constant` onto a typed key probe. Equality probes one
/// key (`ValueKey::of` collapses numeral spellings exactly like
/// `elem_eq`); order probes scan one type family's contiguous run —
/// numeric constants a numeric range, string constants a lexicographic
/// range, mirroring `elem_lt`'s two comparable families.
pub(crate) fn probe_for(ctx: &Ctx<'_>, method: Oid, op: CmpOp, konst: Oid) -> Option<Probe> {
    use oodb::OidData;
    let oids = ctx.db.oids();
    if op == CmpOp::Eq {
        return Some(Probe::Eq {
            method,
            key: ValueKey::of(oids, konst),
        });
    }
    if op == CmpOp::Ne {
        return None;
    }
    let str_floor = || ValueKey::Str("".into());
    let bool_floor = || ValueKey::Bool(false);
    if let Some(n) = oids.as_number(konst) {
        let k = ValueKey::num(n);
        let (lo, hi) = match op {
            CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(k)),
            CmpOp::Le => (Bound::Unbounded, Bound::Included(k)),
            CmpOp::Gt => (Bound::Excluded(k), Bound::Excluded(str_floor())),
            CmpOp::Ge => (Bound::Included(k), Bound::Excluded(str_floor())),
            _ => unreachable!(),
        };
        return Some(Probe::Range { method, lo, hi });
    }
    if let OidData::Str(s) = oids.get(konst) {
        let k = ValueKey::Str(s.clone());
        let (lo, hi) = match op {
            CmpOp::Lt => (Bound::Included(str_floor()), Bound::Excluded(k)),
            CmpOp::Le => (Bound::Included(str_floor()), Bound::Included(k)),
            CmpOp::Gt => (Bound::Excluded(k), Bound::Excluded(bool_floor())),
            CmpOp::Ge => (Bound::Included(k), Bound::Excluded(bool_floor())),
            _ => unreachable!(),
        };
        return Some(Probe::Range { method, lo, hi });
    }
    None
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn set_cmp_symbol(op: SetCmpOp) -> &'static str {
    match op {
        SetCmpOp::Contains => "contains",
        SetCmpOp::ContainsEq => "containsEq",
        SetCmpOp::Subset => "subset",
        SetCmpOp::SubsetEq => "subsetEq",
    }
}

fn path_label(ctx: &Ctx<'_>, p: &PathExpr) -> String {
    let mut s = match &p.head {
        IdTerm::Var(v) => v.name.clone(),
        IdTerm::Oid(o) => ctx.db.render(*o),
        _ => "…".to_string(),
    };
    for step in &p.steps {
        match step {
            Step::Method {
                method, selector, ..
            } => {
                s.push('.');
                match method {
                    MethodTerm::Name(n) => s.push_str(n),
                    MethodTerm::Var(n) => {
                        s.push('"');
                        s.push_str(n);
                    }
                }
                if let Some(sel) = selector {
                    s.push('[');
                    match sel {
                        IdTerm::Var(v) => s.push_str(&v.name),
                        IdTerm::Oid(o) => s.push_str(&ctx.db.render(*o)),
                        _ => s.push('…'),
                    }
                    s.push(']');
                }
            }
            Step::PathVar { name, .. } => {
                s.push_str(".*");
                s.push_str(name);
            }
        }
    }
    s
}

fn operand_label(ctx: &Ctx<'_>, op: &Operand) -> String {
    match op {
        Operand::Path(p) => path_label(ctx, p),
        Operand::Agg(f, p) => {
            let name = match f {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            format!("{name}({})", path_label(ctx, p))
        }
        Operand::Subquery(_) => "(subquery)".to_string(),
        Operand::SetLit(_) => "{…}".to_string(),
        Operand::Arith(..) => "(arith)".to_string(),
        Operand::Union(..) | Operand::Intersection(..) | Operand::Difference(..) => {
            "(set-expr)".to_string()
        }
    }
}

fn cond_label(ctx: &Ctx<'_>, c: &Cond) -> String {
    match c {
        Cond::Cmp {
            left, op, right, ..
        } => format!(
            "{} {} {}",
            operand_label(ctx, left),
            cmp_symbol(*op),
            operand_label(ctx, right)
        ),
        Cond::SetCmp { left, op, right } => format!(
            "{} {} {}",
            operand_label(ctx, left),
            set_cmp_symbol(*op),
            operand_label(ctx, right)
        ),
        Cond::Path(p) => path_label(ctx, p),
        Cond::InstanceOf { .. } => "instanceOf".to_string(),
        Cond::SubclassOf { .. } => "subclassOf".to_string(),
        Cond::Not(_) => "not(…)".to_string(),
        Cond::Or(..) => "or(…)".to_string(),
        _ => "cond".to_string(),
    }
}
