//! Cardinality estimation and greedy join ordering.
//!
//! Estimates are deliberately coarse — their only job is to rank
//! alternatives, and soundness never depends on them (every access path
//! re-verifies with `holds`, every join edge is fully evaluated). The
//! inputs are the two statistics the database maintains for free:
//! per-class extent sizes and per-attribute index shape
//! ([`oodb::AttrStats`]: distinct keys and total postings).

use super::{Plan, PlanFilter, PlanStep, Probe, StepMethod};
use crate::eval::Ctx;

/// Selectivity of one filter on a variable with `extent` candidates.
fn selectivity(ctx: &Ctx<'_>, f: &PlanFilter<'_>, extent: usize) -> f64 {
    match &f.probe {
        // Equality through the index: the average bucket holds
        // postings/distinct receivers, so the filter keeps about that
        // fraction of the extent.
        Some(Probe::Eq { method, .. }) => match ctx.db.attr_stats(*method) {
            Some(s) if s.distinct_keys > 0 && extent > 0 => {
                ((s.postings as f64 / s.distinct_keys as f64) / extent as f64).min(1.0)
            }
            // Index exists but is empty: nothing can match the probe.
            _ => 0.0,
        },
        Some(Probe::Range { .. }) => 1.0 / 3.0,
        None => 1.0 / 2.0,
    }
}

/// Fills in extents and per-variable estimates, then chooses the join
/// order greedily: start from the smallest filtered extent, repeatedly
/// attach the connected variable with the cheapest predicted result
/// (hash joins are assumed to keep cardinality near the smaller input,
/// equality theta joins to keep ~1/10 of the product, other theta joins
/// ~1/3), falling back to a cross product only when nothing connects.
/// Fully deterministic: ties break toward the lower variable index.
pub(crate) fn order(ctx: &Ctx<'_>, plan: &mut Plan<'_>) {
    for (vi, v) in plan.vars.iter_mut().enumerate() {
        v.extent = ctx.db.instances_of(v.class).len();
        let mut est = v.extent as f64;
        for f in plan.filters.iter().filter(|f| f.var == vi) {
            est *= selectivity(ctx, f, v.extent);
        }
        v.est_rows = est;
    }

    let n = plan.vars.len();
    let mut joined = vec![false; n];
    let by_est = |a: &f64, b: &f64| a.partial_cmp(b).expect("estimates are finite");

    let driver = (0..n)
        .min_by(|&a, &b| by_est(&plan.vars[a].est_rows, &plan.vars[b].est_rows).then(a.cmp(&b)))
        .expect("plan has at least one FROM variable");
    joined[driver] = true;
    let mut cur = plan.vars[driver].est_rows;
    plan.steps.push(PlanStep {
        var: driver,
        method: StepMethod::Scan,
        edges: Vec::new(),
        est_rows: cur,
    });

    while joined.iter().any(|j| !j) {
        // For every not-yet-joined variable, the edges connecting it to
        // the joined set and the predicted cardinality of joining it.
        let mut best: Option<(f64, usize, Vec<usize>)> = None;
        for vi in (0..n).filter(|&vi| !joined[vi]) {
            let conn: Vec<usize> = plan
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| (e.a == vi && joined[e.b]) || (e.b == vi && joined[e.a]))
                .map(|(i, _)| i)
                .collect();
            if conn.is_empty() {
                continue;
            }
            let v_est = plan.vars[vi].est_rows;
            let est = if conn.iter().any(|&i| plan.edges[i].hashable()) {
                cur.min(v_est).max(1.0)
            } else if conn.iter().any(|&i| {
                matches!(
                    &plan.edges[i].kind,
                    super::EdgeKind::Cmp {
                        op: crate::ast::CmpOp::Eq,
                        ..
                    }
                )
            }) {
                cur * v_est / 10.0
            } else {
                cur * v_est / 3.0
            };
            if best
                .as_ref()
                .is_none_or(|(b, bv, _)| by_est(&est, b).then(vi.cmp(bv)).is_lt())
            {
                best = Some((est, vi, conn));
            }
        }
        let (est, vi, conn) = match best {
            Some(b) => b,
            None => {
                // Disconnected component: cross product with the
                // smallest remaining variable.
                let vi = (0..n)
                    .filter(|&vi| !joined[vi])
                    .min_by(|&a, &b| {
                        by_est(&plan.vars[a].est_rows, &plan.vars[b].est_rows).then(a.cmp(&b))
                    })
                    .expect("loop guard guarantees an unjoined variable");
                joined[vi] = true;
                cur *= plan.vars[vi].est_rows;
                plan.steps.push(PlanStep {
                    var: vi,
                    method: StepMethod::Cross,
                    edges: Vec::new(),
                    est_rows: cur,
                });
                continue;
            }
        };
        joined[vi] = true;
        cur = est;
        let method = match conn.iter().copied().find(|&i| plan.edges[i].hashable()) {
            Some(e) => StepMethod::Hash(e),
            None => StepMethod::Theta,
        };
        plan.steps.push(PlanStep {
            var: vi,
            method,
            edges: conn,
            est_rows: cur,
        });
    }
}
