//! Plan execution: filtered scans, hash joins, theta joins, emission.
//!
//! Everything semantic is delegated to the stock evaluator — candidates
//! come from the same extents ([`oodb::Database::instances_of`] filtered
//! by `sort_ok`, exactly like the pipelined `InstanceOf` generator),
//! filters run through [`Ctx::holds`], join edges through
//! [`Ctx::compare`] / [`Ctx::set_compare`] / `elem_eq` over cached
//! per-candidate columns, and rows through `emit_rows`. This module only
//! changes the *order* of that work (set-at-a-time with hash tables and
//! cached columns instead of candidate-at-a-time with re-scans), so
//! results are bit-identical to the other engines.
//!
//! Tick discipline mirrors the pipelined engine: one tick per candidate
//! examined, per hash probe hit, per theta pair, per emitted cell; one
//! tuple count per materialized join tuple and per fresh result row.
//! Work limits, tuple budgets, deadlines and cancellation therefore
//! fire on the same counters with the same error types.
//!
//! Intermediate tuples live in a flat, width-strided `Vec<u32>` of
//! candidate indices (no per-tuple allocation); a join step appends one
//! column. Two specializations carry the benchmark loads: a raw-`f64`
//! theta loop when every edge compares singleton numerals under
//! existential quantifiers (`employee_self_join`: 870×870 pairs), and
//! direct row construction plus bulk sorted-set building when every
//! SELECT item is a bare variable (193k-row emission).

use super::{EdgeKind, Plan, Probe, StepMethod};
use crate::ast::{CmpOp, IdTerm, Operand, Quant, SelectItem, SelectQuery, SelectValue, VarSort};
use crate::error::XsqlResult;
use crate::eval::bindings::Bindings;
use crate::eval::select::emit_rows;
use crate::eval::value::{Cell, Elem};
use crate::eval::Ctx;
use oodb::Oid;
use std::collections::{BTreeSet, HashMap};

/// One all-`f64` theta edge, ready for the tight loop: the two cached
/// columns, the comparator, whether the new variable is the left side,
/// and the already-joined side's tuple slot.
type FastEdge<'a> = (&'a [f64], &'a [f64], CmpOp, bool, usize);

/// Hash key with exactly the equivalence of `elem_eq`: numeral elements
/// (computed numbers and numeral objects alike) collapse onto their
/// numeric value, everything else is object identity. `-0.0` is
/// normalized onto `0.0`; NaN elements are skipped by both build and
/// probe sides (`elem_eq` with NaN is always false).
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
pub(crate) enum CanonKey {
    Num(u64),
    Obj(Oid),
}

impl CanonKey {
    pub(crate) fn of(ctx: &Ctx<'_>, e: Elem) -> Option<CanonKey> {
        let num = match e {
            Elem::Num(n) => Some(n),
            Elem::Obj(o) => ctx.db.oids().as_number(o),
        };
        match (num, e) {
            (Some(n), _) if n.is_nan() => None,
            (Some(n), _) => Some(CanonKey::Num((if n == 0.0 { 0.0 } else { n }).to_bits())),
            (None, Elem::Obj(o)) => Some(CanonKey::Obj(o)),
            (None, Elem::Num(_)) => unreachable!("Elem::Num always yields a number"),
        }
    }
}

/// The cached per-candidate element columns of one join edge. Indexed
/// by candidate position in the owning variable's candidate list.
struct EdgeColumns {
    a: Vec<Vec<Elem>>,
    b: Vec<Vec<Elem>>,
    /// `Some` when every element set on both sides is a singleton
    /// number and both quantifiers are existential: the edge can then
    /// be compared as raw `f64`s.
    fast: Option<(Vec<f64>, Vec<f64>)>,
}

pub(crate) fn f64_cmp(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Executes the plan: returns the per-step actual tuple counts, with
/// result rows inserted into `rows`.
pub(crate) fn execute(
    ctx: &Ctx<'_>,
    q: &SelectQuery,
    plan: &Plan<'_>,
    rows: &mut BTreeSet<Vec<Cell>>,
) -> XsqlResult<Vec<usize>> {
    // ---- access paths: filtered candidate list per variable --------
    let mut cands: Vec<Vec<Oid>> = Vec::with_capacity(plan.vars.len());
    for (vi, v) in plan.vars.iter().enumerate() {
        let base = ctx.db.instances_of(v.class);
        // Index narrowing: intersect with the receivers the probes
        // admit. A probe is a sound superset, so this only removes
        // candidates `holds` would reject anyway.
        let mut narrowed: Option<BTreeSet<Oid>> = None;
        for f in plan.filters.iter().filter(|f| f.var == vi) {
            let set = match &f.probe {
                Some(Probe::Eq { method, key }) => ctx.db.attr_receivers_eq(*method, key),
                Some(Probe::Range { method, lo, hi }) => ctx
                    .db
                    .attr_receivers_range(*method, (lo.clone(), hi.clone())),
                None => continue,
            };
            narrowed = Some(match narrowed {
                None => set,
                Some(prev) => prev.intersection(&set).copied().collect(),
            });
        }
        let mut kept = Vec::new();
        let mut bnd = Bindings::new();
        let mark = bnd.mark();
        'cand: for o in base {
            ctx.tick()?;
            if !ctx.sort_ok(VarSort::Individual, o) {
                continue;
            }
            if let Some(set) = &narrowed {
                if !set.contains(&o) {
                    continue;
                }
            }
            bnd.push(v.name, o);
            for f in plan.filters.iter().filter(|f| f.var == vi) {
                if !ctx.holds(f.cond, &bnd)? {
                    bnd.truncate(mark);
                    continue 'cand;
                }
            }
            bnd.truncate(mark);
            kept.push(o);
        }
        ctx.check_binding_set(kept.len())?;
        cands.push(kept);
    }

    // ---- join edge columns -----------------------------------------
    let mut columns: Vec<EdgeColumns> = Vec::with_capacity(plan.edges.len());
    for e in &plan.edges {
        let mut bnd = Bindings::new();
        let mark = bnd.mark();
        let mut side = |vi: usize, which_a: bool| -> XsqlResult<Vec<Vec<Elem>>> {
            let v = &plan.vars[vi];
            let mut col = Vec::with_capacity(cands[vi].len());
            for &o in &cands[vi] {
                ctx.tick()?;
                bnd.push(v.name, o);
                let elems = match &e.kind {
                    EdgeKind::Cmp { left, right, .. } | EdgeKind::SetCmp { left, right, .. } => {
                        ctx.operand_value(if which_a { left } else { right }, &bnd)?
                    }
                    EdgeKind::SetLink { path } => {
                        if which_a {
                            ctx.path_value(path, &bnd)?
                                .into_iter()
                                .map(Elem::Obj)
                                .collect()
                        } else {
                            vec![Elem::Obj(o)]
                        }
                    }
                };
                bnd.truncate(mark);
                col.push(elems);
            }
            Ok(col)
        };
        let a = side(e.a, true)?;
        let b = side(e.b, false)?;
        let singletons = |col: &[Vec<Elem>]| -> Option<Vec<f64>> {
            col.iter()
                .map(|es| match es.as_slice() {
                    [Elem::Num(n)] => Some(*n),
                    [Elem::Obj(o)] => ctx.db.oids().as_number(*o),
                    _ => None,
                })
                .collect()
        };
        let fast = match &e.kind {
            EdgeKind::Cmp { lq, rq, .. } if *lq != Some(Quant::All) && *rq != Some(Quant::All) => {
                singletons(&a).zip(singletons(&b))
            }
            _ => None,
        };
        columns.push(EdgeColumns { a, b, fast });
    }

    // ---- join loop -------------------------------------------------
    // Flat width-strided tuple store: one `u32` candidate index per
    // joined variable; `slot[vi]` maps a variable to its stride offset.
    let mut slot: Vec<usize> = vec![usize::MAX; plan.vars.len()];
    let mut width = 0usize;
    let mut tuples: Vec<u32> = Vec::new();
    let mut ntuples = 0usize;
    let mut actuals = Vec::with_capacity(plan.steps.len());

    // True iff edge `ei` holds between candidate `ai` of its a-side
    // variable and candidate `bi` of its b-side variable.
    let edge_holds = |ei: usize, ai: usize, bi: usize| -> bool {
        let cols = &columns[ei];
        match &plan.edges[ei].kind {
            EdgeKind::Cmp { lq, op, rq, .. } => {
                if let Some((fa, fb)) = &cols.fast {
                    return f64_cmp(*op, fa[ai], fb[bi]);
                }
                ctx.compare(&cols.a[ai], *lq, *op, *rq, &cols.b[bi])
            }
            EdgeKind::SetCmp { op, .. } => ctx.set_compare(&cols.a[ai], *op, &cols.b[bi]),
            // `X.Path[B]`: some member of the path value is the
            // candidate — existential element equality.
            EdgeKind::SetLink { .. } => {
                ctx.compare(&cols.a[ai], None, CmpOp::Eq, None, &cols.b[bi])
            }
        }
    };
    // Resolves edge `ei` endpoints into (a-side, b-side) candidate
    // indices given the new variable `vi` at candidate `ci` and an
    // existing tuple.
    let pair = |ei: usize, vi: usize, ci: u32, t: &[u32], slot: &[usize]| -> (usize, usize) {
        let e = &plan.edges[ei];
        if e.a == vi {
            (ci as usize, t[slot[e.b]] as usize)
        } else {
            (t[slot[e.a]] as usize, ci as usize)
        }
    };

    for step in &plan.steps {
        let vi = step.var;
        let ncand = cands[vi].len() as u32;
        match &step.method {
            StepMethod::Scan => {
                tuples = (0..ncand).collect();
                width = 1;
                ntuples = tuples.len();
                ctx.count_tuples(ntuples)?;
            }
            StepMethod::Cross => {
                let mut next = Vec::new();
                for t in tuples.chunks_exact(width.max(1)) {
                    for ci in 0..ncand {
                        ctx.tick()?;
                        ctx.count_tuples(1)?;
                        next.extend_from_slice(t);
                        next.push(ci);
                    }
                }
                tuples = next;
                width += 1;
                ntuples = tuples.len() / width;
            }
            StepMethod::Hash(hei) => {
                // Build over the new variable's side of the hash edge.
                let e = &plan.edges[*hei];
                let new_is_a = e.a == vi;
                let build_col = if new_is_a {
                    &columns[*hei].a
                } else {
                    &columns[*hei].b
                };
                let probe_col = if new_is_a {
                    &columns[*hei].b
                } else {
                    &columns[*hei].a
                };
                let other_slot = slot[if new_is_a { e.b } else { e.a }];
                let mut table: HashMap<CanonKey, Vec<u32>> = HashMap::new();
                for (ci, elems) in build_col.iter().enumerate() {
                    ctx.tick()?;
                    for &el in elems {
                        if let Some(k) = CanonKey::of(ctx, el) {
                            let bucket = table.entry(k).or_default();
                            if bucket.last() != Some(&(ci as u32)) {
                                bucket.push(ci as u32);
                            }
                        }
                    }
                }
                let residual: Vec<usize> =
                    step.edges.iter().copied().filter(|ei| ei != hei).collect();
                let mut next = Vec::new();
                let mut count = 0usize;
                let mut matched: Vec<u32> = Vec::new();
                for t in tuples.chunks_exact(width) {
                    let probe_ci = t[other_slot] as usize;
                    matched.clear();
                    for &el in &probe_col[probe_ci] {
                        if let Some(k) = CanonKey::of(ctx, el) {
                            if let Some(bucket) = table.get(&k) {
                                matched.extend_from_slice(bucket);
                            }
                        }
                    }
                    matched.sort_unstable();
                    matched.dedup();
                    'new: for &ci in &matched {
                        ctx.tick()?;
                        for &ei in &residual {
                            let (ai, bi) = pair(ei, vi, ci, t, &slot);
                            if !edge_holds(ei, ai, bi) {
                                continue 'new;
                            }
                        }
                        ctx.count_tuples(1)?;
                        count += 1;
                        next.extend_from_slice(t);
                        next.push(ci);
                    }
                }
                tuples = next;
                width += 1;
                ntuples = count;
            }
            StepMethod::Theta => {
                // All-f64 edges: compare raw numbers in a tight loop
                // with the per-tuple side hoisted out.
                let fast: Option<Vec<FastEdge>> = step
                    .edges
                    .iter()
                    .map(|&ei| {
                        let e = &plan.edges[ei];
                        let (fa, fb) = columns[ei].fast.as_ref()?;
                        let EdgeKind::Cmp { op, .. } = &e.kind else {
                            return None;
                        };
                        let new_is_a = e.a == vi;
                        let other_slot = slot[if new_is_a { e.b } else { e.a }];
                        Some((fa.as_slice(), fb.as_slice(), *op, new_is_a, other_slot))
                    })
                    .collect();
                let mut next = Vec::new();
                let mut count = 0usize;
                if let Some(fast) = fast {
                    for t in tuples.chunks_exact(width) {
                        // (comparator, new-var column, other side's value)
                        let sides: Vec<(CmpOp, &[f64], f64, bool)> = fast
                            .iter()
                            .map(|&(fa, fb, op, new_is_a, os)| {
                                let other = t[os] as usize;
                                if new_is_a {
                                    (op, fa, fb[other], true)
                                } else {
                                    (op, fb, fa[other], false)
                                }
                            })
                            .collect();
                        'fcand: for ci in 0..ncand as usize {
                            ctx.tick()?;
                            for &(op, col, other, new_is_left) in &sides {
                                let ok = if new_is_left {
                                    f64_cmp(op, col[ci], other)
                                } else {
                                    f64_cmp(op, other, col[ci])
                                };
                                if !ok {
                                    continue 'fcand;
                                }
                            }
                            ctx.count_tuples(1)?;
                            count += 1;
                            next.extend_from_slice(t);
                            next.push(ci as u32);
                        }
                    }
                } else {
                    for t in tuples.chunks_exact(width) {
                        'cand: for ci in 0..ncand {
                            ctx.tick()?;
                            for &ei in &step.edges {
                                let (ai, bi) = pair(ei, vi, ci, t, &slot);
                                if !edge_holds(ei, ai, bi) {
                                    continue 'cand;
                                }
                            }
                            ctx.count_tuples(1)?;
                            count += 1;
                            next.extend_from_slice(t);
                            next.push(ci);
                        }
                    }
                }
                tuples = next;
                width += 1;
                ntuples = count;
            }
        }
        slot[vi] = width - 1;
        actuals.push(ntuples);
    }

    // ---- emission ---------------------------------------------------
    // Fast path: every SELECT item is a bare FROM variable (`SELECT X,
    // Y`), so each row is the tuple's candidates as cells — no binding
    // stack, no operand evaluation. Rows are built in bulk, sorted, and
    // loaded into the set in one pass (BTreeSet insertion per row is
    // most of the wall-clock on a 193k-row join).
    let atom_vars: Option<Vec<usize>> = q
        .select
        .iter()
        .map(|item| {
            let op = match item {
                SelectItem::Expr(op) => op,
                SelectItem::Named {
                    value: SelectValue::Expr(op),
                    ..
                } => op,
                _ => return None,
            };
            let Operand::Path(p) = op else {
                return None;
            };
            if !p.steps.is_empty() {
                return None;
            }
            let IdTerm::Var(v) = &p.head else {
                return None;
            };
            plan.vars.iter().position(|pv| pv.name == v.name)
        })
        .collect();
    if let Some(tpl) = atom_vars {
        let mut out: Vec<Vec<Cell>> = Vec::with_capacity(ntuples);
        for t in tuples.chunks_exact(width.max(1)) {
            if let Some(p) = &ctx.opts.profile {
                p.count_solution();
            }
            let mut row = Vec::with_capacity(tpl.len());
            for &vi in &tpl {
                ctx.tick()?;
                ctx.check_binding_set(1)?;
                row.push(Cell::Obj(cands[vi][t[slot[vi]] as usize]));
            }
            out.push(row);
        }
        // FromIterator on a BTreeSet sorts and bulk-builds — far
        // cheaper than per-row tree descents.
        *rows = out.into_iter().collect();
        ctx.count_tuples(rows.len())?;
        return Ok(actuals);
    }
    let mut bnd = Bindings::new();
    let mark = bnd.mark();
    for t in tuples.chunks_exact(width.max(1)) {
        for (vi, v) in plan.vars.iter().enumerate() {
            bnd.push(v.name, cands[vi][t[slot[vi]] as usize]);
        }
        if let Some(p) = &ctx.opts.profile {
            p.count_solution();
        }
        emit_rows(ctx, &q.select, &bnd, rows)?;
        bnd.truncate(mark);
    }
    Ok(actuals)
}
