//! Type assignments, validity, ranges and the liberal well-typing search
//! (§6.2).

use super::shape::{CmpShape, CmpSide, OccId, QueryShape, Slot};
use super::types::{declared_types, is_empty_range, is_subrange, Range, TypeExpr};
use crate::ast::CmpOp;
use oodb::{Database, Oid, OidData};
use std::collections::BTreeMap;

/// A complete type assignment: one type expression per method occurrence
/// (§6.2; distinct occurrences of the same method name may be assigned
/// different type expressions).
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// occurrence -> assigned type expression.
    pub types: BTreeMap<OccId, TypeExpr>,
}

impl Assignment {
    /// Renders for diagnostics.
    pub fn render(&self, db: &Database, shape: &QueryShape) -> String {
        let mut parts = Vec::new();
        for (occ, te) in &self.types {
            parts.push(format!(
                "A({}) = {}",
                shape.step(*occ).method_name,
                te.render(db)
            ));
        }
        parts.join(", ")
    }
}

/// The range `A(X)` of every variable with respect to the assignment
/// restricted to `occs` (§6.2: `Object`, plus the types assigned to the
/// variable's occurrences, plus the FROM types).
pub fn ranges_for(
    db: &Database,
    shape: &QueryShape,
    asg: &Assignment,
    occs: &[OccId],
) -> BTreeMap<String, Range> {
    let mut out: BTreeMap<String, Range> = BTreeMap::new();
    let object = db.builtins().object;
    let add = |key: Option<String>, class: Oid, out: &mut BTreeMap<String, Range>| {
        if let Some(k) = key {
            let r = out.entry(k).or_default();
            r.insert(object);
            r.insert(class);
        }
    };
    // Every variable of the shape gets at least {Object}.
    for p in &shape.paths {
        if let Some(k) = p.head.var_key() {
            out.entry(k).or_default().insert(object);
        }
        for s in &p.steps {
            for slot in s.args.iter().chain(std::iter::once(&s.selector)) {
                if let Some(k) = slot.var_key() {
                    out.entry(k).or_default().insert(object);
                }
            }
        }
    }
    for (v, c) in &shape.from {
        add(Some(v.clone()), *c, &mut out);
    }
    for occ in occs {
        let Some(te) = asg.types.get(occ) else {
            continue;
        };
        let step = shape.step(*occ);
        add(shape.receiver_slot(*occ).var_key(), te.receiver(), &mut out);
        for (j, slot) in step.args.iter().enumerate() {
            add(slot.var_key(), te.args[j + 1], &mut out);
        }
        add(step.selector.var_key(), te.result, &mut out);
    }
    out
}

/// Per-occurrence validity of the assigned type: g-selector and ground
/// argument oids must be instances of the types forced on them (§6.2's
/// second and third validity bullets).
fn occurrence_consts_valid(db: &Database, shape: &QueryShape, occ: OccId, te: &TypeExpr) -> bool {
    let step = shape.step(occ);
    if let Slot::Const(o) = shape.receiver_slot(occ) {
        if !db.is_instance_of(*o, te.receiver()) {
            return false;
        }
    }
    for (j, slot) in step.args.iter().enumerate() {
        if let Slot::Const(o) = slot {
            if !db.is_instance_of(*o, te.args[j + 1]) {
                return false;
            }
        }
    }
    if let Slot::Const(o) = &step.selector {
        if !db.is_instance_of(*o, te.result) {
            return false;
        }
    }
    true
}

/// §6.2's last validity bullet: every comparison must be well defined on
/// the compared values. Order comparators require both sides to be
/// (potentially) numerals, or both strings; equality is defined on all
/// objects.
fn comparisons_valid(db: &Database, cmps: &[CmpShape], ranges: &BTreeMap<String, Range>) -> bool {
    #[derive(PartialEq)]
    enum Kind {
        Num,
        Str,
        Other,
        Unknown,
    }
    let kind_of = |side: &CmpSide| -> Kind {
        match side {
            CmpSide::Numeral => Kind::Num,
            CmpSide::Opaque => Kind::Unknown,
            CmpSide::Const(o) => match db.oids().get(*o) {
                OidData::Int(_) | OidData::Real(_) => Kind::Num,
                OidData::Str(_) => Kind::Str,
                _ => Kind::Other,
            },
            CmpSide::Var(x) => match ranges.get(x) {
                Some(r) => {
                    if is_subrange(db, r, db.builtins().numeral) {
                        Kind::Num
                    } else if is_subrange(db, r, db.builtins().string) {
                        Kind::Str
                    } else {
                        Kind::Other
                    }
                }
                None => Kind::Unknown,
            },
        }
    };
    for c in cmps {
        if matches!(c.op, CmpOp::Eq | CmpOp::Ne) {
            continue;
        }
        let (l, r) = (kind_of(&c.left), kind_of(&c.right));
        let ok = matches!(
            (l, r),
            (Kind::Unknown, _)
                | (_, Kind::Unknown)
                | (Kind::Num, Kind::Num)
                | (Kind::Str, Kind::Str)
        );
        if !ok {
            return false;
        }
    }
    true
}

/// Enumerates every valid and complete type assignment with non-empty
/// ranges, invoking `k`; `k` returning `true` stops the search (found).
pub fn search_assignments(
    db: &Database,
    shape: &QueryShape,
    k: &mut dyn FnMut(&Assignment, &BTreeMap<String, Range>) -> bool,
) -> bool {
    let occs = shape.occurrences();
    // Candidate type expressions per occurrence: the declared signatures
    // of the method at this arity.
    let mut candidates: Vec<Vec<TypeExpr>> = Vec::with_capacity(occs.len());
    for occ in &occs {
        let step = shape.step(*occ);
        let cands: Vec<TypeExpr> = declared_types(db, step.method, step.args.len())
            .into_iter()
            .filter(|te| occurrence_consts_valid(db, shape, *occ, te))
            .collect();
        if cands.is_empty() {
            return false; // some occurrence has no valid type: ill-typed
        }
        candidates.push(cands);
    }
    let mut asg = Assignment::default();
    dfs(db, shape, &occs, &candidates, 0, &mut asg, k)
}

fn dfs(
    db: &Database,
    shape: &QueryShape,
    occs: &[OccId],
    candidates: &[Vec<TypeExpr>],
    i: usize,
    asg: &mut Assignment,
    k: &mut dyn FnMut(&Assignment, &BTreeMap<String, Range>) -> bool,
) -> bool {
    if i == occs.len() {
        let ranges = ranges_for(db, shape, asg, occs);
        if ranges.values().any(|r| is_empty_range(db, r)) {
            return false;
        }
        if !comparisons_valid(db, &shape.comparisons, &ranges) {
            return false;
        }
        return k(asg, &ranges);
    }
    for te in &candidates[i] {
        asg.types.insert(occs[i], te.clone());
        // Monotone prune: a range that is already empty can only stay
        // empty as more types are assigned.
        let partial = ranges_for(db, shape, asg, &occs[..=i]);
        let viable = !partial.values().any(|r| is_empty_range(db, r));
        if viable && dfs(db, shape, occs, candidates, i + 1, asg, k) {
            return true;
        }
        asg.types.remove(&occs[i]);
    }
    false
}

/// Liberal well-typing (§6.2): does *some* valid and complete assignment
/// with non-empty ranges exist?
pub fn liberal(db: &Database, shape: &QueryShape) -> Option<(Assignment, BTreeMap<String, Range>)> {
    let mut found = None;
    search_assignments(db, shape, &mut |asg, ranges| {
        found = Some((asg.clone(), ranges.clone()));
        true
    });
    found
}
