//! Execution plans, assignment restriction, coherence and strict
//! well-typing (§6.2), including well-typing *with exemptions*.

use super::assign::{ranges_for, search_assignments, Assignment};
use super::shape::{OccId, QueryShape, Slot};
use super::types::is_subrange;
use oodb::Database;
use std::collections::BTreeSet;

/// An execution plan: a total order on the path expressions of the
/// WHERE clause (the paper allows partial orders; the total orders are
/// exactly their linearizations, so searching them loses nothing).
pub type Plan = Vec<usize>;

/// Argument positions of method occurrences exempted from the coherence
/// test. "The liberal notion exempts all arguments while the
/// conservative exempts none" (§6.2); position 0 is the receiver (the
/// paper's 0th argument — the exemption used for the Nobel-Prize query).
#[derive(Debug, Clone, Default)]
pub struct Exemptions {
    all: bool,
    set: BTreeSet<(OccId, usize)>,
}

impl Exemptions {
    /// The conservative end: nothing exempted (strict well-typing).
    pub fn none() -> Exemptions {
        Exemptions::default()
    }

    /// The liberal end: everything exempted.
    pub fn all() -> Exemptions {
        Exemptions {
            all: true,
            set: BTreeSet::new(),
        }
    }

    /// Exempts one argument position (0 = receiver) of one occurrence.
    pub fn exempt(mut self, occ: OccId, arg: usize) -> Exemptions {
        self.set.insert((occ, arg));
        self
    }

    /// Is this position exempted?
    pub fn exempted(&self, occ: OccId, arg: usize) -> bool {
        self.all || self.set.contains(&(occ, arg))
    }
}

/// All plans (permutations of path indices). Query WHERE clauses have a
/// handful of paths; the factorial is tiny in practice and capped by the
/// caller's patience.
pub fn all_plans(n_paths: usize) -> Vec<Plan> {
    let mut out = Vec::new();
    let mut cur: Plan = Vec::new();
    let mut used = vec![false; n_paths];
    permute(n_paths, &mut cur, &mut used, &mut out);
    out
}

fn permute(n: usize, cur: &mut Plan, used: &mut [bool], out: &mut Vec<Plan>) {
    if cur.len() == n {
        out.push(cur.clone());
        return;
    }
    for i in 0..n {
        if !used[i] {
            used[i] = true;
            cur.push(i);
            permute(n, cur, used, out);
            cur.pop();
            used[i] = false;
        }
    }
}

/// The occurrences visible to the restriction `A'` of an assignment to
/// occurrence `at` under `plan` (§6.2): occurrences in path expressions
/// that precede `at`'s path in the plan, plus occurrences to the left of
/// `at` within its own path.
fn restriction_occs(shape: &QueryShape, plan: &Plan, at: OccId) -> Vec<OccId> {
    let pos = plan
        .iter()
        .position(|&p| p == at.path)
        .expect("plan covers all paths");
    let mut out = Vec::new();
    for &p in &plan[..pos] {
        for s in 0..shape.paths[p].steps.len() {
            out.push(OccId { path: p, step: s });
        }
    }
    for s in 0..at.step {
        out.push(OccId {
            path: at.path,
            step: s,
        });
    }
    out
}

/// Coherence of an assignment with a plan (§6.2's two conditions): for
/// every occurrence, each variable argument's restricted range must be a
/// subrange of the type the method expects of it, and likewise for the
/// receiver selector.
pub fn coherent(
    db: &Database,
    shape: &QueryShape,
    asg: &Assignment,
    plan: &Plan,
    ex: &Exemptions,
) -> bool {
    for occ in shape.occurrences() {
        let te = &asg.types[&occ];
        let visible = restriction_occs(shape, plan, occ);
        let restricted = ranges_for(db, shape, asg, &visible);
        // 2b: the receiver.
        if !ex.exempted(occ, 0) {
            if let Some(key) = shape.receiver_slot(occ).var_key() {
                let r = restricted.get(&key).expect("range for every variable");
                if !is_subrange(db, r, te.receiver()) {
                    return false;
                }
            }
        }
        // 2a: each argument.
        let step = shape.step(occ);
        for (j, slot) in step.args.iter().enumerate() {
            if ex.exempted(occ, j + 1) {
                continue;
            }
            if let Slot::Var(_) | Slot::Anon(_) = slot {
                let key = slot.var_key().unwrap();
                let r = restricted.get(&key).expect("range for every variable");
                if !is_subrange(db, r, te.args[j + 1]) {
                    return false;
                }
            }
        }
    }
    true
}

/// Strict well-typing (§6.2): a valid, complete assignment and a plan
/// coherent with it, with non-empty ranges. Returns the first coherent
/// pair — by Theorem 6.1 any coherent pair evaluates the query
/// identically, so one suffices.
pub fn strict(db: &Database, shape: &QueryShape, ex: &Exemptions) -> Option<(Assignment, Plan)> {
    let plans = all_plans(shape.paths.len());
    let mut found = None;
    search_assignments(db, shape, &mut |asg, _ranges| {
        for plan in &plans {
            if coherent(db, shape, asg, plan, ex) {
                found = Some((asg.clone(), plan.clone()));
                return true;
            }
        }
        false
    });
    found
}

/// All coherent plans of a given assignment — used to mechanize Theorem
/// 6.1.1 (plan invariance).
pub fn coherent_plans(
    db: &Database,
    shape: &QueryShape,
    asg: &Assignment,
    ex: &Exemptions,
) -> Vec<Plan> {
    all_plans(shape.paths.len())
        .into_iter()
        .filter(|p| coherent(db, shape, asg, p, ex))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemptions_membership() {
        let occ = OccId { path: 0, step: 1 };
        let other = OccId { path: 1, step: 0 };
        let ex = Exemptions::none().exempt(occ, 0).exempt(occ, 2);
        assert!(ex.exempted(occ, 0));
        assert!(ex.exempted(occ, 2));
        assert!(!ex.exempted(occ, 1));
        assert!(!ex.exempted(other, 0));
        assert!(Exemptions::all().exempted(other, 7));
    }

    #[test]
    fn plan_enumeration_is_exhaustive_and_distinct() {
        let plans = all_plans(3);
        assert_eq!(plans.len(), 6);
        let set: std::collections::BTreeSet<_> = plans.iter().collect();
        assert_eq!(set.len(), 6);
        for p in &plans {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }
}
