//! The typing system of §6: signatures and structural inheritance,
//! liberal and strict well-typing, execution plans, coherence,
//! well-typing with exemptions, and the Theorem 6.1 range optimization.
//!
//! The paper's central observation is that "there is more than one way
//! of settling the issue" of type correctness: a spectrum from the
//! *liberal* notion (any valid complete assignment with non-empty
//! ranges) to the *strict* notion (additionally, some execution plan is
//! coherent with the assignment — every method evaluates with its
//! arguments bound to oids of the expected types), with *exemptions*
//! interpolating between them. Typing is metalogical: it never changes
//! query semantics, only licenses the optimization of Theorem 6.1.

mod assign;
mod shape;
mod strict;
mod types;

pub use assign::{liberal, ranges_for, search_assignments, Assignment};
pub use shape::{extract, CmpShape, CmpSide, OccId, PathShape, QueryShape, Slot, StepShape};
pub use strict::{all_plans, coherent, coherent_plans, strict, Exemptions, Plan};
pub use types::{
    declared_types, is_empty_range, is_subrange, possesses, range_extent, Range, TypeExpr,
};

use crate::ast::SelectQuery;
use crate::error::XsqlResult;
use crate::eval::Ranges;
use oodb::Database;

/// The verdict of a typing analysis.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A valid complete assignment and a coherent plan exist.
    StrictlyWellTyped {
        /// The witnessing assignment.
        assignment: Assignment,
        /// The coherent plan (order of path-expression indices).
        plan: Plan,
    },
    /// Liberally but not strictly well-typed (the Nobel-Prize
    /// situation, §1/§6.2).
    LiberallyWellTyped {
        /// The witnessing assignment.
        assignment: Assignment,
    },
    /// No valid complete assignment with non-empty ranges exists; a
    /// (liberal) type analysis already shows the query returns no
    /// answers regardless of the database contents (§6.2).
    IllTyped,
    /// The query uses constructs outside the §6.2 fragment (method
    /// variables, disjunction, …); typing does not apply, evaluation
    /// proceeds untyped.
    OutsideFragment {
        /// Why.
        reason: String,
    },
}

/// Full typing analysis of a resolved query under the given exemptions.
pub fn analyze(db: &Database, q: &SelectQuery, ex: &Exemptions) -> Verdict {
    let shape = match extract(db, q) {
        Ok(s) => s,
        Err(e) => {
            return Verdict::OutsideFragment {
                reason: e.to_string(),
            }
        }
    };
    if let Some((assignment, plan)) = strict(db, &shape, ex) {
        return Verdict::StrictlyWellTyped { assignment, plan };
    }
    match liberal(db, &shape) {
        Some((assignment, _)) => Verdict::LiberallyWellTyped { assignment },
        None => Verdict::IllTyped,
    }
}

/// Theorem 6.1.2: the evaluation ranges of a strictly well-typed query —
/// each variable may be instantiated only with members of `A(X)`.
/// Returns `None` when the query is not strictly well-typed (the
/// optimization is "not always possible even with queries that are
/// liberally (but not strictly) well-typed").
pub fn theorem61_ranges(
    db: &Database,
    q: &SelectQuery,
    ex: &Exemptions,
) -> XsqlResult<Option<Ranges>> {
    let shape = match extract(db, q) {
        Ok(s) => s,
        Err(_) => return Ok(None),
    };
    let Some((assignment, _plan)) = strict(db, &shape, ex) else {
        return Ok(None);
    };
    Ok(Some(ranges_from_assignment(db, &shape, &assignment)))
}

/// Materializes the variable ranges of an assignment into oid sets for
/// the evaluator (anonymous normalization slots are dropped — they do
/// not correspond to query variables).
pub fn ranges_from_assignment(
    db: &Database,
    shape: &QueryShape,
    assignment: &Assignment,
) -> Ranges {
    let occs = shape.occurrences();
    let class_ranges = ranges_for(db, shape, assignment, &occs);
    let mut out = Ranges::new();
    for (var, classes) in class_ranges {
        if var.starts_with("_anon") {
            continue;
        }
        out.insert(var, range_extent(db, &classes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::eval::{eval_select, eval_select_ranged, EvalOptions};
    use crate::parser::parse;
    use crate::resolve::resolve_stmt;
    use oodb::DbBuilder;

    /// The §6.2 schema: Vehicle/Company/Person plus the Association/
    /// Organization extension of example (19).
    fn db62() -> Database {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.class("Organization");
        b.subclass("Company", &["Organization"]);
        b.class("Vehicle");
        b.class("Association");
        b.attr("Vehicle", "Manufacturer", "Company");
        b.attr("Company", "President", "Person");
        b.attr("Organization", "President", "Person");
        b.set_attr("Person", "OwnedVehicles", "Vehicle");
        b.method_sig("Association", "Member", &["Numeral"], "Organization", false);
        b.attr("Person", "Name", "String");

        let p = b.obj("pres1", "Person");
        let c = b.obj("comp1", "Company");
        let v = b.obj("veh1", "Vehicle");
        b.set(v, "Manufacturer", c);
        b.set(c, "President", p);
        b.set_many(p, "OwnedVehicles", &[v]);
        let forum = b.obj("OO_Forum", "Association");
        let yr = b.int(1992);
        b.set_method_value(forum, "Member", &[yr], oodb::Val::Scalar(c));
        b.build()
    }

    fn resolved_query(db: &mut Database, src: &str) -> crate::ast::SelectQuery {
        let stmt = parse(src).unwrap();
        match resolve_stmt(db, &stmt).unwrap() {
            Stmt::Select(q) => q,
            s => panic!("expected select, got {s:?}"),
        }
    }

    #[test]
    fn query_17_strictly_well_typed_with_plan_2_only() {
        let mut db = db62();
        // (17): FROM Vehicle X WHERE X.Manufacturer[M]
        //        and M.President.OwnedVehicles[X]
        let q = resolved_query(
            &mut db,
            "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] \
             and M.President.OwnedVehicles[X]",
        );
        let shape = extract(&db, &q).unwrap();
        assert_eq!(shape.paths.len(), 2);
        match analyze(&db, &q, &Exemptions::none()) {
            Verdict::StrictlyWellTyped { assignment, plan } => {
                // The only coherent plan runs the first path first
                // (binding M from the bound X) — the paper's "second
                // plan".
                assert_eq!(plan, vec![0, 1]);
                let others = coherent_plans(&db, &shape, &assignment, &Exemptions::none());
                assert_eq!(others, vec![vec![0, 1]]);
            }
            v => panic!("expected strict, got {v:?}"),
        }
    }

    #[test]
    fn assignment_18_not_coherent_with_reverse_plan() {
        // Mechanizes the paper's discussion: assignment (18) is not
        // coherent with the plan that evaluates the second path first,
        // because the restricted range of M is {Object}, not a subrange
        // of Company.
        let mut db = db62();
        let q = resolved_query(
            &mut db,
            "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] \
             and M.President.OwnedVehicles[X]",
        );
        let shape = extract(&db, &q).unwrap();
        let found = strict(&db, &shape, &Exemptions::none()).unwrap();
        assert!(!coherent(
            &db,
            &shape,
            &found.0,
            &vec![1, 0],
            &Exemptions::none()
        ));
    }

    #[test]
    fn query_19_single_coherent_plan() {
        let mut db = db62();
        // (19): three paths; the only coherent order is third, second,
        // first (Member binds M to an Organization, President then
        // applies, Manufacturer last).
        let q = resolved_query(
            &mut db,
            "SELECT X FROM Numeral Year WHERE X.Manufacturer[M] \
             and M.President.OwnedVehicles[X] \
             and OO_Forum.(Member @ Year)[M]",
        );
        let shape = extract(&db, &q).unwrap();
        assert_eq!(shape.paths.len(), 3);
        match analyze(&db, &q, &Exemptions::none()) {
            Verdict::StrictlyWellTyped { assignment, plan } => {
                assert_eq!(plan, vec![2, 1, 0], "paper: arcs third->second->first");
                let all = coherent_plans(&db, &shape, &assignment, &Exemptions::none());
                assert_eq!(all.len(), 1);
                // And the assignment matches (20): President typed at
                // Organization.
                let pres_occ = OccId { path: 1, step: 0 };
                let org = db.oids().find_sym("Organization").unwrap();
                assert_eq!(assignment.types[&pres_occ].receiver(), org);
            }
            v => panic!("expected strict, got {v:?}"),
        }
    }

    #[test]
    fn nobel_query_liberal_but_not_strict() {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.class("Organization");
        // WonNobelPrize defined for Person only; the head variable of
        // `X.WonNobelPrize` has restricted range {Object}.
        b.set_attr("Person", "WonNobelPrize", "String");
        b.obj("marie", "Person");
        let mut db = b.build();
        let q = resolved_query(&mut db, "SELECT X WHERE X.WonNobelPrize");
        match analyze(&db, &q, &Exemptions::none()) {
            Verdict::LiberallyWellTyped { .. } => {}
            v => panic!("expected liberal-only, got {v:?}"),
        }
        // Exempting the receiver (0th argument) of WonNobelPrize makes
        // it type-correct — exactly the paper's proposal.
        let ex = Exemptions::none().exempt(OccId { path: 0, step: 0 }, 0);
        match analyze(&db, &q, &ex) {
            Verdict::StrictlyWellTyped { .. } => {}
            v => panic!("expected strict under exemption, got {v:?}"),
        }
    }

    #[test]
    fn undeclared_method_is_ill_typed() {
        let mut db = db62();
        let q = resolved_query(&mut db, "SELECT X WHERE X.NoSuchAttribute");
        assert!(matches!(
            analyze(&db, &q, &Exemptions::none()),
            Verdict::IllTyped
        ));
    }

    #[test]
    fn empty_range_is_ill_typed() {
        // X is simultaneously a Vehicle and the receiver of President
        // (Organization): Person+... no common subclass of Vehicle and
        // Organization exists -> empty range -> ill-typed.
        let mut db = db62();
        let q = resolved_query(&mut db, "SELECT X FROM Vehicle X WHERE X.President");
        assert!(matches!(
            analyze(&db, &q, &Exemptions::none()),
            Verdict::IllTyped
        ));
    }

    #[test]
    fn outside_fragment_reported() {
        let mut db = db62();
        let q = resolved_query(&mut db, "SELECT Y FROM Person X WHERE X.\"Y.Name['bob']");
        assert!(matches!(
            analyze(&db, &q, &Exemptions::none()),
            Verdict::OutsideFragment { .. }
        ));
    }

    #[test]
    fn theorem61_ranges_preserve_results() {
        let mut db = db62();
        let q = resolved_query(
            &mut db,
            "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] \
             and M.President.OwnedVehicles[X]",
        );
        let opts = EvalOptions::default();
        let unrestricted = eval_select(&db, &q, &opts).unwrap();
        let ranges = theorem61_ranges(&db, &q, &Exemptions::none())
            .unwrap()
            .expect("strictly well-typed");
        let restricted = eval_select_ranged(&db, &q, &opts, &ranges).unwrap();
        assert_eq!(unrestricted, restricted);
        assert_eq!(restricted.len(), 1);
        // The range of M is restricted to companies.
        let m_range = &ranges["M"];
        let comp1 = db.oids().find_sym("comp1").unwrap();
        assert!(m_range.contains(&comp1));
        let pres1 = db.oids().find_sym("pres1").unwrap();
        assert!(!m_range.contains(&pres1));
    }
}
