//! Type expressions, the sub/supertype relation, possession, ranges and
//! the subrange test (§6.1–6.2).

use oodb::{Database, Oid};
use std::collections::BTreeSet;

/// A type expression `A0, A1,…,Ak ~> R` (paper (14)): the receiver class
/// `A0`, the argument classes, the result class and the arrow kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeExpr {
    /// `A0,…,Ak` — receiver class first (the paper's 0th argument).
    pub args: Vec<Oid>,
    /// Result class `R`.
    pub result: Oid,
    /// True for `==>`.
    pub set_valued: bool,
}

impl TypeExpr {
    /// Receiver class `A0`.
    pub fn receiver(&self) -> Oid {
        self.args[0]
    }

    /// Number of explicit arguments (excluding the receiver).
    pub fn arity(&self) -> usize {
        self.args.len() - 1
    }

    /// `self` is a *supertype* of `other` (paper: (15) is a supertype of
    /// (14) iff each `A'i` is a subclass of `Ai`, `R'` a superclass of
    /// `R`, same arrow — "supertype means superset" of the described
    /// function sets).
    pub fn is_supertype_of(&self, db: &Database, other: &TypeExpr) -> bool {
        self.set_valued == other.set_valued
            && self.args.len() == other.args.len()
            && other
                .args
                .iter()
                .zip(&self.args)
                .all(|(&a, &a2)| db.is_subclass(a2, a))
            && db.is_subclass(other.result, self.result)
    }

    /// Renders for diagnostics, e.g. `(Company, String => Numeral)`.
    pub fn render(&self, db: &Database) -> String {
        let args: Vec<String> = self.args.iter().map(|&c| db.render(c)).collect();
        format!(
            "({} {} {})",
            args.join(", "),
            if self.set_valued { "==>" } else { "=>" },
            db.render(self.result)
        )
    }
}

/// The declared type expressions of a method at an arity: one per
/// signature anywhere in the schema, with the defining class as the
/// receiver. These are the candidates a type assignment draws from
/// (§6.2; structural inheritance means every subclass of the defining
/// class also possesses the type, which the supertype closure captures).
pub fn declared_types(db: &Database, method: Oid, arity: usize) -> Vec<TypeExpr> {
    db.signatures_of_method(method, arity)
        .into_iter()
        .map(|(class, sig)| {
            let mut args = Vec::with_capacity(sig.args.len() + 1);
            args.push(class);
            args.extend(sig.args.iter().copied());
            TypeExpr {
                args,
                result: sig.result,
                set_valued: sig.set_valued,
            }
        })
        .collect()
}

/// `method` *possesses* `te` iff `te` is a supertype of one of its
/// declared type expressions (§6.1: "the set of types possessed by any
/// method is closed under the supertype relationship").
pub fn possesses(db: &Database, method: Oid, te: &TypeExpr) -> bool {
    declared_types(db, method, te.arity())
        .iter()
        .any(|declared| te.is_supertype_of(db, declared))
}

/// A *range* (§6.2): the set of classes a variable's occurrences are
/// constrained to. Every individual variable's range implicitly contains
/// `Object`.
pub type Range = BTreeSet<Oid>;

/// Schema-level subrange test (§6.2): range `r` is a subrange of class
/// `t` if every oid belonging to `r` (an instance of *all* its classes)
/// is necessarily an instance of `t`. The schema-derivable sufficient
/// condition: some class in the range is a subclass of `t`.
pub fn is_subrange(db: &Database, r: &Range, t: Oid) -> bool {
    r.iter().any(|&c| db.is_subclass(c, t))
}

/// Schema-level emptiness test (§6.2: "if A(X) contains both Person and
/// Company, then it is empty"). A range is non-empty iff the schema has
/// a class that is a common subclass of every class in the range (an
/// object of that class — possibly via multiple direct classes, like the
/// `workstudy` example — can inhabit the range).
pub fn is_empty_range(db: &Database, r: &Range) -> bool {
    if r.is_empty() {
        return false;
    }
    !db.classes()
        .any(|c| r.iter().all(|&t| db.is_subclass(c, t)))
}

/// The set of objects inhabiting a range in the current database —
/// the Theorem 6.1.2 instantiation domain.
pub fn range_extent(db: &Database, r: &Range) -> BTreeSet<Oid> {
    let mut classes: Vec<Oid> = r.iter().copied().collect();
    if classes.is_empty() {
        classes.push(db.builtins().object);
    }
    // Start from the smallest extent for efficiency.
    classes.sort_by_key(|&c| db.instances_of(c).len());
    let mut out: BTreeSet<Oid> = db.instances_of(classes[0]).into_iter().collect();
    for &c in &classes[1..] {
        out.retain(|&o| db.is_instance_of(o, c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::DbBuilder;

    fn db() -> Database {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.subclass("Employee", &["Person"]);
        b.subclass("Student", &["Person"]);
        b.subclass("Workstudy", &["Employee", "Student"]);
        b.class("Company");
        b.attr("Person", "Name", "String");
        b.method_sig("Employee", "earns", &["Company"], "Numeral", false);
        b.build()
    }

    fn cls(db: &Database, n: &str) -> Oid {
        db.oids().find_sym(n).unwrap()
    }

    #[test]
    fn supertype_contravariant_in_args() {
        let d = db();
        let (p, e, s, n) = (
            cls(&d, "Person"),
            cls(&d, "Employee"),
            cls(&d, "String"),
            cls(&d, "Numeral"),
        );
        let declared = TypeExpr {
            args: vec![p],
            result: s,
            set_valued: false,
        };
        // Narrower receiver, wider result: a supertype.
        let sup = TypeExpr {
            args: vec![e],
            result: d.builtins().object,
            set_valued: false,
        };
        assert!(sup.is_supertype_of(&d, &declared));
        assert!(!declared.is_supertype_of(&d, &sup));
        // Different arrow kind: never comparable.
        let set_sup = TypeExpr {
            args: vec![e],
            result: n,
            set_valued: true,
        };
        assert!(!set_sup.is_supertype_of(&d, &declared));
    }

    #[test]
    fn possession_via_structural_inheritance() {
        let d = db();
        let name = d.oids().find_sym("Name").unwrap();
        let (e, s) = (cls(&d, "Employee"), cls(&d, "String"));
        // Name declared on Person; Employee possesses it (covariance).
        let te = TypeExpr {
            args: vec![e],
            result: s,
            set_valued: false,
        };
        assert!(possesses(&d, name, &te));
        // But not with a narrower result than declared.
        let bad = TypeExpr {
            args: vec![e],
            result: cls(&d, "Numeral"),
            set_valued: false,
        };
        assert!(!possesses(&d, name, &bad));
    }

    #[test]
    fn range_emptiness_matches_paper_example() {
        let d = db();
        let mut r = Range::new();
        r.insert(cls(&d, "Person"));
        r.insert(cls(&d, "Company"));
        assert!(is_empty_range(&d, &r)); // Person+Company: empty
        let mut r2 = Range::new();
        r2.insert(cls(&d, "Employee"));
        r2.insert(cls(&d, "Student"));
        assert!(!is_empty_range(&d, &r2)); // Workstudy inhabits it
    }

    #[test]
    fn subrange_rule() {
        let d = db();
        let mut r = Range::new();
        r.insert(d.builtins().object);
        assert!(!is_subrange(&d, &r, cls(&d, "Company")));
        r.insert(cls(&d, "Employee"));
        assert!(is_subrange(&d, &r, cls(&d, "Person")));
    }

    #[test]
    fn range_extent_intersects() {
        let mut b = DbBuilder::new();
        b.class("A");
        b.class("B");
        b.obj_multi("x", &["A", "B"]);
        b.obj("y", "A");
        let d = b.build();
        let mut r = Range::new();
        r.insert(cls(&d, "A"));
        r.insert(cls(&d, "B"));
        let ext = range_extent(&d, &r);
        assert_eq!(ext.len(), 1);
    }
}
