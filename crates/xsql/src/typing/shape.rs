//! Extraction of the §6.2 typable fragment from a resolved query.
//!
//! The paper simplifies: WHERE is a conjunction, SELECT a list of
//! variables, path expressions carry only v-selectors, g-selectors and
//! method names, and comparison operands are oids or paths ending in a
//! v-selector. This module normalizes a resolved query into that shape
//! (adding anonymous selectors where the paper "assumes all selectors
//! appear") and reports queries outside the fragment.

use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use crate::eval::cond::flatten_and;
use oodb::{Database, Oid};

/// A selector/argument slot after normalization.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Slot {
    /// A variable (by name).
    Var(String),
    /// A ground oid.
    Const(Oid),
    /// An anonymous selector added during normalization (distinct per
    /// position; behaves like a fresh variable).
    Anon(usize),
}

impl Slot {
    /// The variable name, if this slot is one (anonymous slots act as
    /// variables with generated names for range bookkeeping).
    pub fn var_key(&self) -> Option<String> {
        match self {
            Slot::Var(n) => Some(n.clone()),
            Slot::Anon(i) => Some(format!("_anon{i}")),
            Slot::Const(_) => None,
        }
    }
}

/// One step of a normalized path: a fixed method, argument slots, and a
/// (possibly anonymous) selector slot.
#[derive(Debug, Clone)]
pub struct StepShape {
    /// The method-object.
    pub method: Oid,
    /// Rendered method name for diagnostics.
    pub method_name: String,
    /// Argument slots `A_{i,1},…,A_{i,k}`.
    pub args: Vec<Slot>,
    /// The selector slot `Sel_i`.
    pub selector: Slot,
}

/// A normalized path expression `Sel_0.(m1@…)[Sel_1].….(mk@…)[Sel_k]`.
#[derive(Debug, Clone)]
pub struct PathShape {
    /// The head selector slot `Sel_0`.
    pub head: Slot,
    /// The steps.
    pub steps: Vec<StepShape>,
}

/// One side of a comparison, for assignment validity (§6.2's last
/// bullet: comparisons must be well-defined on the compared ranges).
#[derive(Debug, Clone)]
pub enum CmpSide {
    /// A ground oid.
    Const(Oid),
    /// The tail v-selector of a path (range-checked).
    Var(String),
    /// An aggregate — always a numeral.
    Numeral,
    /// Anything the fragment cannot classify (subqueries, set literals);
    /// exempted from the well-definedness check.
    Opaque,
}

/// A comparison record.
#[derive(Debug, Clone)]
pub struct CmpShape {
    /// Left side.
    pub left: CmpSide,
    /// The comparator.
    pub op: CmpOp,
    /// Right side.
    pub right: CmpSide,
}

/// The typable shape of a query.
#[derive(Debug, Clone, Default)]
pub struct QueryShape {
    /// Normalized path expressions (the units execution plans order).
    pub paths: Vec<PathShape>,
    /// FROM constraints: variable name -> class.
    pub from: Vec<(String, Oid)>,
    /// Comparisons for the well-definedness condition.
    pub comparisons: Vec<CmpShape>,
}

/// A method occurrence: path index, step index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OccId {
    /// Index into [`QueryShape::paths`].
    pub path: usize,
    /// Step index within the path.
    pub step: usize,
}

impl QueryShape {
    /// All method occurrences, in plan-relevant order.
    pub fn occurrences(&self) -> Vec<OccId> {
        let mut out = Vec::new();
        for (p, path) in self.paths.iter().enumerate() {
            for s in 0..path.steps.len() {
                out.push(OccId { path: p, step: s });
            }
        }
        out
    }

    /// The step of an occurrence.
    pub fn step(&self, id: OccId) -> &StepShape {
        &self.paths[id.path].steps[id.step]
    }

    /// The receiver slot of an occurrence (`Sel_{i-1}`).
    pub fn receiver_slot(&self, id: OccId) -> &Slot {
        if id.step == 0 {
            &self.paths[id.path].head
        } else {
            &self.paths[id.path].steps[id.step - 1].selector
        }
    }
}

struct Extractor<'d> {
    db: &'d Database,
    shape: QueryShape,
    anon: usize,
}

impl Extractor<'_> {
    fn fresh(&mut self) -> Slot {
        self.anon += 1;
        Slot::Anon(self.anon)
    }

    fn slot(&mut self, t: &IdTerm) -> XsqlResult<Slot> {
        match t {
            IdTerm::Oid(o) => Ok(Slot::Const(*o)),
            IdTerm::Var(v) => Ok(Slot::Var(v.name.clone())),
            other => Err(unsupported(format!(
                "selector/argument {other:?} is outside the §6.2 typable fragment"
            ))),
        }
    }

    fn add_path(&mut self, p: &PathExpr) -> XsqlResult<usize> {
        let head = self.slot(&p.head)?;
        let mut steps = Vec::with_capacity(p.steps.len());
        for s in &p.steps {
            match s {
                Step::Method {
                    method: MethodTerm::Name(n),
                    args,
                    selector,
                } => {
                    let args = args
                        .iter()
                        .map(|a| self.slot(a))
                        .collect::<XsqlResult<Vec<_>>>()?;
                    let selector = match selector {
                        Some(t) => self.slot(t)?,
                        None => self.fresh(),
                    };
                    // The resolver pre-interned every method name.
                    let method =
                        self.db.oids().find_sym(n).ok_or_else(|| {
                            XsqlError::Resolve(format!("method `{n}` not interned"))
                        })?;
                    steps.push(StepShape {
                        method,
                        method_name: n.clone(),
                        args,
                        selector,
                    });
                }
                Step::Method {
                    method: MethodTerm::Var(v),
                    ..
                } => {
                    return Err(unsupported(format!(
                        "method variable \"{v} — §6.2 considers only method names"
                    )))
                }
                Step::PathVar { name, .. } => {
                    return Err(unsupported(format!(
                        "path variable *{name} — outside the §6.2 fragment"
                    )))
                }
            }
        }
        self.shape.paths.push(PathShape { head, steps });
        Ok(self.shape.paths.len() - 1)
    }

    fn cmp_side(&mut self, op: &Operand) -> XsqlResult<CmpSide> {
        match op {
            Operand::Path(p) if p.steps.is_empty() => match &p.head {
                IdTerm::Oid(o) => Ok(CmpSide::Const(*o)),
                IdTerm::Var(v) => Ok(CmpSide::Var(v.name.clone())),
                _ => Ok(CmpSide::Opaque),
            },
            Operand::Path(p) => {
                // §6.2 footnote 13: a comparison path either ends in a
                // v-selector or gets a fresh one appended.
                let idx = self.add_path(p)?;
                let last = self.shape.paths[idx].steps.last().unwrap();
                match last.selector.var_key() {
                    Some(key) => Ok(CmpSide::Var(key)),
                    None => Ok(CmpSide::Const(match &last.selector {
                        Slot::Const(o) => *o,
                        _ => unreachable!(),
                    })),
                }
            }
            Operand::Agg(_, p) => {
                self.add_path(p)?;
                Ok(CmpSide::Numeral)
            }
            Operand::Arith(..) => Ok(CmpSide::Numeral),
            _ => Ok(CmpSide::Opaque),
        }
    }
}

fn unsupported(msg: String) -> XsqlError {
    XsqlError::IllTyped(format!("not in the typable fragment: {msg}"))
}

/// Extracts the typable shape of a resolved query. Errors with
/// [`XsqlError::IllTyped`] when the query uses constructs outside the
/// §6.2 fragment (method variables, path variables, disjunction,
/// negation, id-terms, subqueries in generator positions).
pub fn extract(db: &Database, q: &SelectQuery) -> XsqlResult<QueryShape> {
    let mut ex = Extractor {
        db,
        shape: QueryShape::default(),
        anon: 0,
    };
    for f in &q.from {
        match &f.class {
            IdTerm::Oid(c) => ex.shape.from.push((f.var.name.clone(), *c)),
            other => {
                return Err(unsupported(format!(
                    "FROM range {other:?} is not a class name"
                )))
            }
        }
    }
    let mut conjs = Vec::new();
    flatten_and(&q.where_clause, &mut conjs);
    for c in conjs {
        match c {
            Cond::Path(p) => {
                ex.add_path(p)?;
            }
            Cond::Cmp {
                left, op, right, ..
            } => {
                let l = ex.cmp_side(left)?;
                let r = ex.cmp_side(right)?;
                ex.shape.comparisons.push(CmpShape {
                    left: l,
                    op: *op,
                    right: r,
                });
            }
            Cond::SetCmp { left, right, .. } => {
                // Set comparators: type both sides' paths; membership
                // comparisons are always well-defined.
                for side in [left, right] {
                    if let Operand::Path(p) = side {
                        if !p.steps.is_empty() {
                            ex.add_path(p)?;
                        }
                    }
                }
            }
            Cond::True => {}
            other => {
                return Err(unsupported(format!(
                    "conjunct {other:?} (§6.2 assumes a conjunctive WHERE clause)"
                )))
            }
        }
    }
    Ok(ex.shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve_stmt;
    use oodb::DbBuilder;

    fn shape_of(src: &str) -> XsqlResult<QueryShape> {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.attr("Person", "Name", "String");
        b.attr("Person", "Age", "Numeral");
        b.set_attr("Person", "Friends", "Person");
        let mut db = b.build();
        let stmt = parse(src).unwrap();
        let Stmt::Select(q) = resolve_stmt(&mut db, &stmt).unwrap() else {
            panic!()
        };
        extract(&db, &q)
    }

    use crate::ast::Stmt;

    #[test]
    fn anonymous_selectors_added_where_missing() {
        let s = shape_of("SELECT X FROM Person X WHERE X.Friends.Name['a']").unwrap();
        assert_eq!(s.paths.len(), 1);
        let steps = &s.paths[0].steps;
        assert!(matches!(steps[0].selector, Slot::Anon(_)));
        assert!(matches!(steps[1].selector, Slot::Const(_)));
    }

    #[test]
    fn comparison_paths_get_tail_selectors() {
        let s = shape_of("SELECT X FROM Person X WHERE X.Age > 30").unwrap();
        assert_eq!(s.paths.len(), 1);
        assert_eq!(s.comparisons.len(), 1);
        assert!(matches!(s.comparisons[0].left, CmpSide::Var(_)));
        assert!(matches!(s.comparisons[0].right, CmpSide::Const(_)));
    }

    #[test]
    fn fragment_violations_detected() {
        assert!(shape_of("SELECT Y FROM Person X WHERE X.\"Y.Name['a']").is_err());
        assert!(shape_of("SELECT X FROM Person X WHERE X.*P.Name['a']").is_err());
        assert!(shape_of("SELECT X FROM Person X WHERE X.Name['a'] or X.Age > 3").is_err());
    }

    #[test]
    fn receiver_slots_chain() {
        let s = shape_of("SELECT X FROM Person X WHERE X.Friends[Y].Name['a']").unwrap();
        let occs = s.occurrences();
        assert_eq!(occs.len(), 2);
        assert!(matches!(s.receiver_slot(occs[0]), Slot::Var(n) if n == "X"));
        assert!(matches!(s.receiver_slot(occs[1]), Slot::Var(n) if n == "Y"));
    }
}
