//! Property-based parser/unparser round-trip: for randomly generated
//! surface ASTs, `parse(unparse(q)) == q`.
//!
//! Generated identifiers follow the resolver's conventions so the
//! statement means the same thing after the trip: variables are single
//! capital letters, object/attribute names are multi-letter.

use proptest::prelude::*;
use xsql::ast::*;
use xsql::{parse, unparse_stmt};

fn var_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["X", "Y", "Z", "W", "M", "V2"]).prop_map(String::from)
}

fn attr_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "Name",
        "Age",
        "Salary",
        "Residence",
        "City",
        "FamMembers",
        "Manufacturer",
        "President",
        "Divisions",
        "Employees",
    ])
    .prop_map(String::from)
}

fn obj_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["mary123", "john13", "uniSQL", "acme", "car1"]).prop_map(String::from)
}

fn class_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["Person", "Employee", "Company", "Vehicle", "Division"])
        .prop_map(String::from)
}

fn idterm() -> impl Strategy<Value = IdTerm> {
    // Bare identifiers — including single capital letters that the
    // resolver will classify as variables — parse as `Sym`; the
    // round-trip is at the surface-AST level, before resolution.
    prop_oneof![
        obj_name().prop_map(IdTerm::Sym),
        var_name().prop_map(IdTerm::Sym),
        (-1000i64..1000).prop_map(IdTerm::Int),
        "[a-z]{1,6}".prop_map(IdTerm::Str),
        Just(IdTerm::Nil),
        Just(IdTerm::Bool(true)),
    ]
}

fn step() -> impl Strategy<Value = Step> {
    (
        attr_name(),
        prop::collection::vec(idterm(), 0..3),
        prop::option::of(idterm()),
    )
        .prop_map(|(name, args, selector)| Step::Method {
            method: MethodTerm::Name(name),
            args,
            selector,
        })
}

fn path() -> impl Strategy<Value = PathExpr> {
    (idterm(), prop::collection::vec(step(), 0..4))
        .prop_map(|(head, steps)| PathExpr { head, steps })
}

fn operand() -> impl Strategy<Value = Operand> {
    let leaf = prop_oneof![
        path().prop_map(Operand::Path),
        (
            prop::sample::select(vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg]),
            path()
        )
            .prop_map(|(f, p)| Operand::Agg(f, p)),
        prop::collection::vec(idterm(), 1..4).prop_map(Operand::SetLit),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                prop::sample::select(vec![ArithOp::Add, ArithOp::Sub, ArithOp::Mul]),
                inner.clone()
            )
                .prop_map(|(a, f, b)| Operand::Arith(Box::new(a), f, Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Operand::Union(Box::new(a), Box::new(b))),
        ]
    })
}

fn cond() -> impl Strategy<Value = Cond> {
    let leaf = prop_oneof![
        path().prop_map(Cond::Path),
        (
            operand(),
            prop::option::of(prop::sample::select(vec![Quant::Some, Quant::All])),
            prop::sample::select(vec![
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge
            ]),
            prop::option::of(prop::sample::select(vec![Quant::Some, Quant::All])),
            operand(),
        )
            .prop_map(|(left, lq, op, rq, right)| Cond::Cmp {
                left,
                lq,
                op,
                rq,
                right
            }),
        (
            operand(),
            prop::sample::select(vec![
                SetCmpOp::Contains,
                SetCmpOp::ContainsEq,
                SetCmpOp::Subset,
                SetCmpOp::SubsetEq
            ]),
            operand()
        )
            .prop_map(|(l, op, r)| Cond::SetCmp {
                left: l,
                op,
                right: r
            }),
        (class_name(), class_name()).prop_map(|(a, b)| Cond::SubclassOf {
            sub: IdTerm::Sym(a),
            sup: IdTerm::Sym(b)
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Cond::Not(Box::new(a))),
        ]
    })
}

fn select_query() -> impl Strategy<Value = SelectQuery> {
    (
        prop::collection::vec(operand().prop_map(SelectItem::Expr), 1..3),
        prop::collection::vec(
            (class_name(), var_name()).prop_map(|(c, v)| FromItem {
                class: IdTerm::Sym(c),
                var: Var::ind(&v),
            }),
            0..3,
        ),
        cond(),
    )
        .prop_map(|(select, from, where_clause)| SelectQuery {
            select,
            from,
            oid_fn: None,
            where_clause,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn parse_unparse_roundtrip(q in select_query()) {
        let stmt = Stmt::Select(q);
        let rendered = unparse_stmt(&stmt);
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed on `{rendered}`: {e}"));
        prop_assert_eq!(stmt, reparsed, "round-trip changed `{}`", rendered);
    }
}
