//! Property-based dump/restore: for random schemas and data, replaying
//! the dump yields a database that answers a probe battery identically
//! and passes conformance.

use oodb::{Database, Oid};
use proptest::prelude::*;
use xsql::{dump_script, Session};

fn build(
    supers: &[(u8, u8)],
    objs: &[(u8, u8)],
    scalars: &[(u8, u8, i64)],
    links: &[(u8, u8, u8)],
) -> Database {
    let mut db = Database::new();
    let classes: Vec<Oid> = (0..4)
        .map(|i| db.define_class(&format!("K{i}"), &[]).unwrap())
        .collect();
    for &(a, b) in supers {
        let _ = db.add_is_a(classes[(a % 4) as usize], classes[(b % 4) as usize]);
    }
    // Signatures: V (numeral), L (set of Object) on every class so data
    // conforms.
    let numeral = db.builtins().numeral;
    let object = db.builtins().object;
    for &c in &classes {
        db.add_signature(c, "V", &[], numeral, false).unwrap();
        db.add_signature(c, "L", &[], object, true).unwrap();
    }
    let objects: Vec<Oid> = objs
        .iter()
        .enumerate()
        .map(|(i, &(c, _))| {
            db.new_individual(&format!("o{i}"), &[classes[(c % 4) as usize]])
                .unwrap()
        })
        .collect();
    if objects.is_empty() {
        return db;
    }
    let m_v = db.oids_mut().sym("V");
    let m_l = db.oids_mut().sym("L");
    for &(o, _, v) in scalars {
        let obj = objects[(o as usize) % objects.len()];
        let val = db.oids_mut().int(v);
        db.set_scalar(obj, m_v, &[], val).unwrap();
    }
    for &(o, t, _) in links {
        let (obj, tgt) = (
            objects[(o as usize) % objects.len()],
            objects[(t as usize) % objects.len()],
        );
        db.insert_into_set(obj, m_l, &[], tgt).unwrap();
    }
    db
}

fn probe(s: &mut Session) -> Vec<Vec<String>> {
    [
        "SELECT X FROM K0 X",
        "SELECT X FROM K1 X WHERE X.V > 0",
        "SELECT X, Y FROM K2 X WHERE X.L[Y]",
        "SELECT X WHERE X.V[3]",
        "SELECT X FROM K3 X WHERE count(X.L) >= 1",
    ]
    .iter()
    .map(|q| {
        s.query(q)
            .unwrap()
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&o| s.db().render(o))
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect()
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn dump_restore_preserves_answers(
        supers in proptest::collection::vec((0u8..4, 0u8..4), 0..5),
        objs in proptest::collection::vec((0u8..4, 0u8..1), 0..8),
        scalars in proptest::collection::vec((0u8..8, 0u8..1, -9i64..9), 0..10),
        links in proptest::collection::vec((0u8..8, 0u8..8, 0u8..1), 0..10),
    ) {
        let original = build(&supers, &objs, &scalars, &links);
        let (script, _) = dump_script(&original).unwrap();
        let mut restored = Session::new(Database::new());
        restored.run_script(&script)
            .unwrap_or_else(|e| panic!("replay failed: {e}\n{script}"));
        let mut orig = Session::new(original);
        prop_assert_eq!(probe(&mut orig), probe(&mut restored), "script:\n{}", script);
        prop_assert!(restored.db().check_conformance().is_empty());
    }
}
