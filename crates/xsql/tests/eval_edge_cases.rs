//! Edge-case behaviour of the evaluator: cyclic data, empty-set
//! quantifier semantics, numeral identity, nil, selector sorts, and
//! resource guards.

use oodb::{Database, DbBuilder};
use xsql::{EvalOptions, Session, Strategy, XsqlError};

fn cyclic_db() -> Database {
    // a -> b -> c -> a through a scalar attribute.
    let mut b = DbBuilder::new();
    b.class("Node");
    b.attr("Node", "Next", "Node");
    b.attr("Node", "Tag", "String");
    let n1 = b.obj("a1", "Node");
    let n2 = b.obj("b2", "Node");
    let n3 = b.obj("c3", "Node");
    b.set(n1, "Next", n2);
    b.set(n2, "Next", n3);
    b.set(n3, "Next", n1);
    b.set_str(n1, "Tag", "start");
    b.build()
}

#[test]
fn cyclic_data_fixed_length_paths_terminate() {
    let mut s = Session::new(cyclic_db());
    // A fixed-length path across a cycle terminates (path expressions
    // have a fixed number of steps; cycles in the data are fine).
    let r = s
        .query("SELECT X FROM Node X WHERE X.Next.Next.Next[X]")
        .unwrap();
    assert_eq!(r.len(), 3); // every node returns to itself in 3 hops
    let r = s
        .query("SELECT X FROM Node X WHERE X.Next.Next[X]")
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn path_variables_on_cycles_are_bounded() {
    // Path variables are depth-bounded; cycles don't diverge.
    let mut s = Session::new(cyclic_db());
    let r = s
        .query("SELECT X FROM Node X WHERE X.*P.Tag['start']")
        .unwrap();
    // Every node reaches a1 within the default bound of 4 hops.
    assert_eq!(r.len(), 3);
    // A bound of zero hops only admits a1 itself (zero-length sequence
    // then Tag).
    s.set_options(EvalOptions {
        path_var_limit: 0,
        ..EvalOptions::default()
    });
    let r = s
        .query("SELECT X FROM Node X WHERE X.*P.Tag['start']")
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn all_quantifier_vacuous_on_empty() {
    let mut b = DbBuilder::new();
    b.class("Person");
    b.set_attr("Person", "Kids", "Person");
    b.attr("Person", "Age", "Numeral");
    let solo = b.obj("solo", "Person");
    b.set_int(solo, "Age", 30);
    let parent = b.obj("parent", "Person");
    b.set_int(parent, "Age", 50);
    let kid = b.obj("kid", "Person");
    b.set_int(kid, "Age", 10);
    b.set_many(parent, "Kids", &[kid]);
    let mut s = Session::new(b.build());
    // all> over an empty set is vacuously true: solo and kid qualify.
    let r = s
        .query("SELECT X FROM Person X WHERE X.Kids.Age all> 100")
        .unwrap();
    assert_eq!(r.len(), 2);
    // some> over an empty set is false: nobody qualifies.
    let r = s
        .query("SELECT X FROM Person X WHERE X.Kids.Age some> 100")
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn int_and_real_numerals_compare_numerically() {
    let mut b = DbBuilder::new();
    b.class("Item");
    b.attr("Item", "Weight", "Numeral");
    let i1 = b.obj("i1", "Item");
    let w = b.real(2.0);
    b.set(i1, "Weight", w);
    let mut s = Session::new(b.build());
    // The literal 2 (an integer) equals the stored 2.0 (a real): the
    // OID of a numeral carries its value (§2).
    let r = s.query("SELECT X FROM Item X WHERE X.Weight = 2").unwrap();
    assert_eq!(r.len(), 1);
    let r = s.query("SELECT X FROM Item X WHERE X.Weight[2]").unwrap();
    assert_eq!(r.len(), 1, "selectors are numeral-insensitive too");
}

#[test]
fn nil_is_a_first_class_object() {
    let mut db = Database::new();
    let c = db.define_class("Task", &[]).unwrap();
    let t = db.new_individual("t1", &[c]).unwrap();
    let done = db.oids_mut().sym("Result");
    let nil = db.oids_mut().nil();
    db.set_scalar(t, done, &[], nil).unwrap();
    let mut s = Session::new(db);
    let r = s.query("SELECT X FROM Task X WHERE X.Result[nil]").unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn class_objects_not_captured_by_individual_variables() {
    // Individual variables range over individuals only; a class-valued
    // position never binds them (§2: the class universe is disjoint).
    let mut s = Session::new(datagen::figure1_db());
    let r = s.query("SELECT X WHERE X.Name['UniSQL']").unwrap();
    assert_eq!(r.len(), 1); // uniSQL the company — not a class
                            // Class variables conversely never capture individuals.
    let r = s.query("SELECT #C WHERE #C subclassOf Object").unwrap();
    assert!(r.iter().all(|t| s.db().is_class(t[0])));
}

#[test]
fn work_limit_guards_naive_engine() {
    let db = datagen::figure1_scaled(&datagen::Figure1Params {
        companies: 3,
        ..datagen::Figure1Params::default()
    });
    let mut s = Session::with_options(
        db,
        EvalOptions {
            strategy: Strategy::Naive,
            work_limit: 10_000,
            ..EvalOptions::default()
        },
    );
    let err = s
        .query("SELECT X, Y FROM Person X, Person Y WHERE X.Age = Y.Age")
        .unwrap_err();
    assert!(matches!(err, XsqlError::WorkLimit(10_000)), "{err}");
}

#[test]
fn recursive_method_hits_depth_guard() {
    // A method defined in terms of itself recurses until the engine's
    // invocation-depth guard fires — an error, not a hang.
    let mut s = Session::new(cyclic_db());
    s.run(
        "ALTER CLASS Node ADD SIGNATURE Chase => String \
         SELECT (Chase @) = W FROM Node X OID X WHERE X.Next.Chase[W]",
    )
    .unwrap();
    let a1 = s.db().oids().find_sym("a1").unwrap();
    let err = s.invoke(a1, "Chase", &[]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("recursion") || msg.contains("failed"), "{msg}");
}

#[test]
fn string_comparisons_are_lexicographic() {
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query("SELECT X FROM Person X WHERE X.Name > 'L' and X.Name < 'N'")
        .unwrap();
    // Mary only.
    assert_eq!(r.len(), 1);
}

#[test]
fn incomparable_kinds_compare_false_not_error() {
    // Liberal evaluation: ordering a string against a numeral is simply
    // false (the typing system flags it statically; §6's liberal end).
    let mut s = Session::new(datagen::figure1_db());
    let r = s.query("SELECT X FROM Person X WHERE X.Name > 5").unwrap();
    assert!(r.is_empty());
}

#[test]
fn division_by_zero_is_an_error() {
    let mut s = Session::new(datagen::figure1_db());
    let err = s
        .query("SELECT X FROM Employee X WHERE X.Salary / 0 > 1")
        .unwrap_err();
    assert!(matches!(err, XsqlError::NotNumeric(_)), "{err}");
}

#[test]
fn unknown_method_name_yields_empty_not_error() {
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query("SELECT X FROM Person X WHERE X.TotallyUnknownAttr")
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn deeply_nested_subqueries() {
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query(
            "SELECT X FROM Company X WHERE 0 <all (SELECT W FROM Division Y \
             WHERE X.Divisions[Y].Manager.Salary[W] \
             and 1 <all (SELECT V FROM Employee Z WHERE Y.Employees[Z].Age[V]))",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn selector_unification_with_func_terms() {
    // A partially-unbound id-term head unifies against view objects.
    let mut s = Session::new(datagen::figure1_db());
    s.run(
        "CREATE VIEW Pair AS SUBCLASS OF Object SIGNATURE Sal => Numeral \
         SELECT Sal = W.Salary FROM Company X OID FUNCTION OF X,W \
         WHERE X.Divisions.Employees[W]",
    )
    .unwrap();
    // Pair(C, E) with C, E variables enumerates the view extent and
    // binds both components of the id-term.
    let r = s
        .query("SELECT C, E FROM Company C, Employee E WHERE Pair(C, E).Sal > 0")
        .unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn shadowed_from_binders_in_subquery() {
    // A subquery FROM binder with the same name as an outer variable
    // shadows it for the inner scope (documented convention).
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query(
            "SELECT X FROM Company X WHERE 0 < (SELECT W FROM Employee W \
             WHERE X.Divisions.Employees[W] and W.Salary[90000])",
        )
        .unwrap_or_else(|e| panic!("{e}"));
    // Comparison `0 < {john13}`? john13 is not a numeral: incomparable,
    // false — so the subquery must select the salary instead for a
    // meaningful comparison; this asserts the machinery doesn't error.
    assert!(r.is_empty());
}

#[test]
fn boolean_literals_as_objects() {
    let mut db = Database::new();
    let c = db.define_class("Flagged", &[]).unwrap();
    let o = db.new_individual("f1", &[c]).unwrap();
    let m = db.oids_mut().sym("Active");
    let t = db.oids_mut().bool(true);
    db.set_scalar(o, m, &[], t).unwrap();
    let mut s = Session::new(db);
    let r = s
        .query("SELECT X FROM Flagged X WHERE X.Active[true]")
        .unwrap();
    assert_eq!(r.len(), 1);
    let r = s
        .query("SELECT X FROM Flagged X WHERE X.Active[false]")
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn multi_column_unnesting_cartesian() {
    // SELECT with two set-valued expressions unnests as a product per
    // binding.
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query("SELECT X.FamMembers, X.OwnedVehicles FROM Employee X WHERE X.Name['John']")
        .unwrap();
    // john: 2 family members x 2 vehicles = 4 rows.
    assert_eq!(r.len(), 4);
}

#[test]
fn negative_numeral_paths() {
    let mut db = Database::new();
    let c = db.define_class("Account", &[]).unwrap();
    let o = db.new_individual("acct", &[c]).unwrap();
    let m = db.oids_mut().sym("Balance");
    let v = db.oids_mut().int(-250);
    db.set_scalar(o, m, &[], v).unwrap();
    let mut s = Session::new(db);
    let r = s
        .query("SELECT X FROM Account X WHERE X.Balance < -100")
        .unwrap();
    assert_eq!(r.len(), 1);
    let r = s
        .query("SELECT X FROM Account X WHERE X.Balance[-250]")
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn select_only_variable_enumerates_domain() {
    // A variable appearing only in the SELECT list ranges over its
    // whole sort domain (naive semantics §3.4) — the cartesian query.
    let mut b = DbBuilder::new();
    b.class("Pt");
    b.obj("p1", "Pt");
    b.obj("p2", "Pt");
    let mut s = Session::new(b.build());
    let r = s.query("SELECT X, Y FROM Pt X, Pt Y").unwrap();
    assert_eq!(r.len(), 4);
    // And with Y appearing only in the SELECT list.
    let r = s.query("SELECT Y FROM Pt X").unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn parenthesized_relational_algebra() {
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query(
            "SELECT X FROM Person X MINUS (SELECT X FROM Employee X \
             UNION SELECT X FROM Person X WHERE X.Age < 20)",
        )
        .unwrap();
    // Persons minus (employees ∪ minors): mary123 (34), anna7 (22).
    assert_eq!(r.len(), 2);
}

#[test]
fn scripts_tolerate_comments_and_blank_statements() {
    let mut s = Session::new(datagen::figure1_db());
    let outs = s
        .run_script(
            "-- leading comment\n\
             SELECT X FROM Person X; ;; \n\
             -- middle comment\n\
             SELECT Y FROM Company Y; -- trailing comment",
        )
        .unwrap();
    assert_eq!(outs.len(), 2);
}

#[test]
fn instance_of_predicate() {
    // The InstanceOf companion predicate (FROM's explicit form).
    let mut s = Session::new(datagen::figure1_db());
    let r = s
        .query("SELECT X FROM Vehicle X WHERE X instanceOf Automobile")
        .unwrap();
    assert_eq!(r.len(), 2);
    let r = s
        .query("SELECT #C FROM Vehicle X WHERE car1 instanceOf #C and #C subclassOf Vehicle")
        .unwrap();
    assert_eq!(r.len(), 1); // Automobile
}
