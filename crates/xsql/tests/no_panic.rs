//! Robustness: the lexer and parser must never panic — arbitrary input
//! produces `Ok` or a located `Err`.

use proptest::prelude::*;
use xsql::{lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn lexer_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = lex(&src);
    }

    #[test]
    fn parser_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// Near-miss inputs: mutate a valid query by deleting a span.
    #[test]
    fn parser_total_on_mutilated_queries(start in 0usize..80, len in 0usize..30) {
        let base = "SELECT X, Y FROM Company X WHERE X.Divisions[Y].Manager.Salary some> 20000 \
                    and X.Name =all {'a', 'b'}";
        let s = start.min(base.len());
        let e = (start + len).min(base.len());
        // Only cut on char boundaries (always true here: ASCII).
        let mutated = format!("{}{}", &base[..s], &base[e..]);
        let _ = parse(&mutated);
    }
}
