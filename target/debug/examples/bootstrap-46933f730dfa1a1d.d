/root/repo/target/debug/examples/bootstrap-46933f730dfa1a1d.d: examples/bootstrap.rs

/root/repo/target/debug/examples/bootstrap-46933f730dfa1a1d: examples/bootstrap.rs

examples/bootstrap.rs:
