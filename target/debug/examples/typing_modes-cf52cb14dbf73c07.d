/root/repo/target/debug/examples/typing_modes-cf52cb14dbf73c07.d: examples/typing_modes.rs Cargo.toml

/root/repo/target/debug/examples/libtyping_modes-cf52cb14dbf73c07.rmeta: examples/typing_modes.rs Cargo.toml

examples/typing_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
