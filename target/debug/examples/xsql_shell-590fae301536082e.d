/root/repo/target/debug/examples/xsql_shell-590fae301536082e.d: examples/xsql_shell.rs Cargo.toml

/root/repo/target/debug/examples/libxsql_shell-590fae301536082e.rmeta: examples/xsql_shell.rs Cargo.toml

examples/xsql_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
