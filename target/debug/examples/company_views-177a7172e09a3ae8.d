/root/repo/target/debug/examples/company_views-177a7172e09a3ae8.d: examples/company_views.rs

/root/repo/target/debug/examples/company_views-177a7172e09a3ae8: examples/company_views.rs

examples/company_views.rs:
