/root/repo/target/debug/examples/bootstrap-f2e9381dc0ead36c.d: examples/bootstrap.rs Cargo.toml

/root/repo/target/debug/examples/libbootstrap-f2e9381dc0ead36c.rmeta: examples/bootstrap.rs Cargo.toml

examples/bootstrap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
