/root/repo/target/debug/examples/quickstart-5e92008a7208017a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5e92008a7208017a: examples/quickstart.rs

examples/quickstart.rs:
