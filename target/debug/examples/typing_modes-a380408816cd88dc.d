/root/repo/target/debug/examples/typing_modes-a380408816cd88dc.d: examples/typing_modes.rs

/root/repo/target/debug/examples/typing_modes-a380408816cd88dc: examples/typing_modes.rs

examples/typing_modes.rs:
