/root/repo/target/debug/examples/schema_browsing-a62babb07e70b38a.d: examples/schema_browsing.rs Cargo.toml

/root/repo/target/debug/examples/libschema_browsing-a62babb07e70b38a.rmeta: examples/schema_browsing.rs Cargo.toml

examples/schema_browsing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
