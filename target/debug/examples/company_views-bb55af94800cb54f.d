/root/repo/target/debug/examples/company_views-bb55af94800cb54f.d: examples/company_views.rs Cargo.toml

/root/repo/target/debug/examples/libcompany_views-bb55af94800cb54f.rmeta: examples/company_views.rs Cargo.toml

examples/company_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
