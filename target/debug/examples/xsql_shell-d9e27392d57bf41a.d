/root/repo/target/debug/examples/xsql_shell-d9e27392d57bf41a.d: examples/xsql_shell.rs

/root/repo/target/debug/examples/xsql_shell-d9e27392d57bf41a: examples/xsql_shell.rs

examples/xsql_shell.rs:
