/root/repo/target/debug/examples/flogic_semantics-4e878badac926074.d: examples/flogic_semantics.rs Cargo.toml

/root/repo/target/debug/examples/libflogic_semantics-4e878badac926074.rmeta: examples/flogic_semantics.rs Cargo.toml

examples/flogic_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
