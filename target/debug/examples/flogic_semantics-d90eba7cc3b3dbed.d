/root/repo/target/debug/examples/flogic_semantics-d90eba7cc3b3dbed.d: examples/flogic_semantics.rs

/root/repo/target/debug/examples/flogic_semantics-d90eba7cc3b3dbed: examples/flogic_semantics.rs

examples/flogic_semantics.rs:
