/root/repo/target/debug/examples/schema_browsing-35f6dbb704964e2b.d: examples/schema_browsing.rs

/root/repo/target/debug/examples/schema_browsing-35f6dbb704964e2b: examples/schema_browsing.rs

examples/schema_browsing.rs:
