/root/repo/target/debug/deps/methods-dd8d85f931a0c684.d: tests/methods.rs

/root/repo/target/debug/deps/methods-dd8d85f931a0c684: tests/methods.rs

tests/methods.rs:
