/root/repo/target/debug/deps/transactions-6dd70a78a334c0f9.d: tests/transactions.rs Cargo.toml

/root/repo/target/debug/deps/libtransactions-6dd70a78a334c0f9.rmeta: tests/transactions.rs Cargo.toml

tests/transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
