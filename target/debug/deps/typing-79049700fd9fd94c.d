/root/repo/target/debug/deps/typing-79049700fd9fd94c.d: tests/typing.rs

/root/repo/target/debug/deps/typing-79049700fd9fd94c: tests/typing.rs

tests/typing.rs:
