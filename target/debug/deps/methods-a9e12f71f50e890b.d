/root/repo/target/debug/deps/methods-a9e12f71f50e890b.d: tests/methods.rs Cargo.toml

/root/repo/target/debug/deps/libmethods-a9e12f71f50e890b.rmeta: tests/methods.rs Cargo.toml

tests/methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
