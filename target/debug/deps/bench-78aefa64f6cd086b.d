/root/repo/target/debug/deps/bench-78aefa64f6cd086b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-78aefa64f6cd086b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-78aefa64f6cd086b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
