/root/repo/target/debug/deps/object_creation-c4f0de823e5e839b.d: tests/object_creation.rs

/root/repo/target/debug/deps/object_creation-c4f0de823e5e839b: tests/object_creation.rs

tests/object_creation.rs:
