/root/repo/target/debug/deps/cli-c966bea31f57b731.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-c966bea31f57b731.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_xsql-cli=placeholder:xsql-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
