/root/repo/target/debug/deps/typing-17e989c052cc4333.d: tests/typing.rs Cargo.toml

/root/repo/target/debug/deps/libtyping-17e989c052cc4333.rmeta: tests/typing.rs Cargo.toml

tests/typing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
