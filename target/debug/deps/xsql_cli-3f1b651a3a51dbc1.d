/root/repo/target/debug/deps/xsql_cli-3f1b651a3a51dbc1.d: src/bin/xsql-cli.rs

/root/repo/target/debug/deps/xsql_cli-3f1b651a3a51dbc1: src/bin/xsql-cli.rs

src/bin/xsql-cli.rs:
