/root/repo/target/debug/deps/xsql_cli-6cd781a91ac507d6.d: src/bin/xsql-cli.rs Cargo.toml

/root/repo/target/debug/deps/libxsql_cli-6cd781a91ac507d6.rmeta: src/bin/xsql-cli.rs Cargo.toml

src/bin/xsql-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
