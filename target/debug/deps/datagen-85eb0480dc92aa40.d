/root/repo/target/debug/deps/datagen-85eb0480dc92aa40.d: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen-85eb0480dc92aa40.rmeta: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/figure1.rs:
crates/datagen/src/nobel.rs:
crates/datagen/src/university.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
