/root/repo/target/debug/deps/flogic_equiv-86bce63b9d7f6db3.d: tests/flogic_equiv.rs

/root/repo/target/debug/deps/flogic_equiv-86bce63b9d7f6db3: tests/flogic_equiv.rs

tests/flogic_equiv.rs:
