/root/repo/target/debug/deps/theorem61-f84f639453850fff.d: tests/theorem61.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem61-f84f639453850fff.rmeta: tests/theorem61.rs Cargo.toml

tests/theorem61.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
