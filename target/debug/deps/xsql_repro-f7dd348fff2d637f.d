/root/repo/target/debug/deps/xsql_repro-f7dd348fff2d637f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsql_repro-f7dd348fff2d637f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
