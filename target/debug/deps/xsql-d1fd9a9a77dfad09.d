/root/repo/target/debug/deps/xsql-d1fd9a9a77dfad09.d: crates/xsql/src/lib.rs crates/xsql/src/ast.rs crates/xsql/src/error.rs crates/xsql/src/lexer.rs crates/xsql/src/parser.rs crates/xsql/src/resolve.rs crates/xsql/src/token.rs crates/xsql/src/dump.rs crates/xsql/src/eval/mod.rs crates/xsql/src/eval/bindings.rs crates/xsql/src/eval/cond.rs crates/xsql/src/eval/create.rs crates/xsql/src/eval/method.rs crates/xsql/src/eval/path.rs crates/xsql/src/eval/select.rs crates/xsql/src/eval/update.rs crates/xsql/src/eval/value.rs crates/xsql/src/eval/vars.rs crates/xsql/src/eval/view.rs crates/xsql/src/session.rs crates/xsql/src/typing/mod.rs crates/xsql/src/typing/assign.rs crates/xsql/src/typing/shape.rs crates/xsql/src/typing/strict.rs crates/xsql/src/typing/types.rs crates/xsql/src/unparse.rs Cargo.toml

/root/repo/target/debug/deps/libxsql-d1fd9a9a77dfad09.rmeta: crates/xsql/src/lib.rs crates/xsql/src/ast.rs crates/xsql/src/error.rs crates/xsql/src/lexer.rs crates/xsql/src/parser.rs crates/xsql/src/resolve.rs crates/xsql/src/token.rs crates/xsql/src/dump.rs crates/xsql/src/eval/mod.rs crates/xsql/src/eval/bindings.rs crates/xsql/src/eval/cond.rs crates/xsql/src/eval/create.rs crates/xsql/src/eval/method.rs crates/xsql/src/eval/path.rs crates/xsql/src/eval/select.rs crates/xsql/src/eval/update.rs crates/xsql/src/eval/value.rs crates/xsql/src/eval/vars.rs crates/xsql/src/eval/view.rs crates/xsql/src/session.rs crates/xsql/src/typing/mod.rs crates/xsql/src/typing/assign.rs crates/xsql/src/typing/shape.rs crates/xsql/src/typing/strict.rs crates/xsql/src/typing/types.rs crates/xsql/src/unparse.rs Cargo.toml

crates/xsql/src/lib.rs:
crates/xsql/src/ast.rs:
crates/xsql/src/error.rs:
crates/xsql/src/lexer.rs:
crates/xsql/src/parser.rs:
crates/xsql/src/resolve.rs:
crates/xsql/src/token.rs:
crates/xsql/src/dump.rs:
crates/xsql/src/eval/mod.rs:
crates/xsql/src/eval/bindings.rs:
crates/xsql/src/eval/cond.rs:
crates/xsql/src/eval/create.rs:
crates/xsql/src/eval/method.rs:
crates/xsql/src/eval/path.rs:
crates/xsql/src/eval/select.rs:
crates/xsql/src/eval/update.rs:
crates/xsql/src/eval/value.rs:
crates/xsql/src/eval/vars.rs:
crates/xsql/src/eval/view.rs:
crates/xsql/src/session.rs:
crates/xsql/src/typing/mod.rs:
crates/xsql/src/typing/assign.rs:
crates/xsql/src/typing/shape.rs:
crates/xsql/src/typing/strict.rs:
crates/xsql/src/typing/types.rs:
crates/xsql/src/unparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
