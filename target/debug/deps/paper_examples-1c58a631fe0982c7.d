/root/repo/target/debug/deps/paper_examples-1c58a631fe0982c7.d: crates/bench/src/bin/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-1c58a631fe0982c7: crates/bench/src/bin/paper_examples.rs

crates/bench/src/bin/paper_examples.rs:
