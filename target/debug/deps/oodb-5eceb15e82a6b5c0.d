/root/repo/target/debug/deps/oodb-5eceb15e82a6b5c0.d: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs Cargo.toml

/root/repo/target/debug/deps/liboodb-5eceb15e82a6b5c0.rmeta: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs Cargo.toml

crates/oodb/src/lib.rs:
crates/oodb/src/builder.rs:
crates/oodb/src/database.rs:
crates/oodb/src/error.rs:
crates/oodb/src/oid.rs:
crates/oodb/src/schema.rs:
crates/oodb/src/undo.rs:
crates/oodb/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
