/root/repo/target/debug/deps/transactions-1487f2b726a0e717.d: tests/transactions.rs

/root/repo/target/debug/deps/transactions-1487f2b726a0e717: tests/transactions.rs

tests/transactions.rs:
