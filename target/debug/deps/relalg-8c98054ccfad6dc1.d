/root/repo/target/debug/deps/relalg-8c98054ccfad6dc1.d: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs

/root/repo/target/debug/deps/librelalg-8c98054ccfad6dc1.rlib: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs

/root/repo/target/debug/deps/librelalg-8c98054ccfad6dc1.rmeta: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs

crates/relalg/src/lib.rs:
crates/relalg/src/relation.rs:
crates/relalg/src/render.rs:
