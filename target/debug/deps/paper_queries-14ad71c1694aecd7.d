/root/repo/target/debug/deps/paper_queries-14ad71c1694aecd7.d: tests/paper_queries.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_queries-14ad71c1694aecd7.rmeta: tests/paper_queries.rs Cargo.toml

tests/paper_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
