/root/repo/target/debug/deps/stress-86c59925107ebbd1.d: tests/stress.rs

/root/repo/target/debug/deps/stress-86c59925107ebbd1: tests/stress.rs

tests/stress.rs:
