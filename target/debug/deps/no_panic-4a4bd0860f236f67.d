/root/repo/target/debug/deps/no_panic-4a4bd0860f236f67.d: crates/xsql/tests/no_panic.rs

/root/repo/target/debug/deps/no_panic-4a4bd0860f236f67: crates/xsql/tests/no_panic.rs

crates/xsql/tests/no_panic.rs:
