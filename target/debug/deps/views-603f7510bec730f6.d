/root/repo/target/debug/deps/views-603f7510bec730f6.d: tests/views.rs Cargo.toml

/root/repo/target/debug/deps/libviews-603f7510bec730f6.rmeta: tests/views.rs Cargo.toml

tests/views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
