/root/repo/target/debug/deps/xsql_repro-142e3b9edf6e0327.d: src/lib.rs

/root/repo/target/debug/deps/xsql_repro-142e3b9edf6e0327: src/lib.rs

src/lib.rs:
