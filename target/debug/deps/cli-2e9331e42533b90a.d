/root/repo/target/debug/deps/cli-2e9331e42533b90a.d: tests/cli.rs

/root/repo/target/debug/deps/cli-2e9331e42533b90a: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_xsql-cli=/root/repo/target/debug/xsql-cli
