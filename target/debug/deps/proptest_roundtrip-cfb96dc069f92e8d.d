/root/repo/target/debug/deps/proptest_roundtrip-cfb96dc069f92e8d.d: crates/xsql/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-cfb96dc069f92e8d: crates/xsql/tests/proptest_roundtrip.rs

crates/xsql/tests/proptest_roundtrip.rs:
