/root/repo/target/debug/deps/object_creation-2ea6772cf32b48d9.d: tests/object_creation.rs Cargo.toml

/root/repo/target/debug/deps/libobject_creation-2ea6772cf32b48d9.rmeta: tests/object_creation.rs Cargo.toml

tests/object_creation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
