/root/repo/target/debug/deps/proptest_dump-e656b1b6a58f0ced.d: crates/xsql/tests/proptest_dump.rs

/root/repo/target/debug/deps/proptest_dump-e656b1b6a58f0ced: crates/xsql/tests/proptest_dump.rs

crates/xsql/tests/proptest_dump.rs:
