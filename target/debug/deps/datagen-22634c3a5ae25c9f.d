/root/repo/target/debug/deps/datagen-22634c3a5ae25c9f.d: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs

/root/repo/target/debug/deps/libdatagen-22634c3a5ae25c9f.rlib: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs

/root/repo/target/debug/deps/libdatagen-22634c3a5ae25c9f.rmeta: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs

crates/datagen/src/lib.rs:
crates/datagen/src/figure1.rs:
crates/datagen/src/nobel.rs:
crates/datagen/src/university.rs:
