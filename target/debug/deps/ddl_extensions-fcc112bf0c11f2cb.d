/root/repo/target/debug/deps/ddl_extensions-fcc112bf0c11f2cb.d: tests/ddl_extensions.rs

/root/repo/target/debug/deps/ddl_extensions-fcc112bf0c11f2cb: tests/ddl_extensions.rs

tests/ddl_extensions.rs:
