/root/repo/target/debug/deps/xsql_cli-7eb42cc388b8b4b6.d: src/bin/xsql-cli.rs

/root/repo/target/debug/deps/xsql_cli-7eb42cc388b8b4b6: src/bin/xsql-cli.rs

src/bin/xsql-cli.rs:
