/root/repo/target/debug/deps/paper_queries-f81d3f2bee03a25b.d: tests/paper_queries.rs

/root/repo/target/debug/deps/paper_queries-f81d3f2bee03a25b: tests/paper_queries.rs

tests/paper_queries.rs:
