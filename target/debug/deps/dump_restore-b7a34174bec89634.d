/root/repo/target/debug/deps/dump_restore-b7a34174bec89634.d: tests/dump_restore.rs Cargo.toml

/root/repo/target/debug/deps/libdump_restore-b7a34174bec89634.rmeta: tests/dump_restore.rs Cargo.toml

tests/dump_restore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
