/root/repo/target/debug/deps/properties-9cd6d13d31e21f4b.d: crates/oodb/tests/properties.rs

/root/repo/target/debug/deps/properties-9cd6d13d31e21f4b: crates/oodb/tests/properties.rs

crates/oodb/tests/properties.rs:
