/root/repo/target/debug/deps/dump_restore-ff8f24355bcbcc29.d: tests/dump_restore.rs

/root/repo/target/debug/deps/dump_restore-ff8f24355bcbcc29: tests/dump_restore.rs

tests/dump_restore.rs:
