/root/repo/target/debug/deps/flogic-30bface490cb82b5.d: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs

/root/repo/target/debug/deps/libflogic-30bface490cb82b5.rlib: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs

/root/repo/target/debug/deps/libflogic-30bface490cb82b5.rmeta: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs

crates/flogic/src/lib.rs:
crates/flogic/src/eval.rs:
crates/flogic/src/model.rs:
crates/flogic/src/render.rs:
crates/flogic/src/term.rs:
crates/flogic/src/translate.rs:
