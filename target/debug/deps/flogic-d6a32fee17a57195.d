/root/repo/target/debug/deps/flogic-d6a32fee17a57195.d: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libflogic-d6a32fee17a57195.rmeta: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs Cargo.toml

crates/flogic/src/lib.rs:
crates/flogic/src/eval.rs:
crates/flogic/src/model.rs:
crates/flogic/src/render.rs:
crates/flogic/src/term.rs:
crates/flogic/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
