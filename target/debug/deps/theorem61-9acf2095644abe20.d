/root/repo/target/debug/deps/theorem61-9acf2095644abe20.d: tests/theorem61.rs

/root/repo/target/debug/deps/theorem61-9acf2095644abe20: tests/theorem61.rs

tests/theorem61.rs:
