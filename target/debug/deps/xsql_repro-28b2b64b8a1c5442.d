/root/repo/target/debug/deps/xsql_repro-28b2b64b8a1c5442.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsql_repro-28b2b64b8a1c5442.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
