/root/repo/target/debug/deps/differential-73af9664da694c92.d: tests/differential.rs

/root/repo/target/debug/deps/differential-73af9664da694c92: tests/differential.rs

tests/differential.rs:
