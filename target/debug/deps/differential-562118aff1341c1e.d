/root/repo/target/debug/deps/differential-562118aff1341c1e.d: tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-562118aff1341c1e.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
