/root/repo/target/debug/deps/flogic_equiv-a2e9472c0ea6027f.d: tests/flogic_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_equiv-a2e9472c0ea6027f.rmeta: tests/flogic_equiv.rs Cargo.toml

tests/flogic_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
