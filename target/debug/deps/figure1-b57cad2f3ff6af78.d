/root/repo/target/debug/deps/figure1-b57cad2f3ff6af78.d: tests/figure1.rs

/root/repo/target/debug/deps/figure1-b57cad2f3ff6af78: tests/figure1.rs

tests/figure1.rs:
