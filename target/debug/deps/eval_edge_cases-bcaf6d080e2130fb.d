/root/repo/target/debug/deps/eval_edge_cases-bcaf6d080e2130fb.d: crates/xsql/tests/eval_edge_cases.rs

/root/repo/target/debug/deps/eval_edge_cases-bcaf6d080e2130fb: crates/xsql/tests/eval_edge_cases.rs

crates/xsql/tests/eval_edge_cases.rs:
