/root/repo/target/debug/deps/views-0750b3ba442456ed.d: tests/views.rs

/root/repo/target/debug/deps/views-0750b3ba442456ed: tests/views.rs

tests/views.rs:
