/root/repo/target/debug/deps/relalg-67e41d87c16509e3.d: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs Cargo.toml

/root/repo/target/debug/deps/librelalg-67e41d87c16509e3.rmeta: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs Cargo.toml

crates/relalg/src/lib.rs:
crates/relalg/src/relation.rs:
crates/relalg/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
