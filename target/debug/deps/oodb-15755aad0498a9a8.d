/root/repo/target/debug/deps/oodb-15755aad0498a9a8.d: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs

/root/repo/target/debug/deps/oodb-15755aad0498a9a8: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs

crates/oodb/src/lib.rs:
crates/oodb/src/builder.rs:
crates/oodb/src/database.rs:
crates/oodb/src/error.rs:
crates/oodb/src/oid.rs:
crates/oodb/src/schema.rs:
crates/oodb/src/undo.rs:
crates/oodb/src/value.rs:
