/root/repo/target/debug/deps/xsql_repro-2486d6bcf8c45fa1.d: src/lib.rs

/root/repo/target/debug/deps/libxsql_repro-2486d6bcf8c45fa1.rlib: src/lib.rs

/root/repo/target/debug/deps/libxsql_repro-2486d6bcf8c45fa1.rmeta: src/lib.rs

src/lib.rs:
