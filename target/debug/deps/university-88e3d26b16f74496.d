/root/repo/target/debug/deps/university-88e3d26b16f74496.d: tests/university.rs Cargo.toml

/root/repo/target/debug/deps/libuniversity-88e3d26b16f74496.rmeta: tests/university.rs Cargo.toml

tests/university.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
