/root/repo/target/debug/deps/university-1477cf5be1d7abc8.d: tests/university.rs

/root/repo/target/debug/deps/university-1477cf5be1d7abc8: tests/university.rs

tests/university.rs:
