/root/repo/target/debug/deps/ddl_extensions-0348f481338a9e3a.d: tests/ddl_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libddl_extensions-0348f481338a9e3a.rmeta: tests/ddl_extensions.rs Cargo.toml

tests/ddl_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
