/root/repo/target/debug/deps/errors-978dc7d597b063b6.d: tests/errors.rs Cargo.toml

/root/repo/target/debug/deps/liberrors-978dc7d597b063b6.rmeta: tests/errors.rs Cargo.toml

tests/errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
