/root/repo/target/debug/deps/errors-8726b253fea470e6.d: tests/errors.rs

/root/repo/target/debug/deps/errors-8726b253fea470e6: tests/errors.rs

tests/errors.rs:
