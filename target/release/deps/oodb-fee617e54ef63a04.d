/root/repo/target/release/deps/oodb-fee617e54ef63a04.d: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs

/root/repo/target/release/deps/liboodb-fee617e54ef63a04.rlib: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs

/root/repo/target/release/deps/liboodb-fee617e54ef63a04.rmeta: crates/oodb/src/lib.rs crates/oodb/src/builder.rs crates/oodb/src/database.rs crates/oodb/src/error.rs crates/oodb/src/oid.rs crates/oodb/src/schema.rs crates/oodb/src/undo.rs crates/oodb/src/value.rs

crates/oodb/src/lib.rs:
crates/oodb/src/builder.rs:
crates/oodb/src/database.rs:
crates/oodb/src/error.rs:
crates/oodb/src/oid.rs:
crates/oodb/src/schema.rs:
crates/oodb/src/undo.rs:
crates/oodb/src/value.rs:
