/root/repo/target/release/deps/xsql-74fb3c5d25364c2b.d: crates/xsql/src/lib.rs crates/xsql/src/ast.rs crates/xsql/src/error.rs crates/xsql/src/lexer.rs crates/xsql/src/parser.rs crates/xsql/src/resolve.rs crates/xsql/src/token.rs crates/xsql/src/dump.rs crates/xsql/src/eval/mod.rs crates/xsql/src/eval/bindings.rs crates/xsql/src/eval/cond.rs crates/xsql/src/eval/create.rs crates/xsql/src/eval/method.rs crates/xsql/src/eval/path.rs crates/xsql/src/eval/select.rs crates/xsql/src/eval/update.rs crates/xsql/src/eval/value.rs crates/xsql/src/eval/vars.rs crates/xsql/src/eval/view.rs crates/xsql/src/session.rs crates/xsql/src/typing/mod.rs crates/xsql/src/typing/assign.rs crates/xsql/src/typing/shape.rs crates/xsql/src/typing/strict.rs crates/xsql/src/typing/types.rs crates/xsql/src/unparse.rs

/root/repo/target/release/deps/libxsql-74fb3c5d25364c2b.rlib: crates/xsql/src/lib.rs crates/xsql/src/ast.rs crates/xsql/src/error.rs crates/xsql/src/lexer.rs crates/xsql/src/parser.rs crates/xsql/src/resolve.rs crates/xsql/src/token.rs crates/xsql/src/dump.rs crates/xsql/src/eval/mod.rs crates/xsql/src/eval/bindings.rs crates/xsql/src/eval/cond.rs crates/xsql/src/eval/create.rs crates/xsql/src/eval/method.rs crates/xsql/src/eval/path.rs crates/xsql/src/eval/select.rs crates/xsql/src/eval/update.rs crates/xsql/src/eval/value.rs crates/xsql/src/eval/vars.rs crates/xsql/src/eval/view.rs crates/xsql/src/session.rs crates/xsql/src/typing/mod.rs crates/xsql/src/typing/assign.rs crates/xsql/src/typing/shape.rs crates/xsql/src/typing/strict.rs crates/xsql/src/typing/types.rs crates/xsql/src/unparse.rs

/root/repo/target/release/deps/libxsql-74fb3c5d25364c2b.rmeta: crates/xsql/src/lib.rs crates/xsql/src/ast.rs crates/xsql/src/error.rs crates/xsql/src/lexer.rs crates/xsql/src/parser.rs crates/xsql/src/resolve.rs crates/xsql/src/token.rs crates/xsql/src/dump.rs crates/xsql/src/eval/mod.rs crates/xsql/src/eval/bindings.rs crates/xsql/src/eval/cond.rs crates/xsql/src/eval/create.rs crates/xsql/src/eval/method.rs crates/xsql/src/eval/path.rs crates/xsql/src/eval/select.rs crates/xsql/src/eval/update.rs crates/xsql/src/eval/value.rs crates/xsql/src/eval/vars.rs crates/xsql/src/eval/view.rs crates/xsql/src/session.rs crates/xsql/src/typing/mod.rs crates/xsql/src/typing/assign.rs crates/xsql/src/typing/shape.rs crates/xsql/src/typing/strict.rs crates/xsql/src/typing/types.rs crates/xsql/src/unparse.rs

crates/xsql/src/lib.rs:
crates/xsql/src/ast.rs:
crates/xsql/src/error.rs:
crates/xsql/src/lexer.rs:
crates/xsql/src/parser.rs:
crates/xsql/src/resolve.rs:
crates/xsql/src/token.rs:
crates/xsql/src/dump.rs:
crates/xsql/src/eval/mod.rs:
crates/xsql/src/eval/bindings.rs:
crates/xsql/src/eval/cond.rs:
crates/xsql/src/eval/create.rs:
crates/xsql/src/eval/method.rs:
crates/xsql/src/eval/path.rs:
crates/xsql/src/eval/select.rs:
crates/xsql/src/eval/update.rs:
crates/xsql/src/eval/value.rs:
crates/xsql/src/eval/vars.rs:
crates/xsql/src/eval/view.rs:
crates/xsql/src/session.rs:
crates/xsql/src/typing/mod.rs:
crates/xsql/src/typing/assign.rs:
crates/xsql/src/typing/shape.rs:
crates/xsql/src/typing/strict.rs:
crates/xsql/src/typing/types.rs:
crates/xsql/src/unparse.rs:
