/root/repo/target/release/deps/xsql_repro-1baaea940acd4344.d: src/lib.rs

/root/repo/target/release/deps/libxsql_repro-1baaea940acd4344.rlib: src/lib.rs

/root/repo/target/release/deps/libxsql_repro-1baaea940acd4344.rmeta: src/lib.rs

src/lib.rs:
