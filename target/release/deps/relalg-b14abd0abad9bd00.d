/root/repo/target/release/deps/relalg-b14abd0abad9bd00.d: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs

/root/repo/target/release/deps/librelalg-b14abd0abad9bd00.rlib: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs

/root/repo/target/release/deps/librelalg-b14abd0abad9bd00.rmeta: crates/relalg/src/lib.rs crates/relalg/src/relation.rs crates/relalg/src/render.rs

crates/relalg/src/lib.rs:
crates/relalg/src/relation.rs:
crates/relalg/src/render.rs:
