/root/repo/target/release/deps/xsql_cli-35a41c55b470769c.d: src/bin/xsql-cli.rs

/root/repo/target/release/deps/xsql_cli-35a41c55b470769c: src/bin/xsql-cli.rs

src/bin/xsql-cli.rs:
