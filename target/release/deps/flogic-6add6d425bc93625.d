/root/repo/target/release/deps/flogic-6add6d425bc93625.d: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs

/root/repo/target/release/deps/libflogic-6add6d425bc93625.rlib: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs

/root/repo/target/release/deps/libflogic-6add6d425bc93625.rmeta: crates/flogic/src/lib.rs crates/flogic/src/eval.rs crates/flogic/src/model.rs crates/flogic/src/render.rs crates/flogic/src/term.rs crates/flogic/src/translate.rs

crates/flogic/src/lib.rs:
crates/flogic/src/eval.rs:
crates/flogic/src/model.rs:
crates/flogic/src/render.rs:
crates/flogic/src/term.rs:
crates/flogic/src/translate.rs:
