/root/repo/target/release/deps/datagen-fa257a83296261b8.d: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs

/root/repo/target/release/deps/libdatagen-fa257a83296261b8.rlib: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs

/root/repo/target/release/deps/libdatagen-fa257a83296261b8.rmeta: crates/datagen/src/lib.rs crates/datagen/src/figure1.rs crates/datagen/src/nobel.rs crates/datagen/src/university.rs

crates/datagen/src/lib.rs:
crates/datagen/src/figure1.rs:
crates/datagen/src/nobel.rs:
crates/datagen/src/university.rs:
