//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace wires
//! `proptest` to this path crate. It keeps the same surface the tests
//! were written against — the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, range/tuple/regex-literal
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::option::of`, `Just`, `any::<bool>()`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig`, `TestCaseError`
//! — but with a deliberately simpler engine:
//!
//! * generation is a deterministic splitmix64 stream seeded from the
//!   test's module path and case index (reproducible across runs);
//! * there is **no shrinking** — a failing case reports its inputs via
//!   the panic message of the assertion that fired;
//! * the regex-literal strategy supports the fragment the tests use
//!   (`.{m,n}`, `[a-z]{m,n}`, literal runs), not full regex.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// The next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Seeds a per-case generator from the test's identity. Exposed for the
/// `proptest!` macro expansion.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a cloneable recipe for drawing values.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value: 'static;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F: Fn(Self::Value) -> U + 'static>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
    {
        BoxedStrategy::new(move |rng| f(self.gen_value(rng)))
    }

    /// Recursive strategies: `self` is the leaf; `f` builds one level of
    /// branching on top of an inner strategy. `depth` bounds the
    /// nesting; `_size`/`_branch` are accepted for API compatibility.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let rec = f(cur);
            let l = leaf.clone();
            cur = BoxedStrategy::new(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    l.gen_value(rng)
                } else {
                    rec.gen_value(rng)
                }
            });
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy::new(move |rng| self.gen_value(rng))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + 'static>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// String literals act as regex strategies in proptest; this shim
// supports the fragment the tests use.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

mod regex {
    use super::TestRng;

    enum Atom {
        Any,
        Class(Vec<char>),
        Lit(char),
    }

    /// Characters `.` draws from: printable ASCII plus a few multibyte
    /// code points so byte-offset handling gets exercised.
    const ANY_EXTRA: &[char] = &['é', 'Ω', '→', '字', '\t'];

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // ']'
                    assert!(!set.is_empty(), "empty character class in `{pattern}`");
                    Atom::Class(set)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional {m,n} / {n} quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            out.push((atom, min, max));
        }
        out
    }

    pub(super) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse(pattern) {
            let n = if max > min {
                min + rng.below(max - min + 1)
            } else {
                min
            };
            for _ in 0..n {
                match &atom {
                    Atom::Any => {
                        // Mostly printable ASCII, occasionally multibyte.
                        if rng.below(16) == 0 {
                            out.push(ANY_EXTRA[rng.below(ANY_EXTRA.len())]);
                        } else {
                            out.push((0x20 + rng.below(0x5f) as u8) as char);
                        }
                    }
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Strategy combinator modules (`prop::collection` etc.)
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
        assert!(len.start < len.end, "empty length range");
        BoxedStrategy::new(move |rng: &mut TestRng| {
            let n = len.start + rng.below(len.end - len.start);
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{BoxedStrategy, TestRng};

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select from empty list");
        BoxedStrategy::new(move |rng: &mut TestRng| options[rng.below(options.len())].clone())
    }
}

/// Option strategies.
pub mod option {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// `None` or `Some(inner)`, roughly 1:3 like proptest's default.
    pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy::new(move |rng: &mut TestRng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.gen_value(rng))
            }
        })
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng| rng.next_u64() & 1 == 0)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy::new(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

// ---------------------------------------------------------------------
// Test runner types
// ---------------------------------------------------------------------

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` deterministic cases.
/// No shrinking: the case index and inputs appear in failure messages
/// through the assertion macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __proptest_rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options = vec![$($crate::Strategy::boxed($strat)),+];
        $crate::union(options)
    }};
}

/// Uniform union of boxed strategies (backs [`prop_oneof!`]).
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty());
    BoxedStrategy::new(move |rng| {
        let i = rng.below(options.len());
        options[i].gen_value(rng)
    })
}

/// The glob-import surface tests expect (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_fragment_shapes() {
        let mut rng = crate::rng_for("shape", 0);
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::gen_value(&".{0,200}", &mut rng);
            assert!(t.chars().count() <= 200);
        }
    }

    #[test]
    fn determinism() {
        let a = Strategy::gen_value(&(0u8..10, -5i64..5), &mut crate::rng_for("d", 3));
        let b = Strategy::gen_value(&(0u8..10, -5i64..5), &mut crate::rng_for("d", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: args bind, assertions return Err.
        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0u8..10, 1..8), b in any::<bool>()) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10), "out of range: {:?}", v);
            let n = if b { 1usize } else { 2 };
            prop_assert_eq!(n * 2 / n, 2);
        }

        #[test]
        fn oneof_and_recursive(x in prop_oneof![Just(0usize), 1usize..4].prop_recursive(
            2, 8, 2, |inner| inner.prop_map(|v| v + 10)
        )) {
            prop_assert!(x < 4 || (10..24).contains(&x), "got {}", x);
        }
    }
}
