//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build container has no network access to crates.io, so the
//! workspace wires `rand` to this path crate. The generator is a
//! deterministic splitmix64 stream: same seed, same sequence, which is
//! all the datagen crate requires (its fixtures are seeded and asserted
//! against exact object counts). Distribution quality is secondary —
//! modulo reduction bias is accepted.

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Element types `gen_range` can draw (subset of
/// `rand::distributions::uniform::SampleUniform`). Implemented
/// generically so integer-literal ranges infer their type from the use
/// site, exactly as with the real crate.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = (hi - lo) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the standard double-from-u64 trick.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic; statistically fine for fixtures.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(20i64..66);
            assert!((20..66).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
        }
        let mut trues = 0;
        for _ in 0..1000 {
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (300..700).contains(&trues),
            "gen_bool badly skewed: {trues}"
        );
    }
}
