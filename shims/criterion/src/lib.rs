//! Offline stand-in for the subset of the `criterion` crate this
//! workspace's benches use.
//!
//! The build container cannot reach crates.io, so the workspace wires
//! `criterion` to this path crate. It keeps the bench files compiling
//! and runnable (`cargo bench` executes each closure a few times and
//! prints wall-clock medians) but performs none of criterion's
//! statistics, warm-up calibration, or report generation. Treat the
//! numbers as smoke-test output, not measurements.

use std::time::{Duration, Instant};

/// Identifies a benchmark within a group (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, recording a handful of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        self.samples.sort();
        self.samples.get(self.samples.len() / 2).copied()
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API
    /// compatibility; this shim always takes a small fixed number).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id.id, &mut b);
        self
    }

    /// Runs one benchmark with no parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        self.report(name, &mut b);
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            // Keep runs short regardless of the requested sample_size:
            // this shim is a smoke harness, not a statistics engine.
            samples: Vec::with_capacity(3),
            iters_per_sample: 1,
        }
    }

    fn report(&self, id: &str, b: &mut Bencher) {
        match b.median() {
            Some(t) => println!("{}/{}: median {:?}", self.name, id, t),
            None => println!("{}/{}: no samples", self.name, id),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
