//! Quickstart: build the Figure 1 database of the paper and run the
//! queries of §3 against it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use datagen::figure1_db;
use relalg::render_table;
use xsql::Session;

fn main() {
    let mut s = Session::new(figure1_db());

    let queries = [
        (
            "People living in New York (query form of §3.1)",
            "SELECT X FROM Person X WHERE X.Residence.City['newyork']",
        ),
        (
            "Names of family members of uniSQL's president",
            "SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]",
        ),
        (
            "Engines installed in employee-owned automobiles",
            "SELECT Z FROM Employee X, Automobile Y \
             WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
        ),
        (
            "Employees with a family member over 20 (§3.2)",
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
        ),
        (
            "Company names with employee salaries — a relation (query (5))",
            "SELECT X.Name, W.Salary FROM Company X WHERE X.Divisions.Employees[W]",
        ),
    ];

    for (title, q) in queries {
        println!("-- {title}");
        println!("   {q}");
        match s.query(q) {
            Ok(rel) => println!("{}", render_table(&rel, s.db().oids())),
            Err(e) => println!("   error: {e}\n"),
        }
    }
}
