//! Bootstrapping a database from nothing but XSQL statements — the DDL
//! extensions (`CREATE CLASS`, `CREATE OBJECT`, `ADD SIGNATURE`) plus
//! dump/restore round-tripping.
//!
//! ```sh
//! cargo run --example bootstrap
//! ```

use oodb::Database;
use relalg::render_table;
use xsql::{dump_script, Session};

fn main() {
    let mut s = Session::new(Database::new());
    let script = "
        -- a small library domain, declared entirely in XSQL
        CREATE CLASS Author;
        CREATE CLASS Book;
        CREATE CLASS Novel AS SUBCLASS OF Book;
        ALTER CLASS Author ADD SIGNATURE Name => String;
        ALTER CLASS Book ADD SIGNATURE Title => String;
        ALTER CLASS Book ADD SIGNATURE WrittenBy => Author;
        ALTER CLASS Book ADD SIGNATURE Year => Numeral;
        ALTER CLASS Author ADD SIGNATURE Influences =>> Author;

        CREATE OBJECT leguin CLASS Author SET Name = 'Ursula K. Le Guin';
        CREATE OBJECT borges CLASS Author SET Name = 'Jorge Luis Borges';
        CREATE OBJECT dispossessed CLASS Novel
            SET Title = 'The Dispossessed', WrittenBy = leguin, Year = 1974;
        CREATE OBJECT aleph CLASS Book
            SET Title = 'The Aleph', WrittenBy = borges, Year = 1945;
        UPDATE CLASS Author SET leguin.Influences = borges;
    ";
    s.run_script(script).unwrap();

    println!("-- Novels and their authors:");
    let r = s
        .query("SELECT T, N FROM Novel B WHERE B.Title[T] and B.WrittenBy.Name[N]")
        .unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("-- Authors influencing authors of post-1950 books:");
    let r = s
        .query(
            "SELECT N FROM Book B WHERE B.Year > 1950 \
             and B.WrittenBy.Influences.Name[N]",
        )
        .unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("-- EXPLAIN (typing report):");
    if let xsql::Outcome::Explained { report } = s
        .run("EXPLAIN SELECT B FROM Book B WHERE B.WrittenBy[A] and A.Name['x']")
        .unwrap()
    {
        println!("{report}");
    }

    println!("-- Dump, restore into a fresh session, re-query:");
    let (dump, _) = dump_script(s.db()).unwrap();
    println!("(dump is {} lines of XSQL)\n", dump.lines().count());
    let mut fresh = Session::new(Database::new());
    fresh.run_script(&dump).unwrap();
    let r = fresh
        .query("SELECT T FROM Book B WHERE B.WrittenBy.Name['Jorge Luis Borges'] and B.Title[T]")
        .unwrap();
    println!("{}", render_table(&r, fresh.db().oids()));
    assert!(fresh.db().check_conformance().is_empty());
    println!("restored database conforms to its schema ✓");
}
