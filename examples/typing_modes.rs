//! The §6 typing spectrum on the Nobel-Prize database: liberal vs
//! strict well-typing, exemptions, and the Theorem 6.1 optimization.
//!
//! ```sh
//! cargo run --example typing_modes
//! ```

use datagen::{figure1_scaled, nobel_db, Figure1Params};
use oodb::Database;
use xsql::ast::Stmt;
use xsql::eval::{self, Ctx, EvalOptions};
use xsql::typing::{analyze, theorem61_ranges, Exemptions, OccId, Verdict};
use xsql::{parse, resolve_stmt};

fn resolved(db: &mut Database, src: &str) -> xsql::ast::SelectQuery {
    let stmt = parse(src).unwrap();
    match resolve_stmt(db, &stmt).unwrap() {
        Stmt::Select(q) => q,
        _ => unreachable!(),
    }
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::StrictlyWellTyped { .. } => "STRICTLY well-typed",
        Verdict::LiberallyWellTyped { .. } => "LIBERALLY well-typed (not strictly)",
        Verdict::IllTyped => "ILL-TYPED",
        Verdict::OutsideFragment { .. } => "outside the typable fragment",
    }
}

fn main() {
    println!("== The Nobel-Prize query (§1) ==\n");
    let mut db = nobel_db();
    let q = resolved(&mut db, "SELECT X WHERE X.WonNobelPrize");
    println!("   SELECT X WHERE X.WonNobelPrize\n");
    println!(
        "   conservative (no exemptions): {}",
        verdict_name(&analyze(&db, &q, &Exemptions::none()))
    );
    let ex = Exemptions::none().exempt(OccId { path: 0, step: 0 }, 0);
    println!(
        "   exempting WonNobelPrize's 0th argument: {}",
        verdict_name(&analyze(&db, &q, &ex))
    );
    let q2 = resolved(&mut db, "SELECT X FROM Scientist X WHERE X.WonNobelPrize");
    println!(
        "   naming the class (FROM Scientist X): {}\n",
        verdict_name(&analyze(&db, &q2, &Exemptions::none()))
    );

    println!("== An ill-typed query returns no answers regardless of data ==\n");
    let q3 = resolved(&mut db, "SELECT X FROM City X WHERE X.WonNobelPrize");
    println!("   SELECT X FROM City X WHERE X.WonNobelPrize");
    println!(
        "   verdict: {}\n",
        verdict_name(&analyze(&db, &q3, &Exemptions::none()))
    );

    println!("== Theorem 6.1 on a scaled Figure 1 database ==\n");
    // The optimization is measured against the paper's own baseline:
    // the naive §3.4 semantics, which instantiates every variable over
    // the whole active domain. Theorem 6.1 lets it instantiate only
    // within the ranges A(X) of a coherent type assignment.
    let mut db = figure1_scaled(&Figure1Params {
        companies: 2,
        ..Figure1Params::default()
    });
    let src = "SELECT M FROM Vehicle X WHERE M.President[P] and X.Manufacturer[M]";
    let q = resolved(&mut db, src);
    println!("   {src}");
    println!("   database: {} individuals\n", db.individual_count());
    let naive = EvalOptions::naive();
    let ctx = Ctx::new(&db, &naive);
    let plain = eval::select::eval_to_relation(&ctx, &q).unwrap();
    let w_plain = ctx.work_done();
    let ranges = theorem61_ranges(&db, &q, &Exemptions::none())
        .unwrap()
        .expect("strictly well-typed");
    println!(
        "   ranges: X in {} vehicles, M in {} companies, P in {} persons",
        ranges["X"].len(),
        ranges["M"].len(),
        ranges["P"].len()
    );
    let ctx = Ctx::with_ranges(&db, &naive, &ranges);
    let typed = eval::select::eval_to_relation(&ctx, &q).unwrap();
    let w_typed = ctx.work_done();
    assert_eq!(plain, typed);
    // And the nested-loop engine with sideways information passing —
    // the strategy strict typing proves admissible (§6.2) — beats both.
    let opts = EvalOptions::default();
    let ctx = Ctx::new(&db, &opts);
    let piped = eval::select::eval_to_relation(&ctx, &q).unwrap();
    let w_piped = ctx.work_done();
    assert_eq!(plain, piped);
    println!(
        "   answers: {} (identical under all evaluations)\n",
        plain.len()
    );
    println!("   naive (§3.4, full domains):        {w_plain:>12} ticks");
    println!("   naive + Theorem 6.1 ranges:        {w_typed:>12} ticks");
    println!("   pipelined nested loops (§6.2):     {w_piped:>12} ticks");
    println!(
        "   Theorem 6.1 speedup over naive:    {:.1}x",
        w_plain as f64 / w_typed as f64
    );
}
