//! An interactive XSQL shell over the Figure 1 database.
//!
//! ```sh
//! cargo run --example xsql_shell
//! ```
//!
//! Statements end with `;`. Try:
//!
//! ```text
//! SELECT X FROM Person X WHERE X.Residence.City['austin'];
//! SELECT #X WHERE TurboEngine subclassOf #X;
//! UPDATE CLASS Employee SET kim1.Salary = 45000;
//! ```
//!
//! Meta-commands: `\classes`, `\methods`, `\quit`.

use datagen::figure1_db;
use relalg::render_table;
use std::io::{self, BufRead, Write};
use xsql::{Outcome, Session};

fn main() {
    let mut s = Session::new(figure1_db());
    println!("XSQL shell over the Figure 1 database — `;` ends a statement; \\classes, \\methods, \\dump, \\quit.");
    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("xsql> ");
    io::stdout().flush().unwrap();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        match trimmed {
            "\\quit" | "\\q" => break,
            "\\classes" => {
                let names: Vec<String> = s.db().classes().map(|c| s.db().render(c)).collect();
                println!("{}", names.join(", "));
                print!("xsql> ");
                io::stdout().flush().unwrap();
                continue;
            }
            "\\dump" => {
                match xsql::dump_script(s.db()) {
                    Ok((script, skipped)) => {
                        println!("{script}");
                        if skipped > 0 {
                            println!("-- {skipped} entries are UNRESTORABLE comments");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                print!("xsql> ");
                io::stdout().flush().unwrap();
                continue;
            }
            "\\methods" => {
                let names: Vec<String> =
                    s.db().method_objects().map(|m| s.db().render(m)).collect();
                println!("{}", names.join(", "));
                print!("xsql> ");
                io::stdout().flush().unwrap();
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !buffer.trim_end().ends_with(';') {
            print!("  ... ");
            io::stdout().flush().unwrap();
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        match s.run(&stmt) {
            Ok(Outcome::Relation(rel)) => {
                println!("{}", render_table(&rel, s.db().oids()))
            }
            Ok(Outcome::Created { oids }) => {
                println!("created {} object(s):", oids.len());
                for o in oids.iter().take(20) {
                    println!("  {}", s.db().render(*o));
                }
            }
            Ok(Outcome::ViewCreated { class, count }) => {
                println!(
                    "view {} created with {count} object(s)",
                    s.db().render(class)
                );
            }
            Ok(Outcome::MethodDefined { class, method }) => {
                println!(
                    "method {} defined on {}",
                    s.db().render(method),
                    s.db().render(class)
                );
            }
            Ok(Outcome::Updated { entries }) => println!("updated {entries} entr(ies)"),
            Ok(Outcome::ClassCreated { class }) => {
                println!("class {} created", s.db().render(class));
            }
            Ok(Outcome::ObjectCreated { oid }) => {
                println!("object {} created", s.db().render(oid));
            }
            Ok(Outcome::SignatureAdded { class, method }) => {
                println!(
                    "signature {} added to {}",
                    s.db().render(method),
                    s.db().render(class)
                );
            }
            Ok(Outcome::Prepared { name }) => println!("prepared `{name}`"),
            Ok(Outcome::Explained { report }) => println!("{report}"),
            Ok(Outcome::Stats { report }) => println!("{report}"),
            Ok(Outcome::TransactionStarted) => println!("transaction started"),
            Ok(Outcome::TransactionCommitted) => println!("transaction committed"),
            Ok(Outcome::TransactionRolledBack) => println!("transaction rolled back"),
            Ok(Outcome::WalEnabled) => println!("WAL enabled"),
            Ok(Outcome::WalDisabled) => println!("WAL disabled"),
            Ok(Outcome::Checkpointed) => println!("checkpoint written"),
            Err(e) => println!("error: {e}"),
        }
        print!("xsql> ");
        io::stdout().flush().unwrap();
    }
    println!("bye");
}
