//! Theorem 3.1 live: translate XSQL queries to first-order F-logic,
//! print the formulas in molecular notation, and verify both sides give
//! the same answers on the Figure 1 database.
//!
//! ```sh
//! cargo run --example flogic_semantics
//! ```

use datagen::figure1_db;
use flogic::{evaluate, render_formula, translate_select, FStructure};
use xsql::ast::Stmt;
use xsql::{eval_select, parse, resolve_stmt, EvalOptions};

fn main() {
    let mut db = figure1_db();
    let queries = [
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
        "SELECT #X WHERE TurboEngine subclassOf #X",
        "SELECT X FROM Person X WHERE not X.FamMembers",
        "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']",
    ];
    println!("Theorem 3.1: every §3-form XSQL query has an equivalent");
    println!("first-order F-logic query. P(φ) below, then both answers.\n");
    for src in queries {
        println!("XSQL   : {src}");
        let stmt = parse(src).unwrap();
        let Stmt::Select(q) = resolve_stmt(&mut db, &stmt).unwrap() else {
            unreachable!()
        };
        let fq = translate_select(&db, &q).unwrap();
        let heads: Vec<String> = fq.head.iter().map(|(n, _)| format!("?{n}")).collect();
        println!(
            "F-logic: {{ ({}) | {} }}",
            heads.join(", "),
            render_formula(&db, &fq.body)
        );

        let xsql_rel = eval_select(&db, &q, &EvalOptions::default()).unwrap();
        let m = FStructure::new(&db);
        let flogic_rows = evaluate(&m, &fq);
        let xsql_rows: std::collections::BTreeSet<Vec<oodb::Oid>> =
            xsql_rel.iter().cloned().collect();
        assert_eq!(xsql_rows, flogic_rows, "Theorem 3.1 violated!");
        let rendered: Vec<String> = flogic_rows
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&o| db.render(o))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .collect();
        println!(
            "answer : {{{}}}  (identical from both evaluations)\n",
            rendered.join("; ")
        );
    }
}
