//! Views and object creation (§4): the CompSalaries view (9), querying
//! through its id-function (10), the grouped-beneficiaries query (8),
//! and view-update translation.
//!
//! ```sh
//! cargo run --example company_views
//! ```

use datagen::figure1_db;
use relalg::render_table;
use xsql::{Outcome, Session};

fn main() {
    let mut s = Session::new(figure1_db());

    println!("== View (9): CompSalaries ==\n");
    let ddl = "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
               SIGNATURE CompName => String, DivName => String, Salary => Numeral \
               SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary \
               FROM Company X OID FUNCTION OF X,W \
               WHERE X.Divisions[Y].Employees[W]";
    println!("{ddl}\n");
    match s.run(ddl).unwrap() {
        Outcome::ViewCreated { count, .. } => println!("materialized {count} view objects\n"),
        o => println!("{o:?}"),
    }
    let r = s
        .query("SELECT V.CompName, V.DivName, V.Salary FROM CompSalaries V")
        .unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== Query (10): views and non-views in one query ==\n");
    let q = "SELECT X.Manufacturer.Name FROM Automobile X, Employee W \
             WHERE CompSalaries(X.Manufacturer, W).Salary > 35000";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== Query (8): grouped beneficiaries ({{W}} plays GROUP BY) ==\n");
    let q = "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y \
             OID FUNCTION OF Y \
             WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]";
    println!("   {q}");
    match s.run(q).unwrap() {
        Outcome::Created { oids } => {
            for o in oids {
                let beneficiaries = s.db().oids().find_sym("Beneficiaries").unwrap();
                let v = s.db().value(o, beneficiaries, &[]).unwrap();
                let members: Vec<String> = v
                    .map(|v| v.members().map(|m| s.db().render(m)).collect())
                    .unwrap_or_default();
                println!("   {} -> {:?}", s.db().render(o), members);
            }
            println!();
        }
        o => println!("{o:?}"),
    }

    println!("== View update translated to the database (§4.2) ==\n");
    s.run(
        "CREATE VIEW EmpSalaries AS SUBCLASS OF Object \
         SIGNATURE Salary => Numeral \
         SELECT Salary = W.Salary FROM Employee W OID FUNCTION OF W \
         WHERE W.Salary",
    )
    .unwrap();
    let kim = s.db().oids().find_sym("kim1").unwrap();
    let f = s.db().oids().find_sym("EmpSalaries").unwrap();
    let vobj = s.db().oids().find_func(f, &[kim]).unwrap();
    let raised = s.db_mut().oids_mut().int(33000);
    println!("raising kim1's salary to 33000 through view object EmpSalaries(kim1)…");
    s.update_view("EmpSalaries", vobj, "Salary", raised)
        .unwrap();
    let r = s
        .query("SELECT X, W FROM Employee X WHERE X.Salary[W]")
        .unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== The ill-defined query of §4.1 (a run-time error) ==\n");
    let bad = "SELECT CompName = X.Name, EmpSalary = W.Salary FROM Company X \
               OID FUNCTION OF X WHERE X.Divisions.Employees[W]";
    println!("   {bad}");
    match s.run(bad) {
        Err(e) => println!("   rejected as expected: {e}"),
        Ok(o) => println!("   unexpectedly succeeded: {o:?}"),
    }
}
