//! Schema browsing — the capability the paper's introduction leads
//! with: "the user needs not know anything about the system tables that
//! store schema information." Class variables, attribute variables, and
//! the `subclassOf` predicate explore the schema in XSQL itself.
//!
//! ```sh
//! cargo run --example schema_browsing
//! ```

use datagen::figure1_db;
use relalg::render_table;
use xsql::Session;

fn main() {
    let mut s = Session::new(figure1_db());

    println!("== The engine-types example of the introduction ==\n");

    println!("-- All engine types that exist (pure schema query):");
    let q = "SELECT #X WHERE #X subclassOf Engines";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("-- Engine types currently installed in some vehicle:");
    let q = "SELECT #C FROM Vehicle V, #C E \
             WHERE V.Drivetrain.Engine[E] and #C subclassOf PistonEngine";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== Query (4): superclasses of TurboEngine ==\n");
    let q = "SELECT #X WHERE TurboEngine subclassOf #X";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== Query (3): attribute variables ==\n");
    println!("-- Which attribute connects a person to the city 'newyork'?");
    let q = "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("-- Which attributes of an automobile lead to a numeral? (browse)");
    let q = "SELECT Y FROM Automobile X, Numeral N WHERE X.Drivetrain.Engine.\"Y[N]";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== The §3.1 template: classes of objects with a property ==\n");
    let q = "SELECT #X FROM #X Y WHERE Y.Color['red']";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("== Path variables (sketched extension): reach a city at any depth ==\n");
    let q = "SELECT X FROM Company X WHERE X.*P.City['austin']";
    println!("   {q}");
    let r = s.query(q).unwrap();
    println!("{}", render_table(&r, s.db().oids()));
}
