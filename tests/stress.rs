//! Cross-engine consistency battery on scaled Figure 1 instances: a
//! broad set of queries spanning every language feature, evaluated with
//! the pipelined engine, with Theorem 6.1 ranges when available, and —
//! on a tiny instance — against the naive §3.4 specification.

use datagen::{figure1_scaled, Figure1Params};
use oodb::Database;
use xsql::ast::Stmt;
use xsql::typing::{theorem61_ranges, Exemptions};
use xsql::{eval_select, eval_select_ranged, parse, resolve_stmt, EvalOptions};

const BATTERY: &[&str] = &[
    "SELECT X FROM Person X WHERE X.Age > 40",
    "SELECT X FROM Employee X WHERE X.Salary >= 100000",
    "SELECT X, Y FROM Company X, Division Y WHERE X.Divisions[Y]",
    "SELECT W FROM Company X WHERE X.Divisions.Employees.Salary[W] and W > 150000",
    "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]",
    "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 60",
    "SELECT X FROM Employee X WHERE X.FamMembers.Age all< 18",
    "SELECT X FROM Employee X WHERE X.Residence.City =all X.FamMembers.Residence.City",
    "SELECT X FROM Automobile X WHERE X.Drivetrain.Engine.HPpower > 300",
    "SELECT #C FROM #C E WHERE E.HPpower > 350",
    "SELECT Y FROM Employee X WHERE X.\"Y.City['city1']",
    "SELECT X FROM Division X WHERE X.Function['sales'] and count(X.Employees) >= 5",
    "SELECT X FROM Company X WHERE avg(X.Divisions.Employees.Age) >= 18 \
     or X.Name['Company 0']",
    "SELECT X FROM Person X WHERE not X.OwnedVehicles and X.Age < 25",
    "SELECT X FROM Employee X WHERE X.OwnedVehicles.Color containsEq {'red'}",
    "SELECT X FROM Employee X WHERE X.OwnedVehicles.Color subsetEq {'red', 'blue', 'green', 'black', 'white', 'silver'}",
    "SELECT X FROM Company X WHERE 10000 <all (SELECT W FROM Division Y \
     WHERE X.Divisions[Y].Manager.Salary[W])",
    "SELECT X.Name FROM Company X WHERE X.Divisions.Employees.Salary some> 190000",
    "SELECT X FROM Person X WHERE X.*P.HPpower",
    "SELECT D FROM Division D WHERE D.Manager.Age > 60 \
     UNION SELECT D FROM Division D WHERE D.Manager.Age < 25",
    "SELECT X FROM Employee X MINUS SELECT Y FROM Division D WHERE D.Manager[Y]",
];

fn resolved(db: &mut Database, src: &str) -> Option<xsql::ast::SelectQuery> {
    let stmt = parse(src).unwrap();
    match resolve_stmt(db, &stmt).unwrap() {
        Stmt::Select(q) => Some(q),
        _ => None, // UNION/MINUS handled at session level; skip here
    }
}

#[test]
fn pipelined_vs_typed_on_scaled_instance() {
    let mut db = figure1_scaled(&Figure1Params {
        companies: 4,
        ..Figure1Params::default()
    });
    let opts = EvalOptions::default();
    let mut strict_count = 0;
    for src in BATTERY {
        let Some(q) = resolved(&mut db, src) else {
            continue;
        };
        let plain = eval_select(&db, &q, &opts)
            .unwrap_or_else(|e| panic!("pipelined failed on {src}: {e}"));
        if let Some(ranges) = theorem61_ranges(&db, &q, &Exemptions::none()).unwrap() {
            let typed = eval_select_ranged(&db, &q, &opts, &ranges).unwrap();
            assert_eq!(plain, typed, "typed evaluation changed {src}");
            strict_count += 1;
        }
    }
    assert!(strict_count >= 5, "expected several strictly-typed queries");
}

#[test]
fn session_runs_whole_battery() {
    let mut s = xsql::Session::new(figure1_scaled(&Figure1Params {
        companies: 3,
        ..Figure1Params::default()
    }));
    for src in BATTERY {
        s.query(src)
            .unwrap_or_else(|e| panic!("session failed on {src}: {e}"));
    }
}

#[test]
fn naive_spec_agreement_on_tiny_instance() {
    let mut db = figure1_scaled(&Figure1Params {
        companies: 1,
        divisions_per_company: 1,
        employees_per_division: 3,
        vehicles_per_company: 2,
        cities: 3,
        max_fam_members: 1,
        seed: 7,
    });
    let fast = EvalOptions::default();
    let naive = EvalOptions {
        work_limit: 500_000_000,
        ..EvalOptions::naive()
    };
    for src in BATTERY {
        let Some(q) = resolved(&mut db, src) else {
            continue;
        };
        // Skip the queries whose naive cost explodes combinatorially
        // (3+ free variables over the whole domain).
        let mut vars = std::collections::BTreeSet::new();
        xsql::eval::vars::query_vars(&q, &mut vars);
        if vars.len() > 2 {
            continue;
        }
        let a = eval_select(&db, &q, &fast).unwrap();
        let b =
            eval_select(&db, &q, &naive).unwrap_or_else(|e| panic!("naive failed on {src}: {e}"));
        assert_eq!(a, b, "naive disagrees on {src}");
    }
}

#[test]
fn method_index_preserves_answers_and_reduces_work() {
    // The inverted method index (cf. the paper's [BERT89] reference)
    // must not change any answer, and must shrink the candidate space
    // of head-unbound queries.
    use xsql::eval::{select::eval_to_relation, Ctx};
    let mut db = figure1_scaled(&Figure1Params {
        companies: 5,
        ..Figure1Params::default()
    });
    let queries = [
        "SELECT X WHERE X.HPpower > 200",
        "SELECT X WHERE X.Divisions",
        "SELECT X, W FROM Numeral W WHERE X.CylinderN[W]",
        "SELECT X FROM Person X WHERE X.Salary > 100000",
    ];
    for src in queries {
        let q = resolved(&mut db, src).unwrap();
        let on = EvalOptions::default();
        let off = EvalOptions {
            use_method_index: false,
            ..EvalOptions::default()
        };
        let ctx_on = Ctx::new(&db, &on);
        let r_on = eval_to_relation(&ctx_on, &q).unwrap();
        let w_on = ctx_on.work_done();
        let ctx_off = Ctx::new(&db, &off);
        let r_off = eval_to_relation(&ctx_off, &q).unwrap();
        let w_off = ctx_off.work_done();
        assert_eq!(r_on, r_off, "index changed answers on {src}");
        assert!(
            w_on <= w_off,
            "index increased work on {src}: {w_on} > {w_off}"
        );
    }
}

#[test]
fn method_index_sees_inherited_defaults_and_computed_methods() {
    // Soundness: index-seeded candidates must include objects whose
    // value comes from a class default or a computed method.
    let mut s = xsql::Session::new(datagen::figure1_db());
    // Class default: every Vehicle gets Wheels = 4 via the class object.
    {
        let db = s.db_mut();
        let vehicle = db.oids().find_sym("Vehicle").unwrap();
        let wheels = db.oids_mut().sym("Wheels");
        let four = db.oids_mut().int(4);
        db.set_scalar(vehicle, wheels, &[], four).unwrap();
        let object = db.builtins().object;
        db.add_signature(vehicle, "Wheels", &[], db.builtins().numeral, false)
            .unwrap();
        let _ = object;
    }
    let r = s.query("SELECT X WHERE X.Wheels[4]").unwrap();
    assert_eq!(r.len(), 3); // car1, car2, bike1 — every vehicle inherits
                            // Computed method: defined on Company, invoked head-unbound.
    s.run(
        "ALTER CLASS Company ADD SIGNATURE Kind => String \
         SELECT (Kind @) = 'company' FROM Company X OID X",
    )
    .unwrap();
    let r = s.query("SELECT X WHERE X.Kind['company']").unwrap();
    assert_eq!(r.len(), 1); // uniSQL
}

// ---------------------------------------------------------------------
// Statement-level atomicity under random scripts.
// ---------------------------------------------------------------------

/// A total digest of the observable database state: stored entries,
/// class structure (supers, extents, signatures), individuals and
/// method objects. OID interning is deliberately excluded — the table
/// is append-only and an interned-but-unused OID is unobservable.
fn digest(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (r, m, args, v) in db.state_entries() {
        writeln!(out, "S {r:?} {m:?} {args:?} {v:?}").unwrap();
    }
    for c in db.classes() {
        writeln!(
            out,
            "C {c:?} sup={:?} inst={:?} sigs={:?}",
            db.direct_supers(c),
            db.instances_of(c),
            db.direct_signatures(c)
        )
        .unwrap();
    }
    writeln!(out, "I {:?}", db.individuals().collect::<Vec<_>>()).unwrap();
    writeln!(out, "M {:?}", db.method_objects().collect::<Vec<_>>()).unwrap();
    out
}

fn mix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One random statement — a mix of valid DDL/DML/queries and
/// guaranteed-to-fail statements (parse errors, unknown classes,
/// mid-statement update failures).
fn random_stmt(s: &mut u64) -> String {
    let n = mix(s);
    match n % 13 {
        0 => format!("CREATE CLASS K{}", n % 4),
        1 => format!("CREATE CLASS K{} AS SUBCLASS OF Person", n % 4),
        2 => format!(
            "CREATE OBJECT obj{} CLASS Person SET Age = {}",
            n % 6,
            n % 90
        ),
        3 => format!("CREATE OBJECT obj{} CLASS NoSuchClass", n % 6),
        4 => format!(
            "UPDATE CLASS Employee SET kim1.Salary = {}",
            1000 * (n % 100)
        ),
        // Fails after the first assignment already applied: arithmetic
        // on the non-numeral Name. Exercises mid-statement rollback.
        5 => format!(
            "UPDATE CLASS Employee SET kim1.Salary = {}, \
             kim1.Salary = kim1.Name + 1",
            2000 * (n % 50)
        ),
        6 => format!("SELECT X FROM Person X WHERE X.Age > {}", n % 100),
        7 => "SELECT X FROM NoSuchClass X".into(),
        8 => "SELECT X FROM Person X WHERE X..Name".into(),
        9 => format!("ALTER CLASS Person ADD SIGNATURE Sig{} => Numeral", n % 4),
        10 => format!(
            "CREATE VIEW V{} AS SUBCLASS OF Object SIGNATURE A => Numeral \
             SELECT A = X.Age FROM Person X OID FUNCTION OF X \
             WHERE X.Age > {}",
            n % 3,
            n % 60
        ),
        11 => "COMMIT WORK".into(),  // no open transaction: error
        _ => "ROLLBACK WORK".into(), // no open transaction: error
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(600))]

    /// Any erroring statement leaves the database bit-identical to its
    /// pre-statement state, and evaluation never panics or trips the
    /// default resource budgets.
    #[test]
    fn erroring_statements_leave_db_unchanged(seed in 0u64..1_000_000_000_000) {
        let mut s = seed;
        let mut session = xsql::Session::new(datagen::figure1_db());
        for _ in 0..6 {
            let stmt = random_stmt(&mut s);
            let before = digest(session.db());
            match session.run(&stmt) {
                Ok(_) => {}
                Err(e) => {
                    proptest::prop_assert!(
                        !matches!(
                            e,
                            xsql::XsqlError::Internal(_)
                                | xsql::XsqlError::Budget { .. }
                                | xsql::XsqlError::WorkLimit(_)
                        ),
                        "unexpected engine-limit error on `{}`: {}",
                        stmt,
                        e
                    );
                    proptest::prop_assert_eq!(
                        &before,
                        &digest(session.db()),
                        "db changed across failed `{}`: {}",
                        stmt,
                        e
                    );
                }
            }
        }
    }

    /// `ROLLBACK WORK` restores the exact `BEGIN WORK` snapshot no
    /// matter what ran (or failed) in between, and the session stays
    /// usable afterwards.
    #[test]
    fn rollback_work_restores_begin_snapshot(seed in 0u64..1_000_000_000_000) {
        let mut s = seed;
        let mut session = xsql::Session::new(datagen::figure1_db());
        // A committed prefix outside the transaction.
        for _ in 0..mix(&mut s) % 3 {
            let stmt = random_stmt(&mut s);
            let _ = session.run(&stmt);
        }
        let snapshot = digest(session.db());
        session.run("BEGIN WORK").unwrap();
        proptest::prop_assert!(session.in_transaction());
        for _ in 0..1 + mix(&mut s) % 4 {
            // Keep transaction control out of the random body — a
            // stray COMMIT/ROLLBACK would end the transaction early.
            let stmt = loop {
                let c = random_stmt(&mut s);
                if !c.ends_with("WORK") {
                    break c;
                }
            };
            let _ = session.run(&stmt);
        }
        session.run("ROLLBACK WORK").unwrap();
        proptest::prop_assert!(!session.in_transaction());
        proptest::prop_assert_eq!(&snapshot, &digest(session.db()));
        // Still usable: a plain query succeeds.
        session.query("SELECT X FROM Person X").unwrap();
    }
}

#[test]
fn value_anchored_index_on_string_selector() {
    use xsql::eval::{select::eval_to_relation, Ctx};
    let mut db = figure1_scaled(&Figure1Params {
        companies: 6,
        ..Figure1Params::default()
    });
    // Head-unbound with a ground string selector on the first step:
    // the (method, value) index applies.
    let q = resolved(&mut db, "SELECT X WHERE X.Color['red']").unwrap();
    let on = EvalOptions::default();
    let off = EvalOptions {
        use_method_index: false,
        ..EvalOptions::default()
    };
    let ctx_on = Ctx::new(&db, &on);
    let r_on = eval_to_relation(&ctx_on, &q).unwrap();
    let w_on = ctx_on.work_done();
    let ctx_off = Ctx::new(&db, &off);
    let r_off = eval_to_relation(&ctx_off, &q).unwrap();
    let w_off = ctx_off.work_done();
    assert_eq!(r_on, r_off);
    assert!(!r_on.is_empty());
    assert!(
        w_on * 4 < w_off,
        "anchored index not effective: {w_on} vs {w_off}"
    );
}
