//! Prepared statements (`PREPARE name AS …` / `EXECUTE name (…)`) and
//! the schema-epoch plan cache. See docs/VM.md.
//!
//! Covered here: parameter binding and its typed bind-time errors,
//! plan-cache transparency (same rows cold and warm), invalidation
//! across definitional statements (a schema change must never let a
//! stale plan execute), the interaction with `ROLLBACK WORK` (the
//! prepared map is transaction state), and crash recovery (prepared
//! names are session-local and never WAL-logged, so an `EXECUTE` after
//! recovery fails cleanly and the session stays usable).

use datagen::figure1_db;
use oodb::Database;
use std::path::Path;
use storage::{CrashMode, FaultFs};
use xsql::{EvalOptions, Outcome, Session, XsqlError};

/// A session with the VM and planner pinned on, independent of the
/// `XSQL_VM` / `XSQL_PLANNER` environment.
fn vm_session(db: Database) -> Session {
    Session::with_options(
        db,
        EvalOptions {
            use_vm: true,
            use_planner: true,
            ..EvalOptions::default()
        },
    )
}

fn rows(s: &mut Session, src: &str) -> relalg::Relation {
    match s.run(src).unwrap() {
        Outcome::Relation(r) => r,
        other => panic!("expected rows from `{src}`, got {other:?}"),
    }
}

fn counter(s: &Session, name: &str) -> u64 {
    s.registry().counter(name, &[]).get()
}

#[test]
fn execute_binds_parameters_and_matches_the_direct_query() {
    let mut s = vm_session(figure1_db());
    let out = s
        .run("PREPARE rich AS SELECT X FROM Employee X WHERE X.Salary > ?1")
        .unwrap();
    assert!(matches!(out, Outcome::Prepared { ref name } if name == "rich"));
    for threshold in [0, 30000, 100000, 10_000_000] {
        let got = rows(&mut s, &format!("EXECUTE rich ({threshold})"));
        let want = rows(
            &mut s,
            &format!("SELECT X FROM Employee X WHERE X.Salary > {threshold}"),
        );
        assert_eq!(got, want, "EXECUTE rich ({threshold}) disagrees");
    }
    // Multi-parameter, multi-variable statement through the join path.
    s.run(
        "PREPARE pair AS SELECT X, Y FROM Employee X, Employee Y \
         WHERE X.Salary > Y.Salary and X.Salary > ?1 and Y.Salary > ?2",
    )
    .unwrap();
    let got = rows(&mut s, "EXECUTE pair (20000, 0)");
    let want = rows(
        &mut s,
        "SELECT X, Y FROM Employee X, Employee Y \
         WHERE X.Salary > Y.Salary and X.Salary > 20000 and Y.Salary > 0",
    );
    assert_eq!(got, want);
}

#[test]
fn reexecution_reuses_the_compiled_plan() {
    let mut s = vm_session(figure1_db());
    s.run("PREPARE q AS SELECT X FROM Employee X WHERE X.Salary > ?1")
        .unwrap();
    let hits0 = counter(&s, "xsql_plan_cache_hits_total");
    let first = rows(&mut s, "EXECUTE q (30000)");
    let second = rows(&mut s, "EXECUTE q (30000)");
    assert_eq!(first, second);
    // Both EXECUTEs ran the program compiled at PREPARE (epoch
    // unchanged), and each counts as a plan-cache hit.
    assert_eq!(counter(&s, "xsql_plan_cache_hits_total"), hits0 + 2);
    assert_eq!(counter(&s, "xsql_plan_cache_stale_executions_total"), 0);
}

#[test]
fn mistyped_arguments_fail_at_bind_with_a_named_parameter() {
    let mut s = vm_session(figure1_db());
    s.run("PREPARE by_sal AS SELECT X FROM Employee X WHERE X.Salary > ?1")
        .unwrap();
    s.run("PREPARE by_name AS SELECT X FROM Employee X WHERE X.Name = ?1")
        .unwrap();

    // Numeral-family parameter bound to a string.
    let err = s.run("EXECUTE by_sal ('cheap')").unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, XsqlError::Resolve(_)), "got {err:?}");
    assert!(
        msg.contains("?1") && msg.contains("Salary"),
        "error must name the parameter and attribute: {msg}"
    );

    // String-family parameter bound to a numeral.
    let err = s.run("EXECUTE by_name (42)").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("?1") && msg.contains("Name"),
        "error must name the parameter and attribute: {msg}"
    );

    // Arity mismatches, both directions.
    let err = s.run("EXECUTE by_sal").unwrap_err();
    assert!(err.to_string().contains("1 parameter"), "got {err}");
    let err = s.run("EXECUTE by_sal (1, 2)").unwrap_err();
    assert!(err.to_string().contains("got 2"), "got {err}");

    // A failed bind must not poison the statement: a correct EXECUTE
    // still runs.
    let got = rows(&mut s, "EXECUTE by_sal (30000)");
    let want = rows(&mut s, "SELECT X FROM Employee X WHERE X.Salary > 30000");
    assert_eq!(got, want);
}

#[test]
fn parameters_are_rejected_outside_a_prepare_body() {
    let mut s = vm_session(figure1_db());
    let err = s
        .run("SELECT X FROM Employee X WHERE X.Salary > ?1")
        .unwrap_err();
    assert!(
        err.to_string().contains("PREPARE"),
        "error should point at PREPARE: {err}"
    );
}

#[test]
fn prepare_rejects_nested_prepare_and_explain() {
    let mut s = vm_session(figure1_db());
    assert!(s
        .run("PREPARE a AS PREPARE b AS SELECT X FROM Employee X")
        .is_err());
    assert!(s
        .run("PREPARE a AS EXPLAIN SELECT X FROM Employee X")
        .is_err());
    let err = s.run("EXECUTE nosuch (1)").unwrap_err();
    assert!(
        err.to_string().contains("unknown prepared statement"),
        "got {err}"
    );
}

#[test]
fn definitional_statements_invalidate_prepared_plans() {
    let mut s = vm_session(figure1_db());
    s.run("PREPARE q AS SELECT X FROM Employee X WHERE X.Salary > ?1")
        .unwrap();
    let before = rows(&mut s, "EXECUTE q (30000)");
    let inval0 = counter(&s, "xsql_plan_cache_invalidations_total");

    // A definitional statement bumps the schema epoch; the prepared
    // plan must be recompiled, never executed stale.
    s.run("CREATE CLASS Scratch").unwrap();
    let after = rows(&mut s, "EXECUTE q (30000)");
    assert_eq!(before, after, "recompiled plan changed the result");
    assert_eq!(
        counter(&s, "xsql_plan_cache_invalidations_total"),
        inval0 + 1,
        "epoch bump must be observed as an invalidation"
    );
    assert_eq!(counter(&s, "xsql_plan_cache_stale_executions_total"), 0);

    // A schema change that affects the statement itself: adding a
    // subclass changes the Employee extent's class closure.
    s.run("CREATE CLASS Intern AS SUBCLASS OF Employee")
        .unwrap();
    s.run("CREATE OBJECT intern1 CLASS Intern SET Salary = 99000")
        .unwrap();
    let got = rows(&mut s, "EXECUTE q (30000)");
    let want = rows(&mut s, "SELECT X FROM Employee X WHERE X.Salary > 30000");
    assert_eq!(got, want, "EXECUTE must see the post-DDL world");
    assert!(got.len() > before.len(), "the new Intern must be found");
    assert_eq!(counter(&s, "xsql_plan_cache_stale_executions_total"), 0);
}

#[test]
fn transparent_plan_cache_hits_on_warm_text_and_invalidates_on_ddl() {
    let mut s = vm_session(figure1_db());
    let src = "SELECT X FROM Employee X WHERE X.Salary > 30000";
    let m0 = counter(&s, "xsql_plan_cache_misses_total");
    let h0 = counter(&s, "xsql_plan_cache_hits_total");
    let cold = rows(&mut s, src);
    assert_eq!(counter(&s, "xsql_plan_cache_misses_total"), m0 + 1);
    // Warm: same statement, whitespace-normalized text.
    let warm = rows(&mut s, "SELECT X   FROM Employee X WHERE X.Salary > 30000");
    assert_eq!(cold, warm);
    assert_eq!(counter(&s, "xsql_plan_cache_hits_total"), h0 + 1);
    assert!(s.registry().gauge("xsql_plan_cache_size", &[]).get() >= 1);

    let i0 = counter(&s, "xsql_plan_cache_invalidations_total");
    s.run("CREATE CLASS Scratch2").unwrap();
    let again = rows(&mut s, src);
    assert_eq!(cold, again);
    assert_eq!(counter(&s, "xsql_plan_cache_invalidations_total"), i0 + 1);
    assert_eq!(counter(&s, "xsql_plan_cache_stale_executions_total"), 0);
}

#[test]
fn rollback_work_restores_the_prepared_map() {
    let mut s = vm_session(figure1_db());
    s.run("PREPARE keep AS SELECT X FROM Employee X WHERE X.Salary > ?1")
        .unwrap();
    let keep_before = rows(&mut s, "EXECUTE keep (30000)");

    s.run("BEGIN WORK").unwrap();
    s.run("PREPARE temp AS SELECT X FROM Person X WHERE X.Age >= ?1")
        .unwrap();
    // In-transaction EXECUTE of an in-transaction PREPARE works.
    let got = rows(&mut s, "EXECUTE temp (34)");
    let want = rows(&mut s, "SELECT X FROM Person X WHERE X.Age >= 34");
    assert_eq!(got, want);
    // Shadow an existing name inside the transaction.
    s.run("PREPARE keep AS SELECT X FROM Person X WHERE X.Age >= ?1")
        .unwrap();
    s.run("ROLLBACK WORK").unwrap();

    // The in-transaction PREPARE is gone …
    let err = s.run("EXECUTE temp (34)").unwrap_err();
    assert!(
        err.to_string().contains("unknown prepared statement"),
        "got {err}"
    );
    // … and the shadowed name is restored to its pre-transaction body.
    let keep_after = rows(&mut s, "EXECUTE keep (30000)");
    assert_eq!(keep_before, keep_after);

    // COMMIT keeps in-transaction preparations.
    s.run("BEGIN WORK").unwrap();
    s.run("PREPARE temp2 AS SELECT X FROM Person X WHERE X.Age >= ?1")
        .unwrap();
    s.run("COMMIT WORK").unwrap();
    let got = rows(&mut s, "EXECUTE temp2 (34)");
    let want = rows(&mut s, "SELECT X FROM Person X WHERE X.Age >= 34");
    assert_eq!(got, want);
}

const DIR: &str = "/db";

fn open(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        Default::default(),
    )
}

#[test]
fn execute_after_crash_recovery_fails_cleanly_and_session_stays_usable() {
    let fs = FaultFs::new();
    let mut s = open(&fs).unwrap();
    s.run("CREATE CLASS Thing").unwrap();
    s.run("ALTER CLASS Thing ADD SIGNATURE Num => Numeral")
        .unwrap();
    s.run("CREATE OBJECT t1 CLASS Thing SET Num = 7").unwrap();
    s.run("PREPARE q AS SELECT X FROM Thing X WHERE X.Num > ?1")
        .unwrap();
    assert_eq!(rows(&mut s, "EXECUTE q (0)").len(), 1);
    drop(s);

    fs.crash(CrashMode::TornTail);
    let mut recovered = open(&fs).unwrap();
    // Prepared statements are session-local and never WAL-logged: the
    // recovered session has no `q`, and says so without damage.
    let err = recovered.run("EXECUTE q (0)").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("unknown prepared statement") && msg.contains("re-PREPARE"),
        "got {msg}"
    );
    // The data survived; the session is fully usable and re-preparing
    // works.
    assert_eq!(
        rows(&mut recovered, "SELECT X FROM Thing X WHERE X.Num > 0").len(),
        1
    );
    recovered
        .run("PREPARE q AS SELECT X FROM Thing X WHERE X.Num > ?1")
        .unwrap();
    assert_eq!(rows(&mut recovered, "EXECUTE q (0)").len(), 1);
}
