//! Parallel evaluation: bit-identity with sequential evaluation, clean
//! cooperative aborts (work limit, budgets, deadline, cancellation)
//! across the worker pool, and the regression test for the budgeted
//! id-term head scan (the `IdTerm::Func` branch of `walk_path`).
//!
//! See `docs/PARALLELISM.md` for the design and the determinism
//! argument these tests pin down.

use datagen::{figure1_db, figure1_scaled, Figure1Params};
use oodb::Database;
use std::time::{Duration, Instant};
use xsql::ast::Stmt;
use xsql::{
    eval_select, parse, resolve_stmt, CancelFlag, EvalBudget, EvalOptions, Session, XsqlError,
};

fn run(db: &mut Database, src: &str, opts: &EvalOptions) -> xsql::XsqlResult<relalg::Relation> {
    let stmt = parse(src).unwrap();
    let Stmt::Select(q) = resolve_stmt(db, &stmt).unwrap() else {
        panic!("not a select")
    };
    eval_select(db, &q, opts)
}

fn with_parallelism(n: usize) -> EvalOptions {
    EvalOptions {
        parallelism: n,
        ..EvalOptions::default()
    }
}

/// The queries used by the identity tests: multi-variable joins, path
/// selectors, negation, aggregates — shapes where the outermost
/// partition interacts with every downstream evaluator feature.
const SCALED_QUERIES: &[&str] = &[
    "SELECT X, W FROM Company X, Employee W WHERE X.Divisions.Employees[W] and W.Salary > 30000",
    "SELECT X FROM Employee X WHERE X.OwnedVehicles[V] and V.Color['red']",
    "SELECT X.Name FROM Company X WHERE X.Divisions.Employees.Salary some> 90000",
    "SELECT X FROM Person X WHERE not X.OwnedVehicles",
    "SELECT X FROM Employee X WHERE count(X.FamMembers) >= 2",
    "SELECT X, Y FROM Vehicle X, Company Y WHERE X.Manufacturer[Y]",
];

#[test]
fn parallel_matches_sequential_on_scaled_db() {
    let mut db = figure1_scaled(&Figure1Params::default());
    for src in SCALED_QUERIES {
        let seq = run(&mut db, src, &with_parallelism(1)).unwrap();
        for workers in [2, 4, 8] {
            let par = run(&mut db, src, &with_parallelism(workers)).unwrap();
            assert_eq!(
                par, seq,
                "parallel({workers}) differs from sequential on {src}"
            );
        }
    }
}

#[test]
fn parallelism_exceeding_candidate_count() {
    // More workers than candidates (Figure 1 has 2 companies): the pool
    // is clamped to the candidate count and the result is unchanged.
    let mut db = figure1_db();
    let src = "SELECT X.Name FROM Company X WHERE X.Divisions.Employees[W]";
    let seq = run(&mut db, src, &with_parallelism(1)).unwrap();
    let par = run(&mut db, src, &with_parallelism(64)).unwrap();
    assert_eq!(par, seq);
}

#[test]
fn work_limit_fires_across_workers() {
    // The work limit applies to the statement's *total* ticks, summed
    // over every worker through the shared counters — a query that
    // needs far more than `work_limit` ticks must fail no matter how
    // the ticks are distributed across the pool.
    let mut db = figure1_scaled(&Figure1Params::default());
    let src = SCALED_QUERIES[0];
    for workers in [1, 4] {
        let opts = EvalOptions {
            work_limit: 500,
            ..with_parallelism(workers)
        };
        match run(&mut db, src, &opts) {
            Err(XsqlError::WorkLimit(limit)) => assert_eq!(limit, 500),
            other => panic!("expected WorkLimit at parallelism {workers}, got {other:?}"),
        }
    }
}

#[test]
fn tuple_budget_fires_across_workers() {
    let mut db = figure1_scaled(&Figure1Params::default());
    let src = "SELECT X, W FROM Employee X, Employee W WHERE X.Salary <= W.Salary";
    let opts = EvalOptions {
        budget: EvalBudget {
            max_tuples: 50,
            ..EvalBudget::default()
        },
        ..with_parallelism(4)
    };
    match run(&mut db, src, &opts) {
        Err(XsqlError::Budget { resource, limit }) => {
            assert_eq!(resource, "materialized tuple");
            assert_eq!(limit, 50);
        }
        other => panic!("expected tuple Budget error, got {other:?}"),
    }
}

#[test]
fn pre_tripped_cancel_flag_aborts_parallel_query() {
    let mut db = figure1_scaled(&Figure1Params::default());
    let cancel = CancelFlag::new();
    cancel.cancel();
    let opts = EvalOptions {
        cancel,
        ..with_parallelism(4)
    };
    match run(&mut db, SCALED_QUERIES[0], &opts) {
        Err(XsqlError::Cancelled { reason }) => {
            assert_eq!(reason, "cancelled by client");
        }
        other => panic!("expected client cancellation, got {other:?}"),
    }
}

#[test]
fn expired_deadline_aborts_parallel_query() {
    let mut db = figure1_scaled(&Figure1Params::default());
    let opts = EvalOptions {
        budget: EvalBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..EvalBudget::default()
        },
        ..with_parallelism(4)
    };
    match run(&mut db, SCALED_QUERIES[0], &opts) {
        Err(XsqlError::Cancelled { reason }) => {
            assert_eq!(reason, "statement deadline exceeded");
        }
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
}

#[test]
fn injected_tick_cancellation_aborts_parallel_query() {
    // `cancel_at_tick` fires when the statement's shared tick total
    // reaches k; under parallelism the total accumulates across
    // workers, so a mid-query injection must still surface as a clean
    // cancellation (never a wrong answer or a hang).
    let mut db = figure1_scaled(&Figure1Params::default());
    for k in [1, 7, 100, 1000] {
        let opts = EvalOptions {
            budget: EvalBudget {
                cancel_at_tick: Some(k),
                ..EvalBudget::default()
            },
            ..with_parallelism(4)
        };
        match run(&mut db, SCALED_QUERIES[0], &opts) {
            Err(XsqlError::Cancelled { reason }) => {
                assert!(
                    reason.contains("cancellation injected"),
                    "unexpected reason at k={k}: {reason}"
                );
            }
            other => panic!("expected injected cancellation at k={k}, got {other:?}"),
        }
    }
}

#[test]
fn parallel_session_agrees_with_sequential_session() {
    // End-to-end through `Session::set_parallelism`, the path the CLI
    // `--parallel` flag drives.
    let mut seq = Session::new(figure1_scaled(&Figure1Params::default()));
    let mut par = Session::new(figure1_scaled(&Figure1Params::default()));
    par.set_parallelism(4);
    for src in SCALED_QUERIES {
        let a = seq.query(src).unwrap();
        let b = par.query(src).unwrap();
        assert_eq!(a, b, "sessions disagree on {src}");
    }
}

/// Small extents must not pay pool overhead: below
/// `parallel_min_candidates` the evaluator runs sequentially even when
/// parallelism was requested — no workers spawn, and the profile says
/// so. Above the threshold the pool still engages.
#[test]
fn small_extents_fall_back_to_sequential() {
    // Outside the cost-based planner's fragment (selector variable), so
    // the pipelined engine with its partitioner handles the query.
    let analyze = |mut s: Session, sql: &str| -> String {
        match s.run(&format!("EXPLAIN ANALYZE {sql}")) {
            Ok(xsql::Outcome::Explained { report }) => report,
            other => panic!("expected a report, got {other:?}"),
        }
    };

    // Figure 1's Person extent is far below the default threshold of
    // 64: requesting 4 workers must still run sequentially.
    let small = Session::with_options(
        figure1_db(),
        EvalOptions {
            parallelism: 4,
            ..EvalOptions::default()
        },
    );
    let report = analyze(
        small,
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['austin']",
    );
    assert!(
        report.contains("partition: none (sequential)"),
        "small extent should not partition:\n{report}"
    );
    assert!(!report.contains("worker 0:"), "{report}");

    // The scaled Employee extent (~870) is above the threshold: the
    // same options do spawn workers there.
    let large = Session::with_options(
        figure1_scaled(&Figure1Params::default()),
        EvalOptions {
            parallelism: 4,
            ..EvalOptions::default()
        },
    );
    let report = analyze(
        large,
        "SELECT X FROM Employee X WHERE X.OwnedVehicles[V] and V.Color['red']",
    );
    assert!(report.contains("worker 0:"), "{report}");

    // Pinning the threshold down re-enables partitioning on the small
    // extent — the fallback is the gate, not the extent itself.
    let pinned = Session::with_options(
        figure1_db(),
        EvalOptions {
            parallelism: 4,
            parallel_min_candidates: 2,
            ..EvalOptions::default()
        },
    );
    let report = analyze(
        pinned,
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['austin']",
    );
    assert!(report.contains("worker 0:"), "{report}");
}

/// Regression test for the unbudgeted id-term head scan: the
/// `IdTerm::Func` branch of `walk_path` enumerates every id-term
/// object in the database when the head is not fully bound, and that
/// scan must be subject to `max_binding_set` exactly like the var-head
/// branch. A view materializing one object per employee makes the scan
/// large; a small budget must trip it instead of silently enumerating.
#[test]
fn partially_unbound_func_head_scan_is_budgeted() {
    let mut s = Session::new(figure1_scaled(&Figure1Params::default()));
    let out = s
        .run(
            "CREATE VIEW EmpSal AS SUBCLASS OF Object \
             SIGNATURE Salary => Numeral \
             SELECT Salary = W.Salary FROM Employee W OID FUNCTION OF W",
        )
        .unwrap();
    let xsql::Outcome::ViewCreated { count, .. } = out else {
        panic!("expected view creation, got {out:?}")
    };
    assert!(count > 100, "scaled db should give a large view extent");

    // `V` is bound by nothing but the id-term head itself, so the
    // evaluator must take the candidate-scan branch over every id-term
    // object. With the default (huge) budget the scan succeeds: every
    // employee's own salary appears in their view object.
    let full = s
        .query("SELECT W FROM Employee W WHERE EmpSal(V).Salary = W.Salary")
        .unwrap();
    assert_eq!(full.len(), count);

    // ...and with a budget smaller than the id-term object population
    // it must degrade into a clean Budget error, not an unbounded scan.
    s.set_options(EvalOptions {
        budget: EvalBudget {
            max_binding_set: 50,
            ..EvalBudget::default()
        },
        ..EvalOptions::default()
    });
    match s.query("SELECT W FROM Employee W WHERE EmpSal(V).Salary = W.Salary") {
        Err(XsqlError::Budget { resource, limit }) => {
            assert_eq!(resource, "binding set size");
            assert_eq!(limit, 50);
        }
        other => panic!("expected binding-set Budget error, got {other:?}"),
    }
}
