//! End-to-end serving demos with real processes: a primary `xsql-cli
//! --listen` over a durable store, a `--replica-of` read replica
//! tailing the same directory, a TCP client committing writes under
//! injected disconnects and torn frames, `kill -9` of the primary,
//! restart with crash recovery, and the replica converging to lag 0
//! with every acknowledged write visible. Failover rides the same
//! machinery: `kill -9` the primary, `--promote` the replica, write on
//! the new timeline, and rejoin the deposed node as a replica. A
//! SIGKILL landing *mid* SIGTERM-drain must recover the same way.
//!
//! (The ENOSPC-episode variant of this story needs an injectable
//! filesystem and lives in `crates/net/tests/net_chaos.rs`; the
//! seeded promotion sweep is `crates/net/tests/failover_chaos.rs`;
//! real processes on a real disk cover the crash/restart half.)

#![cfg(unix)]

use net::{Client, Frame, NetError, PROTO_VERSION};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_xsql-cli")
}

/// Spawns the CLI and parses the `listening on ADDR (...)` banner.
fn spawn_server(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xsql-cli");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("readable banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .split_whitespace()
        .next()
        .expect("address in banner")
        .to_string();
    (child, addr)
}

fn connect_tok(addr: &str, token: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match Client::connect(addr, token) {
            Ok(mut c) => {
                c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                return c;
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn connect(addr: &str) -> Client {
    connect_tok(addr, "")
}

fn execute_retrying(c: &mut Client, stmt: &str) -> net::Response {
    for _ in 0..1000 {
        match c.execute(stmt) {
            Ok(r) => return r,
            Err(NetError::Server {
                code, retry_after, ..
            }) if code.retryable() => std::thread::sleep(retry_after.max(Duration::from_millis(1))),
            Err(e) => panic!("statement `{stmt}` failed: {e}"),
        }
    }
    panic!("statement `{stmt}` shed forever");
}

fn select_things_tok(addr: &str, token: &str) -> BTreeSet<String> {
    let mut c = connect_tok(addr, token);
    let r = execute_retrying(&mut c, "SELECT X FROM Thing X");
    let set = r.rows.iter().map(|row| row[0].clone()).collect();
    c.goodbye();
    set
}

fn select_things(addr: &str) -> BTreeSet<String> {
    select_things_tok(addr, "")
}

fn terminate(mut child: Child, what: &str) {
    let pid = child.id().to_string();
    let _ = Command::new("kill").args(["-TERM", &pid]).status();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None => {
                assert!(Instant::now() < deadline, "{what} ignored SIGTERM");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn primary_kill9_restart_replica_convergence() {
    let dir = std::env::temp_dir().join(format!("xsql-net-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp dir");

    // Primary over a fresh durable store; replica tailing the same
    // directory over the real filesystem.
    let (primary, paddr) =
        spawn_server(&["--db", "empty", "--open", dir_s, "--listen", "127.0.0.1:0"]);
    let (replica, raddr) = spawn_server(&["--listen", "127.0.0.1:0", "--replica-of", dir_s]);

    // Commit writes under injected client-side faults.
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut torn: BTreeSet<String> = BTreeSet::new();
    {
        let mut c = connect(&paddr);
        execute_retrying(&mut c, "CREATE CLASS Thing");
        for j in 1..=12u32 {
            let name = format!("obj{j}");
            let stmt = format!("CREATE OBJECT {name} CLASS Thing");
            match j % 3 {
                0 => {
                    // Torn frame: half an Execute, then vanish. The
                    // statement must never apply.
                    let mut raw = TcpStream::connect(&paddr).expect("raw conn");
                    raw.write_all(&net::frame::encode(&Frame::Hello {
                        version: PROTO_VERSION,
                        token: String::new(),
                    }))
                    .expect("hello");
                    let exec = net::frame::encode(&Frame::Execute {
                        id: 1,
                        deadline_ms: 0,
                        src: stmt,
                    });
                    let _ = raw.write_all(&exec[..exec.len() / 2]);
                    drop(raw);
                    torn.insert(name);
                }
                1 => {
                    // Disconnect with the statement in flight: fate
                    // unknown, so it is neither required nor forbidden
                    // after recovery.
                    let mut fly = connect(&paddr);
                    let _ = fly.start_execute(&stmt, 0);
                    drop(fly);
                }
                _ => {
                    let r = execute_retrying(&mut c, &stmt);
                    assert!(r.epoch > 0);
                    acked.insert(name);
                }
            }
        }
        c.goodbye();
    }
    assert!(!acked.is_empty());

    // Power loss: SIGKILL the primary mid-life.
    let mut primary = primary;
    primary.kill().expect("kill -9 primary");
    let _ = primary.wait();

    // Restart over the same directory: crash recovery replays the
    // checkpoint + WAL tail.
    let (primary2, paddr2) = spawn_server(&["--open", dir_s, "--listen", "127.0.0.1:0"]);
    let recovered = select_things(&paddr2);
    for name in &acked {
        assert!(
            recovered.contains(name),
            "acked {name} lost across kill -9 (recovered: {recovered:?})"
        );
    }
    for name in &torn {
        assert!(
            !recovered.contains(name),
            "torn-frame {name} must never apply"
        );
    }

    // The replica tails the durable directory and converges: same
    // objects, and the published replication lag reaches 0.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut rc = connect(&raddr);
        let h = rc.ping().expect("replica ping");
        let rows = select_things(&raddr);
        rc.goodbye();
        if h.lag == 0 && rows == recovered {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged: lag {}, rows {rows:?} vs {recovered:?}",
            h.lag
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Replica refuses writes with the typed not-primary redirect.
    {
        let mut rc = connect(&raddr);
        match rc.execute("CREATE OBJECT nope CLASS Thing") {
            Err(NetError::NotPrimary { .. }) => {}
            other => panic!("replica accepted a write: {other:?}"),
        }
        rc.goodbye();
    }

    // Graceful drain on SIGTERM, both processes.
    terminate(primary2, "restarted primary");
    terminate(replica, "replica");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `kill -9` the primary, `--promote` the replica, and keep serving:
/// acked writes survive onto the new timeline, the promoted node
/// reports the bumped generation, and the deposed node rejoins as a
/// replica of the new history. Also measures and prints the failover
/// time (kill → first acked write on the new primary).
#[test]
fn kill9_promote_replica_and_rejoin_old_primary() {
    let dir = std::env::temp_dir().join(format!("xsql-net-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp dir");

    let (primary, paddr) =
        spawn_server(&["--db", "empty", "--open", dir_s, "--listen", "127.0.0.1:0"]);
    // The replica is promotion-capable: PROMOTE is token-gated, and its
    // NotPrimary redirects carry the current leader's address.
    let (replica, raddr) = spawn_server(&[
        "--listen",
        "127.0.0.1:0",
        "--replica-of",
        dir_s,
        "--token",
        "s3",
        "--leader-hint",
        &paddr,
    ]);

    let mut acked: BTreeSet<String> = BTreeSet::new();
    {
        let mut c = connect(&paddr);
        execute_retrying(&mut c, "CREATE CLASS Thing");
        for j in 1..=8u32 {
            let name = format!("obj{j}");
            execute_retrying(&mut c, &format!("CREATE OBJECT {name} CLASS Thing"));
            acked.insert(name);
        }
        c.goodbye();
    }

    // Pre-promotion: the replica redirects writes at the live leader.
    {
        let mut rc = connect_tok(&raddr, "s3");
        match rc.execute("CREATE OBJECT nope CLASS Thing") {
            Err(NetError::NotPrimary { leader_hint }) => assert_eq!(leader_hint, paddr),
            other => panic!("replica accepted a write: {other:?}"),
        }
        rc.goodbye();
    }

    // Wait for the replica to catch up, so promotion has the full log.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut rc = connect_tok(&raddr, "s3");
        let h = rc.ping().expect("replica ping");
        rc.goodbye();
        if h.lag == 0 && select_things_tok(&raddr, "s3") == acked {
            break;
        }
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Power loss on the primary; the clock for failover time starts.
    let mut primary = primary;
    primary.kill().expect("kill -9 primary");
    let _ = primary.wait();
    let killed_at = Instant::now();

    // Promote via the admin CLI (wrong token first: must be refused).
    let refused = Command::new(bin())
        .args(["--promote", &raddr, "--token", "wrong"])
        .output()
        .expect("run --promote");
    assert!(
        !refused.status.success(),
        "promotion with a bad token must fail"
    );
    let out = Command::new(bin())
        .args(["--promote", &raddr, "--token", "s3"])
        .output()
        .expect("run --promote");
    assert!(
        out.status.success(),
        "promotion failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("generation 2"),
        "unexpected promote output: {stdout}"
    );

    // First acked write on the new primary ends the outage window.
    let mut c = connect_tok(&raddr, "s3");
    execute_retrying(&mut c, "CREATE OBJECT after1 CLASS Thing");
    let failover = killed_at.elapsed();
    eprintln!(
        "failover time (kill -9 → first acked write on new primary): {} ms",
        failover.as_millis()
    );
    let h = c.ping().expect("promoted ping");
    assert_eq!(
        h.role,
        net::Role::Primary,
        "promoted node serves as primary"
    );
    assert_eq!(h.generation, 2, "promotion bumped the fencing term");
    c.goodbye();

    // Every pre-kill acked write survived onto the new timeline.
    let rows = select_things_tok(&raddr, "s3");
    for name in &acked {
        assert!(rows.contains(name), "acked {name} lost across failover");
    }
    assert!(rows.contains("after1"));

    // The deposed node rejoins as a replica of the new timeline and
    // converges on the promoted history.
    let (old2, oaddr) = spawn_server(&["--listen", "127.0.0.1:0", "--replica-of", dir_s]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut rc = connect(&oaddr);
        let h = rc.ping().expect("rejoined ping");
        rc.goodbye();
        if h.lag == 0 && select_things(&oaddr) == rows {
            assert_eq!(h.role, net::Role::Replica);
            assert_eq!(h.generation, 2, "the rejoined node adopted the new term");
            break;
        }
        assert!(Instant::now() < deadline, "rejoined node never converged");
        std::thread::sleep(Duration::from_millis(20));
    }

    terminate(old2, "rejoined replica");
    terminate(replica, "promoted primary");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A SIGKILL landing in the middle of a SIGTERM drain must leave
/// nothing worse than a plain `kill -9`: restart recovers every acked
/// write and the replica converges.
#[test]
fn sigkill_mid_sigterm_drain_recovers_and_replica_converges() {
    let dir = std::env::temp_dir().join(format!("xsql-net-middrain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp dir");

    let (primary, paddr) =
        spawn_server(&["--db", "empty", "--open", dir_s, "--listen", "127.0.0.1:0"]);
    let (replica, raddr) = spawn_server(&["--listen", "127.0.0.1:0", "--replica-of", dir_s]);

    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut c = connect(&paddr);
    execute_retrying(&mut c, "CREATE CLASS Thing");
    for j in 1..=6u32 {
        let name = format!("obj{j}");
        execute_retrying(&mut c, &format!("CREATE OBJECT {name} CLASS Thing"));
        acked.insert(name);
    }

    // SIGTERM starts the drain; the held connection keeps it in the
    // grace loop, and the SIGKILL lands mid-drain — after the server
    // printed the drain banner, before it finished.
    let mut primary = primary;
    let pid = primary.id().to_string();
    let _ = Command::new("kill").args(["-TERM", &pid]).status();
    let stderr = primary.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("drain banner before exit")
        .expect("readable drain banner");
    assert!(banner.contains("draining"), "unexpected stderr: {banner}");
    primary.kill().expect("kill -9 mid-drain");
    let _ = primary.wait();
    drop(c);

    // Restart over the same directory: recovery replays the WAL tail.
    let (primary2, paddr2) = spawn_server(&["--open", dir_s, "--listen", "127.0.0.1:0"]);
    let recovered = select_things(&paddr2);
    for name in &acked {
        assert!(
            recovered.contains(name),
            "acked {name} lost across mid-drain SIGKILL (recovered: {recovered:?})"
        );
    }

    // The replica (which outlived both signals) converges on recovery.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut rc = connect(&raddr);
        let h = rc.ping().expect("replica ping");
        let rows = select_things(&raddr);
        rc.goodbye();
        if h.lag == 0 && rows == recovered {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged: lag {}, rows {rows:?} vs {recovered:?}",
            h.lag
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    terminate(primary2, "restarted primary");
    terminate(replica, "replica");
    let _ = std::fs::remove_dir_all(&dir);
}
