//! End-to-end serving demo with real processes: a primary `xsql-cli
//! --listen` over a durable store, a `--replica-of` read replica
//! tailing the same directory, a TCP client committing writes under
//! injected disconnects and torn frames, `kill -9` of the primary,
//! restart with crash recovery, and the replica converging to lag 0
//! with every acknowledged write visible.
//!
//! (The ENOSPC-episode variant of this story needs an injectable
//! filesystem and lives in `crates/net/tests/net_chaos.rs`; real
//! processes on a real disk cover the crash/restart half.)

#![cfg(unix)]

use net::{Client, Frame, NetError, PROTO_VERSION};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_xsql-cli")
}

/// Spawns the CLI and parses the `listening on ADDR (...)` banner.
fn spawn_server(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xsql-cli");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("readable banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .split_whitespace()
        .next()
        .expect("address in banner")
        .to_string();
    (child, addr)
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match Client::connect(addr, "") {
            Ok(mut c) => {
                c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                return c;
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn execute_retrying(c: &mut Client, stmt: &str) -> net::Response {
    for _ in 0..1000 {
        match c.execute(stmt) {
            Ok(r) => return r,
            Err(NetError::Server {
                code, retry_after, ..
            }) if code.retryable() => std::thread::sleep(retry_after.max(Duration::from_millis(1))),
            Err(e) => panic!("statement `{stmt}` failed: {e}"),
        }
    }
    panic!("statement `{stmt}` shed forever");
}

fn select_things(addr: &str) -> BTreeSet<String> {
    let mut c = connect(addr);
    let r = execute_retrying(&mut c, "SELECT X FROM Thing X");
    let set = r.rows.iter().map(|row| row[0].clone()).collect();
    c.goodbye();
    set
}

fn terminate(mut child: Child, what: &str) {
    let pid = child.id().to_string();
    let _ = Command::new("kill").args(["-TERM", &pid]).status();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None => {
                assert!(Instant::now() < deadline, "{what} ignored SIGTERM");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn primary_kill9_restart_replica_convergence() {
    let dir = std::env::temp_dir().join(format!("xsql-net-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp dir");

    // Primary over a fresh durable store; replica tailing the same
    // directory over the real filesystem.
    let (primary, paddr) =
        spawn_server(&["--db", "empty", "--open", dir_s, "--listen", "127.0.0.1:0"]);
    let (replica, raddr) = spawn_server(&["--listen", "127.0.0.1:0", "--replica-of", dir_s]);

    // Commit writes under injected client-side faults.
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut torn: BTreeSet<String> = BTreeSet::new();
    {
        let mut c = connect(&paddr);
        execute_retrying(&mut c, "CREATE CLASS Thing");
        for j in 1..=12u32 {
            let name = format!("obj{j}");
            let stmt = format!("CREATE OBJECT {name} CLASS Thing");
            match j % 3 {
                0 => {
                    // Torn frame: half an Execute, then vanish. The
                    // statement must never apply.
                    let mut raw = TcpStream::connect(&paddr).expect("raw conn");
                    raw.write_all(&net::frame::encode(&Frame::Hello {
                        version: PROTO_VERSION,
                        token: String::new(),
                    }))
                    .expect("hello");
                    let exec = net::frame::encode(&Frame::Execute {
                        id: 1,
                        deadline_ms: 0,
                        src: stmt,
                    });
                    let _ = raw.write_all(&exec[..exec.len() / 2]);
                    drop(raw);
                    torn.insert(name);
                }
                1 => {
                    // Disconnect with the statement in flight: fate
                    // unknown, so it is neither required nor forbidden
                    // after recovery.
                    let mut fly = connect(&paddr);
                    let _ = fly.start_execute(&stmt, 0);
                    drop(fly);
                }
                _ => {
                    let r = execute_retrying(&mut c, &stmt);
                    assert!(r.epoch > 0);
                    acked.insert(name);
                }
            }
        }
        c.goodbye();
    }
    assert!(!acked.is_empty());

    // Power loss: SIGKILL the primary mid-life.
    let mut primary = primary;
    primary.kill().expect("kill -9 primary");
    let _ = primary.wait();

    // Restart over the same directory: crash recovery replays the
    // checkpoint + WAL tail.
    let (primary2, paddr2) = spawn_server(&["--open", dir_s, "--listen", "127.0.0.1:0"]);
    let recovered = select_things(&paddr2);
    for name in &acked {
        assert!(
            recovered.contains(name),
            "acked {name} lost across kill -9 (recovered: {recovered:?})"
        );
    }
    for name in &torn {
        assert!(
            !recovered.contains(name),
            "torn-frame {name} must never apply"
        );
    }

    // The replica tails the durable directory and converges: same
    // objects, and the published replication lag reaches 0.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut rc = connect(&raddr);
        let (_, lag) = rc.ping().expect("replica ping");
        let rows = select_things(&raddr);
        rc.goodbye();
        if lag == 0 && rows == recovered {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged: lag {lag}, rows {rows:?} vs {recovered:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Replica refuses writes with the typed retryable answer.
    {
        let mut rc = connect(&raddr);
        match rc.execute("CREATE OBJECT nope CLASS Thing") {
            Err(NetError::Server { code, .. }) => assert_eq!(code, net::ErrorCode::ReadOnly),
            other => panic!("replica accepted a write: {other:?}"),
        }
        rc.goodbye();
    }

    // Graceful drain on SIGTERM, both processes.
    terminate(primary2, "restarted primary");
    terminate(replica, "replica");
    let _ = std::fs::remove_dir_all(&dir);
}
