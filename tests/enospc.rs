//! ENOSPC graceful degradation, end to end.
//!
//! When the disk fills, the store enters READ-ONLY degraded mode:
//! writers are shed with a typed, retryable error while the statement
//! that hit the wall rolls back cleanly; readers and `STATS` keep
//! serving throughout; and the moment space frees, a probe returns the
//! store to writable — no restart, no lost acknowledgements.

use std::path::Path;
use std::time::Duration;
use storage::fault::FaultFs;
use storage::{StoreConfig, StoreHealth};
use xsql::{EvalOptions, Outcome, Session, XsqlError};

const DIR: &str = "/db";

fn open(fs: &FaultFs) -> Session {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        oodb::Database::new(),
        "empty",
        EvalOptions::default(),
    )
    .expect("open durable session")
}

/// Instant probes so the free-space transition is deterministic.
fn instant_probe() -> StoreConfig {
    StoreConfig {
        probe_min_interval: Duration::ZERO,
        ..StoreConfig::default()
    }
}

fn count(s: &mut Session, class: &str) -> usize {
    s.query(&format!("SELECT X FROM {class} X"))
        .expect("reads keep serving")
        .len()
}

#[test]
fn session_degrades_to_read_only_and_recovers_when_space_frees() {
    let fs = FaultFs::new();
    let mut s = open(&fs);
    s.set_store_config(instant_probe());
    s.run("CREATE CLASS Crate").expect("ddl");
    s.run("ALTER CLASS Crate ADD SIGNATURE Num => Numeral")
        .expect("ddl");
    s.run("CREATE OBJECT kept CLASS Crate SET Num = 1")
        .expect("write before the disk fills");
    assert_eq!(s.store_health(), StoreHealth::Healthy);

    // The disk fills: the write fails with the typed error, rolls back
    // cleanly, and flips the store to degraded read-only.
    fs.set_disk_full(true);
    match s.run("CREATE OBJECT ghost1 CLASS Crate SET Num = 2") {
        Err(XsqlError::DiskFull(_)) => {}
        other => panic!("write on a full disk returned {other:?}"),
    }
    assert_eq!(s.store_health(), StoreHealth::DegradedReadOnly);
    assert_eq!(count(&mut s, "Crate"), 1, "failed write left partial state");

    // Degraded mode sheds further writers fast — after an internal
    // probe confirms the disk is still full — but reads keep serving.
    match s.run("CREATE OBJECT ghost2 CLASS Crate SET Num = 3") {
        Err(XsqlError::DiskFull(_)) => {}
        other => panic!("degraded write returned {other:?}"),
    }
    assert_eq!(count(&mut s, "Crate"), 1);

    // The health gauge is visible in the STATS exposition mid-incident.
    match s.run("STATS") {
        Ok(Outcome::Stats { report }) => {
            assert!(report.contains("store_health 1"), "{report}");
        }
        other => panic!("STATS while degraded: {other:?}"),
    }

    // Space frees: the next write probes, recovers, and commits —
    // within the same process, no restart.
    fs.set_disk_full(false);
    s.run("CREATE OBJECT landed CLASS Crate SET Num = 4")
        .expect("write after space freed");
    assert_eq!(s.store_health(), StoreHealth::Healthy);
    assert_eq!(count(&mut s, "Crate"), 2);

    // Everything acknowledged (and nothing shed) is durable.
    drop(s);
    let mut s = open(&fs);
    assert_eq!(count(&mut s, "Crate"), 2);
    assert_eq!(
        s.query("SELECT X FROM Crate X WHERE X.Num[4]")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        s.query("SELECT X FROM Crate X WHERE X.Num[2]")
            .unwrap()
            .len(),
        0
    );
    assert_eq!(
        s.query("SELECT X FROM Crate X WHERE X.Num[3]")
            .unwrap()
            .len(),
        0
    );
}

/// `STATS` bypasses the transaction poison gate, so an operator can
/// read the health gauge mid-incident even from a wedged session.
#[test]
fn stats_serves_inside_a_poisoned_transaction() {
    let fs = FaultFs::new();
    let mut s = open(&fs);
    s.run("CREATE CLASS T").expect("ddl");
    s.run("BEGIN WORK").expect("begin");
    assert!(
        s.run("CREATE OBJECT bad CLASS Missing").is_err(),
        "poison the txn"
    );
    assert!(s.transaction_poisoned().is_some());
    match s.run("STATS") {
        Ok(Outcome::Stats { report }) => {
            assert!(report.contains("store_health 0"), "{report}");
        }
        other => panic!("STATS inside poisoned txn: {other:?}"),
    }
    s.run("ROLLBACK WORK").expect("rollback");
}

mod service_level {
    use super::*;
    use service::{ExecResult, QueryContext, Service, ServiceConfig, ServiceError};

    fn val(r: &ExecResult) -> i64 {
        let read = match r {
            ExecResult::Read(read) => read,
            o => panic!("expected a read, got {o:?}"),
        };
        let rel = match &read.outcome {
            Outcome::Relation(rel) => rel,
            o => panic!("read produced {o:?}"),
        };
        assert_eq!(rel.len(), 1);
        let oid = rel.iter().next().unwrap()[0];
        read.snapshot.oids().as_number(oid).unwrap() as i64
    }

    /// The full service-level state machine: healthy → degraded
    /// (writers shed with `ReadOnly`, snapshot readers keep serving at
    /// the published epoch, a shed COMMIT keeps its buffer) →
    /// recovered (freed space returns the store to writable without a
    /// restart), and every acknowledged write is durable.
    #[test]
    fn service_sheds_writers_serves_readers_and_recovers() {
        let fs = FaultFs::new();
        {
            let mut s = open(&fs);
            s.run("CREATE CLASS Counter").expect("ddl");
            s.run("ALTER CLASS Counter ADD SIGNATURE Val => Numeral")
                .expect("ddl");
            s.run("CREATE OBJECT c0 CLASS Counter SET Val = 0")
                .expect("seed object");
        }
        let mut session = open(&fs);
        session.set_store_config(instant_probe());
        let svc = Service::start(session, ServiceConfig::default());
        let mut h = svc.connect().expect("connect");
        let ctx = QueryContext::default();
        const READ: &str = "SELECT W FROM Numeral W WHERE c0.Val[W]";

        h.execute("UPDATE CLASS Counter SET c0.Val = 1", &ctx)
            .expect("write while healthy");

        fs.set_disk_full(true);
        match h.execute("UPDATE CLASS Counter SET c0.Val = 2", &ctx) {
            Err(ServiceError::ReadOnly { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("write on a full disk returned {other:?}"),
        }

        // Snapshot-isolated readers keep serving at the published
        // epoch: the shed write is invisible, the acked one is not.
        let r = h.execute(READ, &ctx).expect("read while degraded");
        assert_eq!(val(&r), 1);

        // A transactional COMMIT shed with `ReadOnly` rolled back
        // cleanly and keeps its buffer, so the same COMMIT can be
        // retried once space frees.
        h.execute("BEGIN WORK", &ctx).expect("begin");
        h.execute("UPDATE CLASS Counter SET c0.Val = 3", &ctx)
            .expect("buffered");
        match h.execute("COMMIT WORK", &ctx) {
            Err(ServiceError::ReadOnly { .. }) => {}
            other => panic!("COMMIT on a full disk returned {other:?}"),
        }
        assert!(h.in_transaction(), "shed COMMIT must keep the buffer");

        // Space frees: the buffered transaction commits on retry and a
        // plain write succeeds — same service, no restart.
        fs.set_disk_full(false);
        match h.execute("COMMIT WORK", &ctx) {
            Ok(ExecResult::TxnCommitted(_)) => {}
            other => panic!("retried COMMIT returned {other:?}"),
        }
        h.execute("UPDATE CLASS Counter SET c0.Val = 4", &ctx)
            .expect("write after space freed");
        let r = h.execute(READ, &ctx).expect("read after recovery");
        assert_eq!(val(&r), 4);

        // The incident left its trace in telemetry, and the health
        // gauge is back to healthy.
        let registry = svc.registry();
        assert!(registry.counter_total("storage_disk_full_total") >= 1);
        assert_eq!(registry.gauge_value("store_health"), 0);

        drop(h);
        svc.shutdown().expect("clean shutdown");

        // Acked writes (and only those) are durable across reopen.
        let mut s = open(&fs);
        let rel = s.query(READ).expect("recovered read");
        assert_eq!(rel.len(), 1);
        let oid = rel.iter().next().unwrap()[0];
        assert_eq!(s.db().oids().as_number(oid).unwrap() as i64, 4);
    }
}
