//! Figure 1 fidelity: the schema encodes exactly the IS-A and
//! aggregation structure the figure draws, and the model-level
//! judgments of §2 behave as specified (defined/undefined/inapplicable,
//! default-value inheritance, classes as objects).

use datagen::{figure1_db, figure1_scaled, Figure1Params};
use oodb::{DbError, Oid};

#[test]
fn isa_hierarchy_matches_figure() {
    let db = figure1_db();
    let c = |n: &str| db.oids().find_sym(n).unwrap();
    // Thick arrows of the figure.
    for (sub, sup) in [
        ("Motorbike", "Vehicle"),
        ("Bicycle", "Vehicle"),
        ("Automobile", "Vehicle"),
        ("Employee", "Person"),
        ("PistonEngine", "Engines"),
        ("TwoStrokeEngine", "PistonEngine"),
        ("FourStrokeEngine", "PistonEngine"),
        ("TurboEngine", "FourStrokeEngine"),
        ("DieselEngine", "FourStrokeEngine"),
    ] {
        assert!(
            db.is_strict_subclass(c(sub), c(sup)),
            "{sub} subclassOf {sup}"
        );
    }
    // Non-edges.
    assert!(!db.is_subclass(c("TurboEngine"), c("DieselEngine")));
    assert!(!db.is_subclass(c("Vehicle"), c("Person")));
    // IS-A is acyclic: adding the reverse edge fails.
    let mut db2 = figure1_db();
    let (v, a) = (c("Vehicle"), c("Automobile"));
    assert!(matches!(db2.add_is_a(v, a), Err(DbError::IsACycle { .. })));
}

#[test]
fn attribute_signatures_match_figure() {
    let db = figure1_db();
    let c = |n: &str| db.oids().find_sym(n).unwrap();
    // Scalar vs set-valued (the `*` suffix in the figure).
    let check = |class: &str, attr: &str, set: bool| {
        let sigs = db.all_signatures(c(class));
        let m = c(attr);
        let found = sigs
            .iter()
            .find(|(_, s)| s.method == m && s.arity() == 0)
            .unwrap_or_else(|| panic!("{class}.{attr} missing"));
        assert_eq!(found.1.set_valued, set, "{class}.{attr}");
    };
    check("Person", "Name", false);
    check("Person", "OwnedVehicles", true);
    check("Employee", "Qualifications", true);
    check("Employee", "FamMembers", true);
    check("Company", "Divisions", true);
    check("Division", "Employees", true);
    check("Vehicle", "Manufacturer", false);
    check("PistonEngine", "CylinderN", false);
    // Structural inheritance: Employee sees Person's attributes.
    let emp_sigs = db.all_signatures(c("Employee"));
    assert!(emp_sigs
        .iter()
        .any(|(cls, s)| *cls == c("Person") && s.method == c("Residence")));
}

#[test]
fn defined_undefined_inapplicable() {
    let db = figure1_db();
    let mary = db.oids().find_sym("mary123").unwrap();
    let bike = db.oids().find_sym("bike1").unwrap();
    let name = db.oids().find_sym("Name").unwrap();
    let salary = db.oids().find_sym("Salary").unwrap();
    let manufacturer = db.oids().find_sym("Manufacturer").unwrap();
    // Defined.
    assert!(db.value(mary, name, &[]).unwrap().is_some());
    // Undefined but applicable: bike1 has no Manufacturer value (a
    // null, not an error).
    assert!(db.value(bike, manufacturer, &[]).unwrap().is_none());
    assert!(db.is_applicable(bike, manufacturer, &[]));
    // Inapplicable: Salary on a plain person — the §2 type error.
    assert!(!db.is_applicable(mary, salary, &[]));
    // The value is nevertheless just undefined at the data level
    // (typing is metalogical).
    assert!(db.value(mary, salary, &[]).unwrap().is_none());
}

#[test]
fn default_value_inheritance_from_class_objects() {
    // Classes are objects (§2): give Vehicle a default attribute value;
    // instances inherit it, an explicit value overrides, and a subclass
    // default is more specific.
    let mut db = figure1_db();
    let vehicle = db.oids().find_sym("Vehicle").unwrap();
    let auto = db.oids().find_sym("Automobile").unwrap();
    let wheels = db.oids_mut().sym("DefaultWheels");
    let two = db.oids_mut().int(2);
    let four = db.oids_mut().int(4);
    db.set_scalar(vehicle, wheels, &[], two).unwrap();
    let bike = db.oids().find_sym("bike1").unwrap();
    let car = db.oids().find_sym("car1").unwrap();
    // bike inherits 2 from Vehicle.
    let v = db.value(bike, wheels, &[]).unwrap().unwrap();
    assert_eq!(db.oids().as_number(v.as_scalar().unwrap()), Some(2.0));
    // Automobile declares a more specific default.
    db.set_scalar(auto, wheels, &[], four).unwrap();
    let v = db.value(car, wheels, &[]).unwrap().unwrap();
    assert_eq!(db.oids().as_number(v.as_scalar().unwrap()), Some(4.0));
    // An explicit value on the object wins.
    let three = db.oids_mut().int(3);
    db.set_scalar(car, wheels, &[], three).unwrap();
    let v = db.value(car, wheels, &[]).unwrap().unwrap();
    assert_eq!(db.oids().as_number(v.as_scalar().unwrap()), Some(3.0));
}

#[test]
fn multiple_inheritance_conflict_requires_resolution() {
    // Two incomparable superclasses with different defaults: error
    // until the subclass declares a resolution (Meyer's rule, §6.1).
    let mut db = figure1_db();
    let a = db.define_class("Amphibious", &[]).unwrap();
    let b = db.define_class("Roadworthy", &[]).unwrap();
    let both: Vec<Oid> = vec![a, b];
    let ab = db.define_class("AmphibiousCar", &both).unwrap();
    let m = db.oids_mut().sym("Medium");
    let water = db.oids_mut().str("water");
    let road = db.oids_mut().str("road");
    db.set_scalar(a, m, &[], water).unwrap();
    db.set_scalar(b, m, &[], road).unwrap();
    let duck = db.new_individual("duck1", &[ab]).unwrap();
    assert!(matches!(
        db.value(duck, m, &[]),
        Err(DbError::InheritanceConflict { .. })
    ));
    db.resolve_inheritance(ab, m, a).unwrap();
    let v = db.value(duck, m, &[]).unwrap().unwrap();
    assert_eq!(db.oids().as_str(v.as_scalar().unwrap()), Some("water"));
}

#[test]
fn scaled_instances_respect_schema() {
    let db = figure1_scaled(&Figure1Params {
        companies: 3,
        ..Figure1Params::default()
    });
    let company = db.oids().find_sym("Company").unwrap();
    let employee = db.oids().find_sym("Employee").unwrap();
    assert_eq!(db.instances_of(company).len(), 3);
    assert_eq!(db.instances_of(employee).len(), 3 * 3 * 10);
    // Every division's manager is one of its employees.
    let division = db.oids().find_sym("Division").unwrap();
    let manager = db.oids().find_sym("Manager").unwrap();
    let employees = db.oids().find_sym("Employees").unwrap();
    for d in db.instances_of(division) {
        let m = db.value(d, manager, &[]).unwrap().unwrap();
        let es = db.value(d, employees, &[]).unwrap().unwrap();
        assert!(es.contains(m.as_scalar().unwrap()));
    }
}

#[test]
fn fixture_databases_conform_to_their_schemas() {
    // Theorem 6.1's range restriction is sound on signature-conformant
    // data; all shipped fixtures must conform.
    for (name, db) in [
        ("figure1", figure1_db()),
        (
            "figure1_scaled",
            figure1_scaled(&Figure1Params {
                companies: 2,
                ..Figure1Params::default()
            }),
        ),
        ("nobel", datagen::nobel_db()),
        ("university", datagen::university_db()),
    ] {
        let violations = db.check_conformance();
        assert!(violations.is_empty(), "{name}: {violations:?}");
    }
}
