//! The §2/§6.1 university database end to end: k-ary methods in XSQL
//! queries, polymorphic signatures, and multiple inheritance.

use datagen::university_db;
use xsql::Session;

#[test]
fn kary_method_in_path_expression() {
    // §2: workstudy : semester ==> {student, employee} — invoked in a
    // path expression with an argument.
    let mut s = Session::new(university_db());
    let r = s
        .query("SELECT W FROM Department X WHERE X.(workstudy @ fall92)[W]")
        .unwrap();
    assert_eq!(r.len(), 2); // jane and omar via csDept, omar via mathDept
    let r = s
        .query("SELECT W FROM Department X WHERE X.(workstudy @ spring92)[W]")
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn kary_argument_variable_enumerated_from_stored_state() {
    // The semester argument is a variable bound by FROM; every stored
    // entry participates.
    let mut s = Session::new(university_db());
    let r = s
        .query(
            "SELECT X, S FROM Department X, Semester S \
             WHERE X.(workstudy @ S)",
        )
        .unwrap();
    assert_eq!(r.len(), 3); // (cs,fall), (cs,spring), (math,fall)
}

#[test]
fn polymorphic_earns_dispatches_by_argument() {
    let mut s = Session::new(university_db());
    // Jane earns Pay from a Project and a Grade from a Course — the
    // same method name, §6.1's polymorphism.
    let r = s
        .query("SELECT W FROM Workstudy X WHERE X.(earns @ projDB)[W]")
        .unwrap();
    assert_eq!(r.len(), 1);
    let w = *r.as_set().iter().next().unwrap();
    assert_eq!(s.db().render(w), "pay1200");
    let r = s
        .query("SELECT W FROM Workstudy X WHERE X.(earns @ course101)[W]")
        .unwrap();
    assert_eq!(r.len(), 1);
    let w = *r.as_set().iter().next().unwrap();
    assert_eq!(s.db().render(w), "gradeA");
}

#[test]
fn multiple_inheritance_membership_in_queries() {
    let mut s = Session::new(university_db());
    // Workstudy instances answer both FROM Student and FROM Employee.
    let students = s.query("SELECT X FROM Student X").unwrap();
    let employees = s.query("SELECT X FROM Employee X").unwrap();
    let ws = s.query("SELECT X FROM Workstudy X").unwrap();
    assert_eq!(ws.len(), 2);
    for t in ws.iter() {
        assert!(students.contains(t));
        assert!(employees.contains(t));
    }
    // The intersection query via FROM over both classes.
    let r = s
        .query("SELECT X FROM Student X, Employee Y WHERE X = Y")
        .unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn method_variable_over_kary_methods() {
    // A method variable at arity 1 enumerates the k-ary methods defined
    // on the receiver.
    let mut s = Session::new(university_db());
    let r = s
        .query("SELECT M FROM Department X, Semester S WHERE X.(\"M @ S)")
        .unwrap();
    assert_eq!(r.len(), 1);
    let m = *r.as_set().iter().next().unwrap();
    assert_eq!(s.db().render(m), "workstudy");
}
