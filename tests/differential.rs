//! Differential testing of the evaluation engines: the pipelined
//! nested-loop engine must agree exactly with the naive §3.4
//! specification semantics — on hand-written queries over the Figure 1
//! instance and on property-generated queries over random databases.
//! Every query additionally runs with the method index disabled, with
//! parallel evaluation (4 workers), through the cost-based planner
//! (with and without index probes), and through the bytecode VM (a
//! cold compile and a warm plan-cache hit), which must all produce the
//! same relation bit-for-bit.

use datagen::figure1_db;
use oodb::{Database, DbBuilder, Oid};
use proptest::prelude::*;
use xsql::ast::Stmt;
use xsql::{eval_select, parse, resolve_stmt, EvalOptions, Outcome, Session};

/// Evaluates `src` under every engine configuration that must agree:
/// the pipelined engine with the planner disabled, the naive §3.4
/// reference, the method index disabled (forcing active-domain
/// enumeration), parallel evaluation with and without the index, and
/// the cost-based planner with and without index probes. The planner
/// switch is pinned explicitly on every leg so the crossing does not
/// depend on the `XSQL_PLANNER` environment. Returns labelled
/// relations.
fn engines(db: &mut Database, src: &str) -> Vec<(&'static str, relalg::Relation)> {
    let stmt = parse(src).unwrap();
    let Stmt::Select(q) = resolve_stmt(db, &stmt).unwrap() else {
        panic!("not a select")
    };
    let base = EvalOptions {
        use_planner: false,
        ..EvalOptions::default()
    };
    let configs: Vec<(&'static str, EvalOptions)> = vec![
        ("pipelined", base.clone()),
        ("naive", EvalOptions::naive()),
        (
            "no-method-index",
            EvalOptions {
                use_method_index: false,
                ..base.clone()
            },
        ),
        (
            "parallel(4)",
            EvalOptions {
                parallelism: 4,
                ..base.clone()
            },
        ),
        (
            "parallel(4),no-method-index",
            EvalOptions {
                parallelism: 4,
                use_method_index: false,
                ..base.clone()
            },
        ),
        (
            "planner",
            EvalOptions {
                use_planner: true,
                ..base.clone()
            },
        ),
        (
            "planner,no-method-index",
            EvalOptions {
                use_planner: true,
                use_method_index: false,
                ..base.clone()
            },
        ),
    ];
    let mut results: Vec<(&'static str, relalg::Relation)> = configs
        .into_iter()
        .map(|(label, opts)| (label, eval_select(db, &q, &opts).unwrap()))
        .collect();
    // Bytecode VM legs, driven through a session so the statement takes
    // the real compile → cache → execute path: a cold run (plan-cache
    // miss, fresh lowering) and a warm re-run of the same text (cache
    // hit, same Program object) must both agree bit-for-bit. The
    // session runs on a clone taken *after* the engine legs, so every
    // result value is already interned and OIDs line up exactly.
    let vm_opts = EvalOptions {
        use_planner: true,
        use_vm: true,
        ..EvalOptions::default()
    };
    let mut sess = Session::with_options(db.clone(), vm_opts);
    let mut vm_run = |label: &'static str| {
        let Outcome::Relation(rel) = sess.run(src).unwrap() else {
            panic!("vm leg did not return a relation for {src}")
        };
        (label, rel)
    };
    let cold = vm_run("vm");
    let warm = vm_run("vm-warm");
    results.push(cold);
    results.push(warm);
    results
}

fn assert_all_agree(db: &mut Database, src: &str) {
    let results = engines(db, src);
    let (ref_label, ref_rel) = &results[0];
    for (label, rel) in &results[1..] {
        assert_eq!(rel, ref_rel, "{label} disagrees with {ref_label} on {src}");
    }
}

#[test]
fn figure1_engine_agreement() {
    let mut db = figure1_db();
    for src in [
        "SELECT X FROM Person X WHERE X.Age >= 34",
        "SELECT X, Y FROM Employee X, Automobile Y WHERE X.OwnedVehicles[Y]",
        "SELECT X FROM Person X WHERE X.Residence.City['austin'] or X.Residence.City['newyork']",
        "SELECT X FROM Employee X WHERE not X.OwnedVehicles",
        "SELECT Y FROM Person X WHERE X.\"Y.State['TX']",
        "SELECT #C FROM #C V WHERE V.Color['red']",
        "SELECT X FROM Company X WHERE X.Name =some X.Divisions.Employees.Name",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age all< 30",
        "SELECT X FROM Person X WHERE X.OwnedVehicles.Color subsetEq {'green'}",
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]",
        // Free variable inside a negation: §3.4 quantifies it at the
        // top level, so `not φ(V)` holds if SOME V falsifies φ.
        "SELECT X FROM Employee X WHERE not X.OwnedVehicles[V]",
        // Disjunction that binds different variables per branch.
        "SELECT X FROM Person X WHERE X.OwnedVehicles[V].Color['green'] or X.Salary[W]",
        // Planner-fragment joins: theta (two inequality edges), hash on
        // an equality edge, and hash on a set-membership link combined
        // with an index-range filter.
        "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary > Y.Salary and X.Age < Y.Age",
        "SELECT X, Y FROM Person X, Person Y WHERE X.Age = Y.Age",
        "SELECT X, W FROM Company X, Employee W \
         WHERE X.Divisions.Employees[W] and W.Salary > 30000",
        "SELECT X, Y FROM Person X, Automobile Y WHERE X.OwnedVehicles[Y] and X.Age >= 34",
    ] {
        assert_all_agree(&mut db, src);
    }
}

fn random_db(edges: &[(u8, u8)], labels: &[(u8, bool)], ages: &[(u8, u8)]) -> Database {
    let mut b = DbBuilder::new();
    b.class("Node");
    b.subclass("Special", &["Node"]);
    b.attr("Node", "Age", "Numeral");
    b.set_attr("Node", "Next", "Node");
    b.attr("Node", "Tag", "String");
    let nodes: Vec<Oid> = (0..6)
        .map(|i| {
            let class = if labels.iter().any(|&(x, sp)| sp && x % 6 == i) {
                "Special"
            } else {
                "Node"
            };
            b.obj(&format!("n{i}"), class)
        })
        .collect();
    for &(x, y) in edges {
        b.add_to(nodes[(x % 6) as usize], "Next", nodes[(y % 6) as usize]);
    }
    for &(x, a) in ages {
        // Alternate the numeral spelling: even ages are stored as Ints,
        // odd ages as Reals. `X.Age[n]` must match either spelling, so
        // an anchored (method, value) index lookup keyed on the Int
        // literal would be unsound — this is the corner that forces
        // `head_candidates` onto the unanchored method-index fallback.
        let node = nodes[(x % 6) as usize];
        let age = a % 40;
        if age % 2 == 0 {
            b.set_int(node, "Age", i64::from(age));
        } else {
            let r = b.real(f64::from(age));
            b.set(node, "Age", r);
        }
    }
    for (i, &n) in nodes.iter().enumerate() {
        if i % 2 == 0 {
            b.set_str(n, "Tag", if i % 4 == 0 { "even4" } else { "even2" });
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engines_agree_on_random_databases(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        labels in proptest::collection::vec((0u8..6, any::<bool>()), 0..6),
        ages in proptest::collection::vec((0u8..6, 0u8..40), 0..6),
        qsel in 0usize..14,
        t in 0u8..40,
    ) {
        let mut db = random_db(&edges, &labels, &ages);
        let queries = [
            "SELECT X FROM Node X WHERE X.Next.Next".to_string(),
            "SELECT X, Y FROM Special X, Node Y WHERE X.Next[Y]".to_string(),
            format!("SELECT X FROM Node X WHERE X.Age some> {t} and X.Next"),
            "SELECT X FROM Node X WHERE not X.Next[X]".to_string(),
            format!("SELECT X FROM Node X WHERE X.Next.Age all>= {t}"),
            "SELECT X FROM Node X WHERE X.Tag['even4'] or X.Next.Tag['even2']".to_string(),
            "SELECT X FROM Node X WHERE X.Next.Next[Y] and Y.Next[X]".to_string(),
            format!("SELECT X FROM Node X WHERE count(X.Next) >= 2 and X.Age <= {t}"),
            // Ground numeral selectors, in both the Int and the Real
            // spelling: ages are stored under mixed spellings, so the
            // indexed engine must take the unanchored fallback to agree
            // with the naive and index-free engines.
            format!("SELECT X FROM Node X WHERE X.Age[{t}]"),
            format!("SELECT X FROM Node X WHERE X.Age[{t}.0] and X.Next"),
            // Planner-fragment joins over the mixed Int/Real numeral
            // spellings: the hash join's canonical key must collapse
            // `2` and `2.0` exactly like `elem_eq`, and the equality
            // probe must agree with the naive engine despite spelling.
            "SELECT X, Y FROM Node X, Node Y WHERE X.Age = Y.Age".to_string(),
            format!("SELECT X, Y FROM Special X, Node Y WHERE X.Next[Y] and Y.Age > {t}"),
            format!("SELECT X, Y FROM Node X, Node Y WHERE X.Age > Y.Age and X.Age <= {t}"),
            format!("SELECT X, Y FROM Node X, Special Y WHERE X.Next[Y] and X.Age = {t}.0"),
        ];
        let results = engines(&mut db, &queries[qsel]);
        let (ref_label, ref_rel) = &results[0];
        for (label, rel) in &results[1..] {
            prop_assert_eq!(
                rel, ref_rel,
                "{} disagrees with {} on {}", label, ref_label, &queries[qsel]
            );
        }
    }
}
