//! §4.1: object-creating queries against the Figure 1 database —
//! queries (7), (8), the OID FUNCTION variants, and the ill-defined
//! query.

use datagen::figure1_db;
use oodb::Val;
use xsql::{Outcome, Session, XsqlError};

#[test]
fn oid_function_of_two_vars() {
    // One result object per (company, employee) pair.
    let mut s = Session::new(figure1_db());
    let out = s
        .run(
            "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W \
             WHERE X.Divisions.Employees[W]",
        )
        .unwrap();
    let Outcome::Created { oids } = out else {
        panic!()
    };
    assert_eq!(oids.len(), 2); // (uniSQL, john13), (uniSQL, kim1)
                               // Each created object carries the salary of its employee.
    let m = s.db().oids().find_sym("EmpSalary").unwrap();
    for o in oids {
        let v = s.db().value(o, m, &[]).unwrap().unwrap();
        assert!(v.as_scalar().is_some());
    }
}

#[test]
fn oid_function_of_one_var_when_functional() {
    // §4.1: "If each employee works for only one company" — id-function
    // of W alone, one tuple per employee.
    let mut s = Session::new(figure1_db());
    let out = s
        .run(
            "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF W \
             WHERE X.Divisions.Employees[W]",
        )
        .unwrap();
    let Outcome::Created { oids } = out else {
        panic!()
    };
    assert_eq!(oids.len(), 2);
}

#[test]
fn ill_defined_query_is_runtime_error() {
    // §4.1: OID FUNCTION OF X with per-W salaries — "two conflicting
    // descriptions of the same object … a run-time error".
    let mut s = Session::new(figure1_db());
    let err = s
        .run(
            "SELECT CompName = X.Name, EmpSalary = W.Salary FROM Company X \
             OID FUNCTION OF X WHERE X.Divisions.Employees[W]",
        )
        .unwrap_err();
    assert!(matches!(err, XsqlError::IllDefined(_)), "{err}");
}

#[test]
fn q07_set_attribute_from_path() {
    // Query (7): Employees = Y.Divisions.Employees is a set value.
    let mut s = Session::new(figure1_db());
    let out = s
        .run(
            "SELECT CompName = Y.Name, Employees = Y.Divisions.Employees \
             FROM Company Y OID FUNCTION OF Y",
        )
        .unwrap();
    let Outcome::Created { oids } = out else {
        panic!()
    };
    assert_eq!(oids.len(), 1);
    let m = s.db().oids().find_sym("Employees").unwrap();
    let v = s.db().value(oids[0], m, &[]).unwrap().unwrap();
    assert!(matches!(v, Val::Set(ref set) if set.len() == 2));
}

#[test]
fn q08_grouped_beneficiaries() {
    // Query (8): {W} accumulates retirees and dependents — the paper
    // notes OID FUNCTION OF plays the role of GROUP BY.
    let mut s = Session::new(figure1_db());
    // Add a retiree to uniSQL.
    {
        let db = s.db_mut();
        let person = db.oids().find_sym("Person").unwrap();
        let ret = db.new_individual("retiree1", &[person]).unwrap();
        let uni = db.oids().find_sym("uniSQL").unwrap();
        let m = db.oids_mut().sym("Retirees");
        db.insert_into_set(uni, m, &[], ret).unwrap();
    }
    let out = s
        .run(
            "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y \
             OID FUNCTION OF Y \
             WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]",
        )
        .unwrap();
    let Outcome::Created { oids } = out else {
        panic!()
    };
    assert_eq!(oids.len(), 1);
    let m = s.db().oids().find_sym("Beneficiaries").unwrap();
    let v = s.db().value(oids[0], m, &[]).unwrap().unwrap();
    // retiree1 + tim9 (john's dependent).
    let members: Vec<String> = v.members().map(|o| s.db().render(o)).collect();
    assert_eq!(members.len(), 2, "{members:?}");
}

#[test]
fn created_objects_are_idterm_objects() {
    // The id-function is symbolic: f(x,w) is unique per key and equal
    // on re-runs (the [KW89] construction).
    let mut s = Session::new(figure1_db());
    let run = "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W \
               WHERE X.Divisions.Employees[W]";
    let Outcome::Created { oids: first } = s.run(run).unwrap() else {
        panic!()
    };
    // Named OID functions are generated fresh per anonymous query, so
    // re-running creates new objects under a new function symbol.
    let Outcome::Created { oids: second } = s.run(run).unwrap() else {
        panic!()
    };
    assert_eq!(first.len(), second.len());
    assert!(first.iter().all(|o| !second.contains(o)));
}

#[test]
fn empty_where_creates_per_binding() {
    let mut s = Session::new(figure1_db());
    let out = s
        .run("SELECT PName = X.Name FROM Employee X OID FUNCTION OF X")
        .unwrap();
    let Outcome::Created { oids } = out else {
        panic!()
    };
    assert_eq!(oids.len(), 2); // john13, kim1
}
