//! The engineering DDL extensions: CREATE CLASS / CREATE OBJECT / pure
//! ALTER CLASS ADD SIGNATURE / EXPLAIN — a session bootstrapping a
//! database from nothing but XSQL statements.

use oodb::Database;
use xsql::{Outcome, Session};

#[test]
fn bootstrap_schema_and_data_in_xsql() {
    let mut s = Session::new(Database::new());
    let outs = s
        .run_script(
            "CREATE CLASS Person;
             CREATE CLASS Employee AS SUBCLASS OF Person;
             ALTER CLASS Person ADD SIGNATURE Name => String;
             ALTER CLASS Person ADD SIGNATURE Age => Numeral;
             ALTER CLASS Employee ADD SIGNATURE Salary => Numeral;
             ALTER CLASS Person ADD SIGNATURE Friends =>> Person;
             CREATE OBJECT ann CLASS Person SET Name = 'Ann', Age = 31;
             CREATE OBJECT bob CLASS Employee SET Name = 'Bob', Age = 44, Salary = 52000;
             UPDATE CLASS Person SET ann.Friends = bob;",
        )
        .unwrap();
    assert!(matches!(outs[0], Outcome::ClassCreated { .. }));
    assert!(matches!(outs[2], Outcome::SignatureAdded { .. }));
    assert!(matches!(outs[6], Outcome::ObjectCreated { .. }));

    let r = s.query("SELECT X FROM Person X WHERE X.Age > 40").unwrap();
    assert_eq!(r.len(), 1);
    let r = s
        .query("SELECT W FROM Person X WHERE ann.Friends.Name[W]")
        .unwrap();
    assert_eq!(r.len(), 1);
    // Everything declared through XSQL conforms.
    assert!(s.db().check_conformance().is_empty());
}

#[test]
fn create_class_duplicate_rejected() {
    let mut s = Session::new(Database::new());
    s.run("CREATE CLASS Person").unwrap();
    assert!(s.run("CREATE CLASS Person").is_err());
    assert!(s.run("CREATE CLASS Ghost AS SUBCLASS OF Missing").is_err());
}

#[test]
fn explain_reports_typing() {
    let mut s = Session::new(datagen::figure1_db());
    let Outcome::Explained { report } = s
        .run("EXPLAIN SELECT W FROM Company X WHERE X.Divisions[Y].Manager.Salary[W]")
        .unwrap()
    else {
        panic!()
    };
    assert!(report.contains("strictly well-typed"), "{report}");
    assert!(report.contains("range A(Y)"), "{report}");

    let Outcome::Explained { report } = s
        .run("EXPLAIN SELECT X FROM Person X WHERE X.CylinderN")
        .unwrap()
    else {
        panic!()
    };
    assert!(report.contains("ill-typed"), "{report}");
}

#[test]
fn explain_nobel_is_liberal() {
    let mut s = Session::new(datagen::nobel_db());
    let Outcome::Explained { report } = s.run("EXPLAIN SELECT X WHERE X.WonNobelPrize").unwrap()
    else {
        panic!()
    };
    assert!(report.contains("liberally well-typed"), "{report}");
}

#[test]
fn set_valued_initializer() {
    let mut s = Session::new(Database::new());
    s.run_script(
        "CREATE CLASS Team;
         CREATE CLASS Player;
         ALTER CLASS Team ADD SIGNATURE Roster =>> Player;
         CREATE OBJECT p1 CLASS Player;
         CREATE OBJECT p2 CLASS Player;
         CREATE OBJECT reds CLASS Team SET Roster = p1 union p2;",
    )
    .unwrap();
    let r = s
        .query("SELECT P FROM Player P WHERE reds.Roster[P]")
        .unwrap();
    assert_eq!(r.len(), 2);
}
