//! EXPLAIN goldens for the cost-based planner: join order, join
//! operator and access-path choices are pinned as rendered plan lines,
//! on the Figure 1 database and the scaled benchmark database. A
//! drifting golden means the cost model's decisions actually changed —
//! update deliberately.
//!
//! Result *correctness* of planned queries is covered by the
//! differential suite (`tests/differential.rs`) and the transaction
//! interleavings (`tests/index_rollback.rs`); this file pins the
//! *decisions*.

use datagen::{figure1_db, figure1_scaled, Figure1Params};
use oodb::Database;
use std::sync::Arc;
use telemetry::{Registry, TelemetryConfig};
use xsql::{EvalOptions, Outcome, Session, Strategy};

fn det_session(db: Database) -> Session {
    let opts = EvalOptions {
        strategy: Strategy::Pipelined,
        parallelism: 1,
        use_planner: true,
        use_method_index: true,
        ..EvalOptions::default()
    };
    let mut s = Session::with_options(db, opts);
    s.set_registry(Arc::new(Registry::with_config(TelemetryConfig {
        deterministic: true,
        ..TelemetryConfig::default()
    })));
    s
}

fn explain(s: &mut Session, sql: &str) -> String {
    match s.run(&format!("EXPLAIN {sql}")) {
        Ok(Outcome::Explained { report }) => report,
        other => panic!("EXPLAIN {sql}: expected a report, got {other:?}"),
    }
}

fn analyze(s: &mut Session, sql: &str) -> String {
    match s.run(&format!("EXPLAIN ANALYZE {sql}")) {
        Ok(Outcome::Explained { report }) => report,
        other => panic!("EXPLAIN ANALYZE {sql}: expected a report, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Join-operator and join-order goldens (static EXPLAIN).
// ---------------------------------------------------------------------

#[test]
fn theta_join_golden() {
    // Two inequality edges: no hashable edge exists, so the planner
    // falls back to a nested theta join over cached columns. X drives
    // (tie on extent size broken by FROM order).
    let report = explain(
        &mut det_session(figure1_db()),
        "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary > Y.Salary and X.Age < Y.Age",
    );
    let golden = "\
└─ cost-based plan
   ├─ scan X: Employee extent, 2 objects, est 2 rows
   └─ join Y (nested-theta): X.Salary > Y.Salary and X.Age < Y.Age, est 1 rows";
    assert!(report.contains(golden), "golden drifted:\n{report}");
}

#[test]
fn hash_join_on_set_link_with_range_probe_golden() {
    // The membership link `X.Divisions.Employees[W]` is hashable; the
    // salary predicate narrows W through the ordered index, making the
    // filtered Employee side the cheaper driver — Company joins in by
    // hash, not by re-scanning its extent per W.
    let report = explain(
        &mut det_session(figure1_db()),
        "SELECT X, W FROM Company X, Employee W \
         WHERE X.Divisions.Employees[W] and W.Salary > 30000",
    );
    let golden = "\
└─ cost-based plan
   ├─ scan W: Employee extent, 2 objects, est 1 rows
   ├─ filter W: W.Salary > 30000 via attr-index range
   └─ join X (hash): X.Divisions.Employees[W], est 1 rows";
    assert!(report.contains(golden), "golden drifted:\n{report}");
}

#[test]
fn hash_join_on_equality_edge_golden() {
    let report = explain(
        &mut det_session(figure1_db()),
        "SELECT X, Y FROM Person X, Person Y WHERE X.Age = Y.Age",
    );
    let golden = "\
└─ cost-based plan
   ├─ scan X: Person extent, 5 objects, est 5 rows
   └─ join Y (hash): X.Age = Y.Age, est 5 rows";
    assert!(report.contains(golden), "golden drifted:\n{report}");
}

#[test]
fn index_eq_probe_golden() {
    let report = explain(
        &mut det_session(figure1_db()),
        "SELECT X FROM Person X WHERE X.Age = 41",
    );
    let golden = "\
└─ cost-based plan
   ├─ scan X: Person extent, 5 objects, est 1 rows
   └─ filter X: X.Age = 41 via attr-index eq";
    assert!(report.contains(golden), "golden drifted:\n{report}");
}

#[test]
fn filtered_driver_picks_join_order() {
    // The range filter on X makes Person-side estimates smaller, so X
    // stays the driver and the vehicle side is hash-joined through the
    // membership link.
    let report = explain(
        &mut det_session(figure1_db()),
        "SELECT X, Y FROM Person X, Automobile Y WHERE X.OwnedVehicles[Y] and X.Age >= 34",
    );
    let golden = "\
└─ cost-based plan
   ├─ scan X: Person extent, 5 objects, est 2 rows
   ├─ filter X: X.Age >= 34 via attr-index range
   └─ join Y (hash): X.OwnedVehicles[Y], est 2 rows";
    assert!(report.contains(golden), "golden drifted:\n{report}");
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE: estimated vs. actual rows per step.
// ---------------------------------------------------------------------

#[test]
fn analyze_reports_estimated_and_actual_rows() {
    let report = analyze(
        &mut det_session(figure1_db()),
        "SELECT X, Y FROM Person X, Automobile Y WHERE X.OwnedVehicles[Y] and X.Age >= 34",
    );
    // Estimates and actuals are both present — and allowed to differ
    // (the cost model is a model, the actuals are the truth).
    assert!(
        report.contains("scan X: Person extent, 5 objects, est 2 rows, actual 3 rows"),
        "{report}"
    );
    assert!(
        report.contains("join Y (hash): X.OwnedVehicles[Y], est 2 rows, actual 3 rows"),
        "{report}"
    );
    assert!(report.contains("rows out: 3"), "{report}");
}

#[test]
fn analyze_on_scaled_database_golden() {
    // The benchmark-shaped self-join on the scaled database (300
    // employees): the plan and its actual cardinalities are pinned, so
    // a cost-model or executor change that alters what the benchmark
    // measures shows up here first.
    let report = analyze(
        &mut det_session(figure1_scaled(&Figure1Params::default())),
        "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary > Y.Salary and X.Age < Y.Age",
    );
    assert!(
        report.contains("scan X: Employee extent, 300 objects, est 300 rows, actual 300 rows"),
        "{report}"
    );
    assert!(
        report.contains(
            "join Y (nested-theta): X.Salary > Y.Salary and X.Age < Y.Age, \
             est 30000 rows, actual 20172 rows"
        ),
        "{report}"
    );
    assert!(report.contains("rows out: 20172"), "{report}");
}

// ---------------------------------------------------------------------
// Fragment boundaries and the off switch.
// ---------------------------------------------------------------------

#[test]
fn planner_off_switch_restores_pipelined() {
    let mut s = det_session(figure1_db());
    s.set_options(EvalOptions {
        strategy: Strategy::Pipelined,
        parallelism: 1,
        use_planner: false,
        ..EvalOptions::default()
    });
    let report = explain(&mut s, "SELECT X FROM Person X WHERE X.Age = 41");
    assert!(
        report.contains("strategy: pipelined, parallelism 1"),
        "{report}"
    );
    assert!(!report.contains("cost-based plan"), "{report}");
}

#[test]
fn out_of_fragment_queries_stay_pipelined() {
    let mut s = det_session(figure1_db());
    for q in [
        // Selector variable on a path — not a recognized edge shape.
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['austin']",
        // A two-variable disjunction is not a recognized join edge.
        // (A *one*-variable disjunction would be fine — any 1-var
        // condition is a filter the planner runs through `holds`.)
        "SELECT X, Y FROM Person X, Person Y WHERE X.Age = Y.Age or X.Age > Y.Age",
        // Class variable in FROM.
        "SELECT #C FROM #C V WHERE V.Color['red']",
        // No WHERE clause at all.
        "SELECT X FROM Person X",
    ] {
        let report = explain(&mut s, q);
        assert!(
            report.contains("strategy: pipelined"),
            "expected pipelined fallback on {q}:\n{report}"
        );
        assert!(!report.contains("cost-based plan"), "{q}:\n{report}");
    }
}

#[test]
fn goldens_are_byte_stable() {
    for q in [
        "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary > Y.Salary and X.Age < Y.Age",
        "SELECT X, W FROM Company X, Employee W \
         WHERE X.Divisions.Employees[W] and W.Salary > 30000",
        "SELECT X FROM Person X WHERE X.Age = 41",
    ] {
        let a = analyze(&mut det_session(figure1_db()), q);
        let b = analyze(&mut det_session(figure1_db()), q);
        assert_eq!(a, b, "{q} is not byte-stable");
    }
}
