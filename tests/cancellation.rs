//! Mid-statement cancellation safety: a statement cancelled at *any*
//! evaluation tick leaves the database bit-identical to its
//! pre-statement state (the statement's implicit savepoint covers
//! cancellation exactly like any other failure).
//!
//! The sweep is deterministic, not sampled: for each random mutating
//! statement, `cancel_at_tick` walks k = 1, 2, 3, … until the statement
//! finally completes, so every tick point the statement ever reaches is
//! exercised as a cancellation site.

use oodb::Database;
use xsql::{EvalOptions, Session, XsqlError};

fn digest(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (r, m, args, v) in db.state_entries() {
        writeln!(out, "S {r:?} {m:?} {args:?} {v:?}").unwrap();
    }
    for c in db.classes() {
        writeln!(
            out,
            "C {c:?} sup={:?} inst={:?} sigs={:?}",
            db.direct_supers(c),
            db.instances_of(c),
            db.direct_signatures(c)
        )
        .unwrap();
    }
    writeln!(out, "I {:?}", db.individuals().collect::<Vec<_>>()).unwrap();
    writeln!(out, "M {:?}", db.method_objects().collect::<Vec<_>>()).unwrap();
    out
}

fn mix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One random *mutating* statement (cancelling a pure query is trivially
/// clean; the interesting sites are mid-mutation ticks).
fn mutating_stmt(s: &mut u64) -> String {
    let n = mix(s);
    match n % 6 {
        0 => format!(
            "UPDATE CLASS Employee SET kim1.Salary = {}",
            1000 * (n % 100)
        ),
        1 => format!(
            "CREATE OBJECT nb{} CLASS Person SET Age = {}",
            n % 5,
            n % 90
        ),
        2 => format!("CREATE CLASS K{} AS SUBCLASS OF Person", n % 4),
        3 => format!(
            "CREATE VIEW V{} AS SUBCLASS OF Object SIGNATURE A => Numeral \
             SELECT A = X.Age FROM Person X OID FUNCTION OF X WHERE X.Age > {}",
            n % 3,
            n % 60
        ),
        4 => format!(
            "SELECT Age = X.Age FROM Person X OID FUNCTION OF X \
             WHERE X.Age > {}",
            n % 60
        ),
        _ => format!(
            "ALTER CLASS Person ADD SIGNATURE Sig{} => Numeral \
             SELECT (Sig{} @) = {} FROM Person X OID X",
            n % 4,
            n % 4,
            n % 10
        ),
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]

    #[test]
    fn cancellation_at_every_tick_leaves_db_unchanged(seed in 0u64..1_000_000_000_000) {
        let mut s = seed;
        let mut session = Session::new(datagen::figure1_db());
        // A committed random prefix, so sweeps start from varied states.
        for _ in 0..mix(&mut s) % 3 {
            let stmt = mutating_stmt(&mut s);
            let _ = session.run(&stmt);
        }
        for _ in 0..2 {
            let stmt = mutating_stmt(&mut s);
            let before = digest(session.db());
            let mut k = 1u64;
            loop {
                let mut opts = EvalOptions::default();
                opts.budget.cancel_at_tick = Some(k);
                session.set_options(opts);
                match session.run(&stmt) {
                    Err(XsqlError::Cancelled { .. }) => {
                        proptest::prop_assert_eq!(
                            &before,
                            &digest(session.db()),
                            "db changed across cancellation of `{}` at tick {}",
                            stmt,
                            k
                        );
                        k += 1;
                        proptest::prop_assert!(
                            k <= 2_000_000,
                            "`{}` never completed",
                            stmt
                        );
                    }
                    // The statement ran past tick k: the whole sweep is
                    // done — every tick it reaches was a cancel site.
                    Ok(_) => break,
                    // Statements may also fail for ordinary reasons
                    // (e.g. a duplicate signature); that rollback path
                    // is covered by tests/stress.rs. Still must be
                    // clean, and ends the sweep for this statement.
                    Err(e) => {
                        proptest::prop_assert_eq!(
                            &before,
                            &digest(session.db()),
                            "db changed across failure of `{}`: {}",
                            stmt,
                            e
                        );
                        break;
                    }
                }
            }
            // The follow-up statement runs uncancelled: the session
            // must be fully usable after any number of cancellations.
            session.set_options(EvalOptions::default());
        }
    }
}
