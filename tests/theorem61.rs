//! Theorem 6.1, mechanized on scaled Figure 1 databases:
//!
//! 1. evaluating a strictly well-typed query is *plan-invariant* — any
//!    coherent (assignment, plan) pair yields the same result, equal to
//!    the unrestricted evaluation;
//! 2. instantiation may be *restricted to the ranges* `A(X)` without
//!    changing the answer — and measurably reduces evaluation work.

use datagen::{figure1_scaled, Figure1Params};
use oodb::Database;
use xsql::ast::Stmt;
use xsql::eval::{self, Ctx, EvalOptions};
use xsql::typing::{
    coherent_plans, extract, ranges_from_assignment, search_assignments, strict, Exemptions,
};
use xsql::{eval_select, eval_select_ranged, parse, resolve_stmt};

fn resolved(db: &mut Database, src: &str) -> xsql::ast::SelectQuery {
    let stmt = parse(src).unwrap();
    match resolve_stmt(db, &stmt).unwrap() {
        Stmt::Select(q) => q,
        s => panic!("expected select, got {s:?}"),
    }
}

const QUERIES: &[&str] = &[
    "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]",
    "SELECT W FROM Company X WHERE X.Divisions[Y].Manager.Salary[W] and W > 100000",
    "SELECT X, Y FROM Company X WHERE X.Divisions[D].Employees[Y] and Y.Age > 40",
    "SELECT X FROM Employee X WHERE X.Residence[A].City[C] and X.FamMembers[F] \
     and F.Residence[A2].City[C]",
];

#[test]
fn part1_plan_invariance_and_assignment_invariance() {
    let mut db = figure1_scaled(&Figure1Params {
        companies: 3,
        ..Figure1Params::default()
    });
    for src in QUERIES {
        let q = resolved(&mut db, src);
        let shape = extract(&db, &q).unwrap();
        let baseline = eval_select(&db, &q, &EvalOptions::default()).unwrap();
        // Every valid complete assignment that admits a coherent plan
        // must give the same (restricted) result.
        let mut tried = 0;
        search_assignments(&db, &shape, &mut |asg, _| {
            let plans = coherent_plans(&db, &shape, asg, &Exemptions::none());
            if !plans.is_empty() {
                let ranges = ranges_from_assignment(&db, &shape, asg);
                let restricted =
                    eval_select_ranged(&db, &q, &EvalOptions::default(), &ranges).unwrap();
                assert_eq!(restricted, baseline, "assignment changes answer on {src}");
                tried += 1;
            }
            false // keep enumerating all assignments
        });
        assert!(tried >= 1, "no coherent assignment for {src}");
    }
}

#[test]
fn part2_range_restriction_preserves_answers() {
    let mut db = figure1_scaled(&Figure1Params {
        companies: 4,
        ..Figure1Params::default()
    });
    for src in QUERIES {
        let q = resolved(&mut db, src);
        let shape = extract(&db, &q).unwrap();
        let (asg, _plan) = strict(&db, &shape, &Exemptions::none()).expect("strict");
        let ranges = ranges_from_assignment(&db, &shape, &asg);
        let baseline = eval_select(&db, &q, &EvalOptions::default()).unwrap();
        let restricted = eval_select_ranged(&db, &q, &EvalOptions::default(), &ranges).unwrap();
        assert_eq!(baseline, restricted, "range restriction changes {src}");
    }
}

#[test]
fn range_restriction_reduces_work() {
    // The optimization claim: restricting variable instantiation to
    // A(X) strictly reduces evaluation work on a query whose variable
    // would otherwise range over the whole domain.
    let mut db = figure1_scaled(&Figure1Params {
        companies: 6,
        ..Figure1Params::default()
    });
    // M occurs only in the WHERE clause; untyped evaluation must
    // consider every individual for it at some point.
    let q = resolved(
        &mut db,
        "SELECT M FROM Vehicle X WHERE M.President[P] and X.Manufacturer[M]",
    );
    let shape = extract(&db, &q).unwrap();
    let (asg, _) = strict(&db, &shape, &Exemptions::none()).expect("strict");
    let ranges = ranges_from_assignment(&db, &shape, &asg);

    let opts = EvalOptions::default();
    let ctx_plain = Ctx::new(&db, &opts);
    let r1 = eval::select::eval_to_relation(&ctx_plain, &q).unwrap();
    let w_plain = ctx_plain.work_done();

    let ctx_ranged = Ctx::with_ranges(&db, &opts, &ranges);
    let r2 = eval::select::eval_to_relation(&ctx_ranged, &q).unwrap();
    let w_ranged = ctx_ranged.work_done();

    assert_eq!(r1, r2);
    assert!(
        w_ranged <= w_plain,
        "typed evaluation did more work ({w_ranged} > {w_plain})"
    );
}

#[test]
fn liberal_only_query_admits_no_ranges() {
    // The Nobel query is liberally but not strictly well-typed: the
    // Theorem 6.1 optimization "is not always possible even with queries
    // that are liberally (but not strictly) well-typed".
    let mut db = datagen::nobel_db();
    let q = resolved(&mut db, "SELECT X WHERE X.WonNobelPrize");
    let ranges = xsql::typing::theorem61_ranges(&db, &q, &Exemptions::none()).unwrap();
    assert!(ranges.is_none());
}

#[test]
fn session_query_typed_agrees_with_plain() {
    let mut s = xsql::Session::new(figure1_scaled(&Figure1Params {
        companies: 3,
        ..Figure1Params::default()
    }));
    for src in QUERIES {
        let plain = s.query(src).unwrap();
        let typed = s.query_typed(src).unwrap();
        assert_eq!(plain, typed, "query_typed changed {src}");
    }
    // Liberal-only queries fall back to plain evaluation.
    let mut s = xsql::Session::new(datagen::nobel_db());
    let plain = s.query("SELECT X WHERE X.WonNobelPrize").unwrap();
    let typed = s.query_typed("SELECT X WHERE X.WonNobelPrize").unwrap();
    assert_eq!(plain, typed);
}
