//! Statement- and transaction-level atomicity: every statement runs in
//! an implicit savepoint (an error restores the pre-statement state),
//! and `BEGIN WORK` / `COMMIT WORK` / `ROLLBACK WORK` group statements
//! explicitly. See docs/TRANSACTIONS.md.

use datagen::figure1_db;
use xsql::{Outcome, Session, XsqlError};

fn salary_of(s: &mut Session, who: &str) -> i64 {
    let rel = s
        .query(&format!("SELECT W FROM Numeral W WHERE {who}.Salary[W]"))
        .unwrap();
    assert_eq!(rel.len(), 1);
    let oid = rel.iter().next().unwrap()[0];
    s.db().oids().as_number(oid).unwrap() as i64
}

#[test]
fn failing_update_statement_rolls_back_applied_assignments() {
    let mut s = Session::new(figure1_db());
    let before = salary_of(&mut s, "kim1");
    // First assignment is valid and applied; the second fails mid-
    // statement (arithmetic on the non-numeral Name). The whole
    // statement must undo.
    let err = s
        .run(
            "UPDATE CLASS Employee SET kim1.Salary = 1, \
             kim1.Salary = kim1.Name + 1",
        )
        .unwrap_err();
    assert!(
        !matches!(err, XsqlError::Parse { .. }),
        "should fail at eval"
    );
    assert_eq!(salary_of(&mut s, "kim1"), before);
}

#[test]
fn rollback_work_undoes_committed_statements_of_the_transaction() {
    let mut s = Session::new(figure1_db());
    let before = salary_of(&mut s, "kim1");
    s.run("BEGIN WORK").unwrap();
    assert!(s.in_transaction());
    s.run("UPDATE CLASS Employee SET kim1.Salary = 111111")
        .unwrap();
    s.run("CREATE CLASS Scratch").unwrap();
    s.run("CREATE OBJECT scratch1 CLASS Scratch").unwrap();
    assert_eq!(salary_of(&mut s, "kim1"), 111111);
    let out = s.run("ROLLBACK WORK").unwrap();
    assert!(matches!(out, Outcome::TransactionRolledBack));
    assert!(!s.in_transaction());
    assert_eq!(salary_of(&mut s, "kim1"), before);
    assert!(s
        .db()
        .oids()
        .find_sym("Scratch")
        .is_none_or(|c| !s.db().is_class(c)));
}

#[test]
fn commit_work_keeps_the_transaction() {
    let mut s = Session::new(figure1_db());
    s.run("BEGIN WORK").unwrap();
    s.run("UPDATE CLASS Employee SET kim1.Salary = 123456")
        .unwrap();
    let out = s.run("COMMIT WORK").unwrap();
    assert!(matches!(out, Outcome::TransactionCommitted));
    assert!(!s.in_transaction());
    assert_eq!(salary_of(&mut s, "kim1"), 123456);
}

#[test]
fn statement_failure_inside_transaction_poisons_it_until_rollback() {
    let mut s = Session::new(figure1_db());
    let before = salary_of(&mut s, "kim1");
    s.run("BEGIN WORK").unwrap();
    s.run("UPDATE CLASS Employee SET kim1.Salary = 222222")
        .unwrap();
    // This statement fails; it rolls back and poisons the transaction.
    assert!(s
        .run("UPDATE CLASS Employee SET kim1.Salary = 0, kim1.Salary = kim1.Name + 1")
        .is_err());
    assert!(s.in_transaction());
    assert!(s.transaction_poisoned().is_some());
    // Every further statement — reads, writes, even COMMIT WORK — is
    // rejected with a clear error naming the cause …
    for stmt in [
        "SELECT X FROM Person X",
        "UPDATE CLASS Employee SET kim1.Salary = 1",
        "COMMIT WORK",
        "BEGIN WORK",
    ] {
        let err = s.run(stmt).unwrap_err();
        assert!(
            matches!(err, XsqlError::TransactionPoisoned { .. }),
            "`{stmt}` got {err}"
        );
    }
    assert!(s.in_transaction(), "poisoned transaction stays open");
    // … until ROLLBACK WORK discards the transaction entirely.
    s.run("ROLLBACK WORK").unwrap();
    assert!(!s.in_transaction());
    assert!(s.transaction_poisoned().is_none());
    assert_eq!(salary_of(&mut s, "kim1"), before);
    // The session is fully usable again.
    s.run("BEGIN WORK").unwrap();
    s.run("UPDATE CLASS Employee SET kim1.Salary = 333333")
        .unwrap();
    s.run("COMMIT WORK").unwrap();
    assert_eq!(salary_of(&mut s, "kim1"), 333333);
}

#[test]
fn errors_outside_transactions_do_not_poison() {
    let mut s = Session::new(figure1_db());
    assert!(s
        .run("UPDATE CLASS Employee SET kim1.Salary = kim1.Name + 1")
        .is_err());
    assert!(s.transaction_poisoned().is_none());
    // Auto-commit statements still work.
    s.run("UPDATE CLASS Employee SET kim1.Salary = 7").unwrap();
    assert_eq!(salary_of(&mut s, "kim1"), 7);
}

#[test]
fn transaction_control_errors() {
    let mut s = Session::new(figure1_db());
    assert!(s.run("COMMIT WORK").is_err());
    assert!(s.run("ROLLBACK WORK").is_err());
    s.run("BEGIN WORK").unwrap();
    assert!(s.run("BEGIN WORK").is_err(), "nested BEGIN is rejected");
    s.run("ROLLBACK WORK").unwrap();
    // The bare keywords (without WORK) are accepted too.
    s.run("BEGIN").unwrap();
    s.run("COMMIT").unwrap();
}

#[test]
fn rollback_restores_view_catalog() {
    let mut s = Session::new(figure1_db());
    const VIEW: &str = "CREATE VIEW Adults AS SUBCLASS OF Object \
         SIGNATURE A => Numeral \
         SELECT A = X.Age FROM Person X OID FUNCTION OF X WHERE X.Age > 18";
    s.run("BEGIN WORK").unwrap();
    s.run(VIEW).unwrap();
    s.run("ROLLBACK WORK").unwrap();
    // The view name is free again: re-creating it succeeds.
    let out = s.run(VIEW).unwrap();
    assert!(matches!(out, Outcome::ViewCreated { .. }));
}

#[test]
fn rollback_work_restores_method_definitions() {
    let mut s = Session::new(figure1_db());
    const METHOD: &str = "ALTER CLASS Company ADD SIGNATURE Kind => String \
         SELECT (Kind @) = 'company' FROM Company X OID X";
    s.run("BEGIN WORK").unwrap();
    s.run(METHOD).unwrap();
    assert_eq!(
        s.query("SELECT X WHERE X.Kind['company']").unwrap().len(),
        1
    );
    s.run("ROLLBACK WORK").unwrap();
    // The computed method is gone; the query yields nothing.
    assert_eq!(
        s.query("SELECT X WHERE X.Kind['company']").unwrap().len(),
        0
    );
    // And the signature can be declared again without a clash.
    s.run(METHOD).unwrap();
}

#[test]
fn stale_savepoint_surfaces_as_session_error() {
    // Committing the engine directly underneath an open session
    // transaction makes the transaction's savepoint stale; ROLLBACK WORK
    // must then report the engine error instead of silently no-opping.
    let mut s = Session::new(figure1_db());
    s.run("BEGIN WORK").unwrap();
    s.run("UPDATE CLASS Employee SET kim1.Salary = 1").unwrap();
    s.db_mut().commit();
    let err = s.run("ROLLBACK WORK").unwrap_err();
    assert!(
        matches!(err, XsqlError::Db(oodb::DbError::StaleSavepoint)),
        "unexpected error: {err}"
    );
}
