//! Theorem 3.1, mechanized: for each query in the §3/§5 fragment, the
//! F-logic translation evaluates to exactly the XSQL answer — on the
//! Figure 1 instance, the Nobel database, and (property-based) on random
//! queries over random small databases.

use datagen::{figure1_db, nobel_db};
use flogic::{evaluate, translate_select, FStructure};
use oodb::{Database, DbBuilder, Oid};
use proptest::prelude::*;
use std::collections::BTreeSet;
use xsql::ast::Stmt;
use xsql::{eval_select, parse, resolve_stmt, EvalOptions};

/// Runs one query both ways and compares answer sets.
fn check_equiv(db: &mut Database, src: &str) {
    let stmt = parse(src).unwrap();
    let Stmt::Select(q) = resolve_stmt(db, &stmt).unwrap() else {
        panic!("not a select")
    };
    let xsql_rel = eval_select(db, &q, &EvalOptions::default()).unwrap();
    let xsql_rows: BTreeSet<Vec<Oid>> = xsql_rel.iter().cloned().collect();

    let fq = translate_select(db, &q).unwrap();
    let m = FStructure::new(db);
    let flogic_rows = evaluate(&m, &fq);

    assert_eq!(
        xsql_rows, flogic_rows,
        "Theorem 3.1 violated on query: {src}"
    );
}

#[test]
fn figure1_queries_equivalent() {
    let mut db = figure1_db();
    for q in [
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
        "SELECT X FROM Person X WHERE X.Residence.City =all X.FamMembers.Residence.City",
        "SELECT X, Y FROM Company X WHERE X.Divisions.Employees[Y]",
        "SELECT Z FROM Employee X, Automobile Y WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
        "SELECT #X WHERE TurboEngine subclassOf #X",
        "SELECT X FROM Person X WHERE not X.FamMembers",
        "SELECT X FROM Person X WHERE X.Age > 30 or X.Residence.City['newyork']",
        "SELECT X FROM Employee X WHERE X.OwnedVehicles.Color containsEq {'red', 'blue'}",
        "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']",
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]",
        "SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]",
    ] {
        check_equiv(&mut db, q);
    }
}

#[test]
fn nobel_queries_equivalent() {
    let mut db = nobel_db();
    for q in [
        "SELECT X WHERE X.WonNobelPrize",
        "SELECT X FROM Scientist X WHERE X.WonNobelPrize['peace']",
        "SELECT X, W FROM Organization X WHERE X.WonNobelPrize[W]",
    ] {
        check_equiv(&mut db, q);
    }
}

#[test]
fn kary_method_molecule_equivalent() {
    let mut db = datagen::university_db();
    for q in [
        "SELECT W FROM Department X, Semester S WHERE X.(workstudy @ S)[W]",
        "SELECT X FROM Department X WHERE X.(workstudy @ fall92)",
    ] {
        check_equiv(&mut db, q);
    }
}

#[test]
fn aggregates_rejected_by_translation() {
    let mut db = figure1_db();
    let stmt = parse("SELECT X FROM Employee X WHERE count(X.FamMembers) > 1").unwrap();
    let Stmt::Select(q) = resolve_stmt(&mut db, &stmt).unwrap() else {
        panic!()
    };
    assert!(translate_select(&db, &q).is_err());
}

// ---------------------------------------------------------------------
// Property-based differential testing: random small databases, random
// fragment queries.
// ---------------------------------------------------------------------

/// A small random database over a fixed 2-class schema.
fn random_db(edges: &[(u8, u8)], ages: &[(u8, u8)]) -> Database {
    let mut b = DbBuilder::new();
    b.class("Node");
    b.attr("Node", "Age", "Numeral");
    b.set_attr("Node", "Next", "Node");
    let nodes: Vec<Oid> = (0..8).map(|i| b.obj(&format!("n{i}"), "Node")).collect();
    for &(x, y) in edges {
        let (x, y) = (nodes[(x % 8) as usize], nodes[(y % 8) as usize]);
        b.add_to(x, "Next", y);
    }
    for &(x, a) in ages {
        let n = nodes[(x % 8) as usize];
        b.set_int(n, "Age", i64::from(a % 50));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn theorem_3_1_on_random_graphs(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 0..14),
        ages in proptest::collection::vec((0u8..8, 0u8..50), 0..8),
        qsel in 0usize..6,
        threshold in 0u8..50,
    ) {
        let mut db = random_db(&edges, &ages);
        let queries = [
            "SELECT X FROM Node X WHERE X.Next".to_string(),
            "SELECT X, Y FROM Node X WHERE X.Next[Y]".to_string(),
            "SELECT X FROM Node X WHERE X.Next.Next[X]".to_string(),
            format!("SELECT X FROM Node X WHERE X.Next.Age some> {threshold}"),
            format!("SELECT X FROM Node X WHERE X.Age =all X.Next.Age and X.Age > {threshold}"),
            "SELECT X FROM Node X WHERE not X.Next.Next".to_string(),
        ];
        check_equiv(&mut db, &queries[qsel]);
    }
}
