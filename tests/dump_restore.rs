//! Dump/restore round-trips at scale: a generated Figure 1 instance
//! dumped to an XSQL script and replayed must answer a query battery
//! identically.

use datagen::{figure1_scaled, Figure1Params};
use oodb::Database;
use xsql::{dump_script, Session};

fn rendered_rows(s: &mut Session, q: &str) -> Vec<String> {
    let rel = s.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    let mut rows: Vec<String> = rel
        .iter()
        .map(|t| {
            t.iter()
                .map(|&o| s.db().render(o))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    // Row order follows OID interning order, which the canonical dump
    // deliberately does not preserve; answers are compared as sets.
    rows.sort_unstable();
    rows
}

#[test]
fn scaled_instance_roundtrips() {
    let original = figure1_scaled(&Figure1Params {
        companies: 2,
        ..Figure1Params::default()
    });
    let (script, skipped) = dump_script(&original).unwrap();
    assert_eq!(skipped, 0, "figure1 data is fully statement-expressible");
    let mut restored = Session::new(Database::new());
    restored
        .run_script(&script)
        .unwrap_or_else(|e| panic!("replay failed: {e}"));

    let mut orig = Session::new(original);
    for q in [
        "SELECT X FROM Company X",
        "SELECT X FROM Employee X WHERE X.Salary > 100000",
        "SELECT X, Y FROM Company X, Division Y WHERE X.Divisions[Y]",
        "SELECT W FROM Division D WHERE D.Manager.Name[W]",
        "SELECT X FROM Automobile X WHERE X.Drivetrain.Engine.HPpower > 200",
        "SELECT X FROM Person X WHERE X.Residence.City['city3']",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 50",
        "SELECT #C FROM #C E WHERE E.CylinderN[8]",
    ] {
        assert_eq!(
            rendered_rows(&mut orig, q),
            rendered_rows(&mut restored, q),
            "divergence on {q}"
        );
    }
    assert!(restored.db().check_conformance().is_empty());
    assert_eq!(
        orig.db().individual_count(),
        restored.db().individual_count(),
        "active domains differ"
    );
}

#[test]
fn double_dump_is_stable() {
    // dump(restore(dump(db))) == dump(restore(db)) — the script format
    // is a fixpoint after one round trip.
    let original = figure1_scaled(&Figure1Params {
        companies: 1,
        ..Figure1Params::default()
    });
    let (s1, _) = dump_script(&original).unwrap();
    let mut r1 = Session::new(Database::new());
    r1.run_script(&s1).unwrap();
    let (s2, _) = dump_script(r1.db()).unwrap();
    let mut r2 = Session::new(Database::new());
    r2.run_script(&s2).unwrap();
    let (s3, _) = dump_script(r2.db()).unwrap();
    assert_eq!(s2, s3);
}
