//! End-to-end tests of the `xsql` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xsql-cli"))
}

#[test]
fn runs_a_script_against_figure1() {
    let dir = std::env::temp_dir().join("xsql_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("q.xsql");
    std::fs::write(
        &path,
        "SELECT X FROM Person X WHERE X.Residence.City['newyork'];",
    )
    .unwrap();
    let out = bin().args(["--db", "figure1"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mary123"), "{stdout}");
}

#[test]
fn bootstraps_an_empty_database() {
    let dir = std::env::temp_dir().join("xsql_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("boot.xsql");
    std::fs::write(
        &path,
        "CREATE CLASS T; ALTER CLASS T ADD SIGNATURE V => Numeral; \
         CREATE OBJECT t1 CLASS T SET V = 7; \
         SELECT X FROM T X WHERE X.V[7];",
    )
    .unwrap();
    let out = bin().args(["--db", "empty"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("t1"), "{stdout}");
}

#[test]
fn interactive_mode_answers_and_quits() {
    let mut child = bin()
        .args(["--db", "nobel"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"SELECT X WHERE X.WonNobelPrize;\n\\q\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unicef"), "{stdout}");
}

#[test]
fn rejects_unknown_fixture_and_flag() {
    let out = bin().args(["--db", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn script_errors_set_exit_code() {
    let dir = std::env::temp_dir().join("xsql_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.xsql");
    std::fs::write(&path, "SELECT FROM WHERE;").unwrap();
    let out = bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
}
