//! End-to-end tests of the `xsql` CLI binary.

use std::io::{Read, Write};
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xsql-cli"))
}

#[test]
fn runs_a_script_against_figure1() {
    let dir = std::env::temp_dir().join("xsql_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("q.xsql");
    std::fs::write(
        &path,
        "SELECT X FROM Person X WHERE X.Residence.City['newyork'];",
    )
    .unwrap();
    let out = bin().args(["--db", "figure1"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mary123"), "{stdout}");
}

#[test]
fn bootstraps_an_empty_database() {
    let dir = std::env::temp_dir().join("xsql_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("boot.xsql");
    std::fs::write(
        &path,
        "CREATE CLASS T; ALTER CLASS T ADD SIGNATURE V => Numeral; \
         CREATE OBJECT t1 CLASS T SET V = 7; \
         SELECT X FROM T X WHERE X.V[7];",
    )
    .unwrap();
    let out = bin().args(["--db", "empty"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("t1"), "{stdout}");
}

#[test]
fn interactive_mode_answers_and_quits() {
    let mut child = bin()
        .args(["--db", "nobel"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"SELECT X WHERE X.WonNobelPrize;\n\\q\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unicef"), "{stdout}");
}

#[test]
fn rejects_unknown_fixture_and_flag() {
    let out = bin().args(["--db", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

/// Durability end to end: a CLI session with `--open` is SIGKILLed with
/// a transaction still open; reopening the same directory recovers every
/// committed statement and none of the uncommitted work.
#[test]
fn committed_work_survives_kill_dash_nine() {
    let dir = std::env::temp_dir().join(format!("xsql_cli_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut child = bin()
        .args(["--db", "empty", "--open"])
        .arg(&dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"CREATE CLASS Thing;\n\
              ALTER CLASS Thing ADD SIGNATURE Num => Numeral;\n\
              CREATE OBJECT survivor CLASS Thing SET Num = 1;\n\
              BEGIN WORK;\n\
              CREATE OBJECT ghost CLASS Thing SET Num = 2;\n\
              SELECT X FROM Thing X;\n",
        )
        .unwrap();
    // Drain stdout until the in-transaction SELECT echoes `ghost` — at
    // that point every prior statement has been processed and the
    // committed ones fsync'd — then kill the process without warning.
    let mut seen = String::new();
    let stdout = child.stdout.as_mut().unwrap();
    let mut chunk = [0u8; 1024];
    while !seen.contains("ghost") {
        let n = stdout.read(&mut chunk).unwrap();
        assert!(n > 0, "CLI exited early; output so far:\n{seen}");
        seen.push_str(&String::from_utf8_lossy(&chunk[..n]));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    // Reopen the directory: recovery replays the WAL.
    let script = dir.join("after.xsql");
    std::fs::write(&script, "SELECT X FROM Thing X;").unwrap();
    let out = bin()
        .args(["--db", "empty", "--open"])
        .arg(&dir)
        .arg(&script)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("survivor"), "committed row lost:\n{stdout}");
    assert!(
        !stdout.contains("ghost"),
        "uncommitted row survived the crash:\n{stdout}"
    );
    // Reopening printed a recovery report (on stderr, so script output
    // stays parseable).
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("recovery:"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--serve` runs each script on its own concurrent service session:
/// both scripts' outputs appear under their `[sN]` prefixes, and a
/// write committed by one session is visible to a later read (the reads
/// here are self-contained per script, so ordering doesn't matter).
#[test]
fn serve_mode_runs_scripts_concurrently() {
    let dir = std::env::temp_dir().join("xsql_cli_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.xsql");
    std::fs::write(
        &a,
        "CREATE CLASS FromA; \
         SELECT X FROM Person X WHERE X.Residence.City['newyork'];",
    )
    .unwrap();
    let b = dir.join("b.xsql");
    std::fs::write(
        &b,
        "BEGIN WORK; \
         CREATE CLASS FromB; \
         CREATE OBJECT fb CLASS FromB; \
         COMMIT WORK; \
         SELECT X FROM FromB X;",
    )
    .unwrap();
    let out = bin()
        .args(["--db", "figure1", "--serve", "--deadline-ms", "30000"])
        .arg(&a)
        .arg(&b)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[s1] "), "{stdout}");
    assert!(stdout.contains("[s2] "), "{stdout}");
    // Script 1's read found mary123; script 2's post-commit read sees
    // the object its own transaction created.
    assert!(stdout.contains("mary123"), "{stdout}");
    assert!(stdout.contains("fb"), "{stdout}");
}

#[test]
fn serve_mode_requires_scripts() {
    let out = bin().arg("--serve").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--serve"), "{err}");
}

#[test]
fn script_errors_set_exit_code() {
    let dir = std::env::temp_dir().join("xsql_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.xsql");
    std::fs::write(&path, "SELECT FROM WHERE;").unwrap();
    let out = bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
}

/// `--stats` prints the telemetry exposition after a script run:
/// statement latency histogram samples, and — with `--open` — the WAL
/// fsync/append instrumentation from the attached store.
#[test]
fn stats_flag_prints_exposition() {
    let dir = std::env::temp_dir().join("xsql_cli_stats_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("q.xsql");
    std::fs::write(&path, "SELECT X FROM Person X;").unwrap();
    let out = bin()
        .args(["--db", "figure1", "--stats"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("xsql_stmt_latency_us_count "), "{stdout}");
    assert!(stdout.contains("xsql_stmt_latency_us_p50 "), "{stdout}");

    // With a durable store attached, WAL metrics join the exposition.
    let store_dir = dir.join("store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let script = dir.join("w.xsql");
    std::fs::write(
        &script,
        "CREATE CLASS Thing; ALTER CLASS Thing ADD SIGNATURE Num => Numeral; \
         CREATE OBJECT t1 CLASS Thing SET Num = 1;",
    )
    .unwrap();
    let out = bin()
        .args(["--db", "empty", "--stats", "--open"])
        .arg(&store_dir)
        .arg(&script)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("storage_wal_fsync_latency_us_count "),
        "{stdout}"
    );
    assert!(stdout.contains("storage_wal_appends_total "), "{stdout}");
    assert!(
        stdout.contains("storage_wal_bytes_written_total "),
        "{stdout}"
    );
    // The store-health state machine is a gauge (0 = healthy).
    assert!(stdout.contains("store_health "), "{stdout}");
}
