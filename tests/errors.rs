//! Error reporting across the pipeline: lexical/syntax offsets,
//! resolution sort clashes, and session-level failures all surface as
//! typed, located errors — never panics.

use datagen::figure1_db;
use xsql::{parse, Session, XsqlError};

#[test]
fn lex_and_parse_errors_carry_offsets() {
    match parse("SELECT X FROM Person X WHERE X.Name['unterminated") {
        Err(XsqlError::Lex { offset, .. }) => assert_eq!(offset, 36),
        other => panic!("unexpected {other:?}"),
    }
    match parse("SELECT X FROM Person X WHERE X..Name") {
        Err(XsqlError::Parse { offset, .. }) => assert!(offset >= 30),
        other => panic!("unexpected {other:?}"),
    }
    match parse("SELECT") {
        Err(XsqlError::Parse { .. }) => {}
        other => panic!("unexpected {other:?}"),
    }
    // Reserved words cannot be identifiers.
    assert!(parse("SELECT X FROM Person X WHERE X.select").is_err());
}

#[test]
fn parse_errors_render_line_and_column() {
    // Error on the second line: the doubled dot after `X`.
    let err = parse("SELECT X FROM Person X\nWHERE X..Name").unwrap_err();
    match &err {
        XsqlError::Parse { line, column, .. } => {
            assert_eq!(*line, 2);
            assert_eq!(*column, 10, "column of the token after the stray `.`");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        err.to_string().contains("line 2, column 10"),
        "rendered: {err}"
    );

    let err = parse("SELECT X FROM Person X WHERE X.Name['oops").unwrap_err();
    match &err {
        XsqlError::Lex { line, column, .. } => {
            assert_eq!(*line, 1);
            assert_eq!(*column, 37);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        err.to_string().contains("line 1, column 37"),
        "rendered: {err}"
    );
}

#[test]
fn sort_clash_is_a_resolution_error() {
    let mut s = Session::new(figure1_db());
    let err = s
        .run("SELECT X FROM Person X WHERE TurboEngine subclassOf #X")
        .unwrap_err();
    assert!(matches!(err, XsqlError::Resolve(_)), "{err}");
}

#[test]
fn unknown_constructs_are_reported() {
    let mut s = Session::new(figure1_db());
    // Unknown view in refresh/update APIs.
    assert!(s.refresh_view("NoSuchView").is_err());
    let o = s.db_mut().oids_mut().int(1);
    assert!(s.update_view("NoSuchView", o, "X", o).is_err());
    // Unknown class in DDL.
    assert!(s.run("CREATE OBJECT thing CLASS Nonexistent").is_err());
    assert!(s
        .run("ALTER CLASS Nonexistent ADD SIGNATURE A => String")
        .is_err());
    // Unknown result class in a signature.
    assert!(s
        .run("ALTER CLASS Person ADD SIGNATURE A => Nonexistent")
        .is_err());
}

#[test]
fn duplicate_view_rejected() {
    let mut s = Session::new(figure1_db());
    let ddl = "CREATE VIEW V1 AS SUBCLASS OF Object SIGNATURE A => Numeral \
               SELECT A = W.Salary FROM Employee W OID FUNCTION OF W";
    s.run(ddl).unwrap();
    assert!(s.run(ddl).is_err());
}

#[test]
fn update_conjunct_outside_method_rejected() {
    let mut s = Session::new(figure1_db());
    let err = s
        .run(
            "SELECT X FROM Employee X WHERE X.Salary > 0 \
             and (UPDATE CLASS Employee SET X.Salary = 1)",
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("UPDATE"), "{msg}");
}

#[test]
fn grouped_select_requires_oid_function() {
    let mut s = Session::new(figure1_db());
    let err = s.run("SELECT Xs = {X} FROM Person X").unwrap_err();
    assert!(err.to_string().contains("OID FUNCTION"), "{err}");
}

#[test]
fn method_result_item_requires_alter_class() {
    let mut s = Session::new(figure1_db());
    let err = s.run("SELECT (M @ X) = X FROM Person X").unwrap_err();
    assert!(err.to_string().contains("ALTER CLASS"), "{err}");
}

#[test]
fn arity_mismatch_in_relational_ops() {
    let mut s = Session::new(figure1_db());
    let err = s
        .run("SELECT X FROM Person X UNION SELECT X, Y FROM Company X, Division Y")
        .unwrap_err();
    assert!(err.to_string().contains("arity"), "{err}");
}

#[test]
fn signature_arity_mismatch_in_method_definition() {
    let mut s = Session::new(figure1_db());
    // Declared unary, defined 0-ary.
    let err = s
        .run(
            "ALTER CLASS Company ADD SIGNATURE M1 : String => Numeral \
             SELECT (M1 @) = 5 FROM Company X OID X",
        )
        .unwrap_err();
    assert!(err.to_string().contains("argument"), "{err}");
}
