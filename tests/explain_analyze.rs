//! `EXPLAIN` / `EXPLAIN ANALYZE` integration tests: the span-error
//! regression for non-SELECT operands, execution profiles on the
//! paper's numbered queries with exact tick/row counts, deterministic
//! golden stability, and the engine-invariance differential (naive,
//! pipelined, parallel all report identical row counts, and telemetry
//! being attached never changes a result).

use datagen::figure1_db;
use std::sync::Arc;
use telemetry::{Registry, TelemetryConfig};
use xsql::{EvalOptions, Outcome, Session, Strategy, XsqlError};

/// Paper queries with their known cardinalities (see
/// `tests/paper_queries.rs` for the prose answers) and the exact tick
/// count of a sequential pipelined evaluation over the Figure 1
/// database. Ticks are a deterministic function of the database and
/// options, so a change here means the evaluator's work actually
/// changed.
const QUERIES: &[(&str, &str, usize)] = &[
    (
        "q01-ground-path",
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        1,
    ),
    (
        "q03-attribute-variable",
        "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']",
        1,
    ),
    (
        "q04-subclass-of",
        "SELECT #X WHERE TurboEngine subclassOf #X",
        4,
    ),
    ("engine-types", "SELECT #X WHERE #X subclassOf Engines", 5),
    (
        "president-fammembers",
        "SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]",
        2,
    ),
    (
        "employee-automobile-engines",
        "SELECT Z FROM Employee X, Automobile Y \
         WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
        2,
    ),
];

/// Sequential pipelined tick counts for `QUERIES`, in order. Pinned so
/// profile regressions are loud; update deliberately when the evaluator
/// changes.
const PIPELINED_TICKS: &[u64] = &[35, 75, 37, 40, 96, 47];

/// A session with explicitly pinned evaluation options (never the
/// `XSQL_PARALLELISM` environment default) and a deterministic
/// telemetry registry, so `EXPLAIN ANALYZE` output is byte-stable.
fn det_session(strategy: Strategy, parallelism: usize) -> Session {
    let opts = EvalOptions {
        strategy,
        parallelism,
        // The Figure 1 extents are tiny; pin the parallel gate low so
        // partition reporting stays observable (and not subject to the
        // production small-extent fallback, tested in parallel_eval.rs).
        parallel_min_candidates: 2,
        ..EvalOptions::default()
    };
    let mut s = Session::with_options(figure1_db(), opts);
    s.set_registry(Arc::new(Registry::with_config(TelemetryConfig {
        deterministic: true,
        ..TelemetryConfig::default()
    })));
    s
}

fn analyze(s: &mut Session, sql: &str) -> String {
    match s.run(&format!("EXPLAIN ANALYZE {sql}")) {
        Ok(Outcome::Explained { report }) => report,
        other => panic!("EXPLAIN ANALYZE {sql}: expected a report, got {other:?}"),
    }
}

/// Extracts the integer immediately following `prefix` in `report`.
fn metric(report: &str, prefix: &str) -> u64 {
    let at = report
        .find(prefix)
        .unwrap_or_else(|| panic!("no `{prefix}` in report:\n{report}"));
    report[at + prefix.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("no number after `{prefix}` in report:\n{report}"))
}

// ---------------------------------------------------------------------
// Satellite 1: EXPLAIN of a non-SELECT is a clean error with a span.
// ---------------------------------------------------------------------

#[test]
fn explain_non_select_is_error_with_span() {
    let mut s = det_session(Strategy::Pipelined, 1);
    let err = s.run("EXPLAIN COMMIT WORK").unwrap_err();
    assert!(
        matches!(err, XsqlError::Parse { line: 1, .. }),
        "expected a located parse error, got {err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("syntax error at line 1, column "), "{msg}");
    assert!(
        msg.contains("EXPLAIN applies to SELECT queries only"),
        "{msg}"
    );

    // The span points at the offending inner statement, not at EXPLAIN.
    let err = s
        .run("EXPLAIN\n  UPDATE CLASS Person SET john13.Age = 1")
        .unwrap_err();
    assert!(
        matches!(err, XsqlError::Parse { line: 2, .. }),
        "span should locate the inner statement on line 2: {err:?}"
    );

    // ANALYZE changes nothing about the contract.
    let err = s.run("EXPLAIN ANALYZE ROLLBACK WORK").unwrap_err();
    assert!(
        err.to_string().contains("EXPLAIN applies to SELECT"),
        "{err}"
    );

    // A set combination is a single-SELECT violation with its own message.
    let err = s
        .run("EXPLAIN SELECT X FROM Person X UNION SELECT Y FROM Person Y")
        .unwrap_err();
    assert!(
        err.to_string().contains("not a UNION/MINUS/INTERSECT"),
        "{err}"
    );

    // The session stays usable: errors above were statement-local.
    assert!(s.query("SELECT X FROM Person X").is_ok());
}

// ---------------------------------------------------------------------
// Satellite 2: profiles on the paper queries, exact counts, goldens.
// ---------------------------------------------------------------------

#[test]
fn explain_analyze_paper_query_profiles() {
    let mut ticks = Vec::new();
    for (label, sql, rows) in QUERIES {
        let mut s = det_session(Strategy::Pipelined, 1);
        let report = analyze(&mut s, sql);
        assert!(
            report.contains("strategy: pipelined, parallelism 1"),
            "{label}:\n{report}"
        );
        assert!(
            report.contains("partition: none (sequential)"),
            "{label}:\n{report}"
        );
        assert_eq!(
            metric(&report, "rows out: ") as usize,
            *rows,
            "{label}:\n{report}"
        );
        ticks.push(metric(&report, "cost: "));
        // `rows out` is the cardinality the plain query reports.
        assert_eq!(s.query(sql).unwrap().len(), *rows, "{label}");
        // Deterministic renderings carry no wall-clock timings.
        assert!(!report.contains("µs"), "{label}:\n{report}");
    }
    assert_eq!(ticks, PIPELINED_TICKS, "pinned tick counts drifted");
}

#[test]
fn explain_analyze_parallel_partition_is_reported() {
    let mut s = det_session(Strategy::Pipelined, 4);
    let report = analyze(
        &mut s,
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    );
    eprintln!("{report}");
    assert!(
        report.contains("strategy: pipelined, parallelism 4"),
        "{report}"
    );
    // The driver split the outer candidate domain and says where the
    // candidates came from.
    assert!(report.contains("partition: "), "{report}");
    assert!(report.contains(" via "), "{report}");
    assert!(report.contains("workers)"), "{report}");
    assert!(report.contains("worker 0:"), "{report}");
    assert_eq!(metric(&report, "rows out: "), 1, "{report}");
}

#[test]
fn explain_analyze_goldens_are_byte_stable() {
    for parallelism in [1, 4] {
        for (label, sql, _) in QUERIES {
            let a = analyze(&mut det_session(Strategy::Pipelined, parallelism), sql);
            let b = analyze(&mut det_session(Strategy::Pipelined, parallelism), sql);
            assert_eq!(
                a, b,
                "{label} at parallelism {parallelism} is not byte-stable"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 3: engine-invariance differential.
// ---------------------------------------------------------------------

#[test]
fn row_counts_invariant_across_engines() {
    for (label, sql, rows) in QUERIES {
        let engines = [
            ("naive", Strategy::Naive, 1),
            ("pipelined", Strategy::Pipelined, 1),
            ("parallel(4)", Strategy::Pipelined, 4),
        ];
        for (engine, strategy, parallelism) in engines {
            let mut s = det_session(strategy, parallelism);
            let report = analyze(&mut s, sql);
            assert_eq!(
                metric(&report, "rows out: ") as usize,
                *rows,
                "{label} under {engine}:\n{report}"
            );
        }
    }
}

/// Attaching telemetry (an enabled registry with span recording) must
/// leave query results bit-identical to an untouched session.
#[test]
fn telemetry_leaves_results_bit_identical() {
    for (label, sql, _) in QUERIES {
        let mut plain = Session::with_options(
            figure1_db(),
            EvalOptions {
                parallelism: 1,
                ..EvalOptions::default()
            },
        );
        let mut instrumented = det_session(Strategy::Pipelined, 1);
        instrumented.set_registry(Arc::new(Registry::with_config(TelemetryConfig {
            enabled: true,
            deterministic: false,
            ..TelemetryConfig::default()
        })));

        let render = |s: &mut Session| -> Vec<Vec<String>> {
            let r = s.query(sql).unwrap();
            let rows: Vec<Vec<String>> = r
                .iter()
                .map(|t| t.iter().map(|o| s.db().render(*o)).collect())
                .collect();
            rows
        };
        assert_eq!(render(&mut plain), render(&mut instrumented), "{label}");
        // Profiling the same statement first does not perturb a
        // subsequent plain execution either.
        let _ = analyze(&mut instrumented, sql);
        assert_eq!(render(&mut plain), render(&mut instrumented), "{label}");
    }
}

// ---------------------------------------------------------------------
// Plain EXPLAIN keeps the §6 typing report and gains the static plan.
// ---------------------------------------------------------------------

#[test]
fn plain_explain_includes_static_plan() {
    // A single-variable filter query is inside the cost-based planner's
    // fragment: plain EXPLAIN shows its static plan.
    let mut s = det_session(Strategy::Pipelined, 1);
    let report = match s.run("EXPLAIN SELECT X FROM Person X WHERE X.Residence.City['austin']") {
        Ok(Outcome::Explained { report }) => report,
        other => panic!("expected Explained, got {other:?}"),
    };
    // Typing report is still there…
    assert!(report.contains("well-typed"), "{report}");
    // …and the static plan follows it.
    assert!(report.contains("plan"), "{report}");
    assert!(
        report.contains("strategy: planner, parallelism 1"),
        "{report}"
    );
    assert!(report.contains("cost-based plan"), "{report}");
    assert!(report.contains("scan X: Person extent"), "{report}");
    assert!(report.contains("filter X: "), "{report}");

    // A selector-variable path is outside the fragment: the pipelined
    // engine keeps it, and at parallelism 4 the plan predicts the
    // partition without running.
    let mut s4 = det_session(Strategy::Pipelined, 4);
    let report = match s4.run("EXPLAIN SELECT Y FROM Person X WHERE X.Residence[Y].City['austin']")
    {
        Ok(Outcome::Explained { report }) => report,
        other => panic!("expected Explained, got {other:?}"),
    };
    assert!(
        report.contains("strategy: pipelined, parallelism 4"),
        "{report}"
    );
    assert!(
        report.contains(" via ") || report.contains("partition: none"),
        "{report}"
    );
}

// ---------------------------------------------------------------------
// STATS from the session surface.
// ---------------------------------------------------------------------

#[test]
fn stats_statement_renders_registry() {
    let mut s = det_session(Strategy::Pipelined, 1);
    s.query("SELECT X FROM Person X").unwrap();
    let report = match s.run("STATS") {
        Ok(Outcome::Stats { report }) => report,
        other => panic!("expected Stats, got {other:?}"),
    };
    // Statement latency histogram is registered and counted.
    assert!(report.contains("xsql_stmt_latency_us_count"), "{report}");
    let count = metric(&report, "xsql_stmt_latency_us_count ");
    assert!(count >= 1, "{report}");
}
