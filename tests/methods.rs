//! §5: methods in path expressions — the MngrSalary definition (12),
//! the nested-subquery query (13), selectors on method arguments, and
//! the RaiseMngrSalary update method.

use datagen::figure1_db;
use xsql::Session;

const MNGR_SALARY: &str = "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral \
     SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X \
     WHERE X.Divisions[Y].Manager.Salary[W]";

const RAISE: &str = "ALTER CLASS Company ADD SIGNATURE RaiseMngrSalary : Numeral => Object \
     SELECT (RaiseMngrSalary @ W) = nil FROM Company X, Numeral W OID X \
     WHERE W < 20 and (UPDATE CLASS Company \
     SET X.Divisions[Y].Manager.Salary = (1 + W/100) * X.(MngrSalary @ Y.Name))";

#[test]
fn q12_method_definition_and_invocation() {
    let mut s = Session::new(figure1_db());
    s.run(MNGR_SALARY).unwrap();
    let uni = s.db().oids().find_sym("uniSQL").unwrap();
    let sales = s.db_mut().oids_mut().str("Sales");
    // Sales is managed by john13 (90000).
    let v = s.invoke(uni, "MngrSalary", &[sales]).unwrap().unwrap();
    assert_eq!(
        s.db().oids().as_number(v.as_scalar().unwrap()),
        Some(90000.0)
    );
    // Unknown division name: undefined (a null), not an error.
    let nowhere = s.db_mut().oids_mut().str("Nowhere");
    assert!(s.invoke(uni, "MngrSalary", &[nowhere]).unwrap().is_none());
}

#[test]
fn q13_nested_subquery_with_method() {
    let mut s = Session::new(figure1_db());
    s.run(MNGR_SALARY).unwrap();
    // Vehicles made by companies paying ALL their division managers
    // over $25,000 (both john13/90000 and kim1/30000 qualify).
    let r = s
        .query(
            "SELECT X FROM Vehicle X WHERE 25000 <all (SELECT W FROM Division Y \
             WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])",
        )
        .unwrap();
    assert_eq!(r.len(), 3); // car1, car2, and... bicycles have no manufacturer
                            // With a higher bar, kim1's 30000 disqualifies the company — but the
                            // all-quantifier over an empty set keeps unmanufactured vehicles.
    let r = s
        .query(
            "SELECT X FROM Vehicle X WHERE 50000 <all (SELECT W FROM Division Y \
             WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])",
        )
        .unwrap();
    // bike1 has no Manufacturer: the subquery is empty, <all vacuously
    // true (the paper's semantics: "a set that contains only numerals
    // greater than…").
    let names: Vec<String> = r.iter().map(|t| s.db().render(t[0])).collect();
    assert_eq!(names, vec!["bike1"]);
}

#[test]
fn method_argument_as_selector_constant() {
    // §5: "(MngrSalary @ 'Advertizing')" — a ground argument.
    let mut s = Session::new(figure1_db());
    s.run(MNGR_SALARY).unwrap();
    let r = s
        .query("SELECT W FROM Company X WHERE X.(MngrSalary @ 'Engineering')[W]")
        .unwrap();
    assert_eq!(r.len(), 1);
    let w = *r.as_set().iter().next().unwrap();
    assert_eq!(s.db().oids().as_number(w), Some(30000.0)); // kim1 manages Engineering
}

#[test]
fn raise_mngr_salary_update_method() {
    let mut s = Session::new(figure1_db());
    s.run(MNGR_SALARY).unwrap();
    s.run(RAISE).unwrap();
    let uni = s.db().oids().find_sym("uniSQL").unwrap();
    let ten = s.db_mut().oids_mut().int(10);
    let v = s.invoke(uni, "RaiseMngrSalary", &[ten]).unwrap().unwrap();
    assert!(s.db().oids().is_nil(v.as_scalar().unwrap()));
    let sal = s.db().oids().find_sym("Salary").unwrap();
    let john = s.db().oids().find_sym("john13").unwrap();
    let kim = s.db().oids().find_sym("kim1").unwrap();
    let jv = s.db().value(john, sal, &[]).unwrap().unwrap();
    let kv = s.db().value(kim, sal, &[]).unwrap().unwrap();
    let j = s.db().oids().as_number(jv.as_scalar().unwrap()).unwrap();
    let k = s.db().oids().as_number(kv.as_scalar().unwrap()).unwrap();
    assert!((j - 99000.0).abs() < 1e-6, "john {j}");
    assert!((k - 33000.0).abs() < 1e-6, "kim {k}");
}

#[test]
fn raise_guard_rejects_huge_increases() {
    // "W < 20 (to guard against huge salary increases)".
    let mut s = Session::new(figure1_db());
    s.run(MNGR_SALARY).unwrap();
    s.run(RAISE).unwrap();
    let uni = s.db().oids().find_sym("uniSQL").unwrap();
    let fifty = s.db_mut().oids_mut().int(50);
    let v = s.invoke(uni, "RaiseMngrSalary", &[fifty]).unwrap();
    assert!(v.is_none());
    // Salaries unchanged.
    let sal = s.db().oids().find_sym("Salary").unwrap();
    let john = s.db().oids().find_sym("john13").unwrap();
    let jv = s.db().value(john, sal, &[]).unwrap().unwrap();
    assert_eq!(
        s.db().oids().as_number(jv.as_scalar().unwrap()),
        Some(90000.0)
    );
}

#[test]
fn behavioral_inheritance_of_query_methods() {
    // A method defined on Vehicle is inherited by Automobile instances;
    // redefining it on Automobile overrides (§6.1).
    let mut s = Session::new(figure1_db());
    s.run(
        "ALTER CLASS Vehicle ADD SIGNATURE Tag => String \
         SELECT (Tag @) = 'vehicle' FROM Vehicle X OID X",
    )
    .unwrap();
    let car1 = s.db().oids().find_sym("car1").unwrap();
    let v = s.invoke(car1, "Tag", &[]).unwrap().unwrap();
    assert_eq!(
        s.db().oids().as_str(v.as_scalar().unwrap()),
        Some("vehicle")
    );
    s.run(
        "ALTER CLASS Automobile ADD SIGNATURE Tag => String \
         SELECT (Tag @) = 'automobile' FROM Automobile X OID X",
    )
    .unwrap();
    let v = s.invoke(car1, "Tag", &[]).unwrap().unwrap();
    assert_eq!(
        s.db().oids().as_str(v.as_scalar().unwrap()),
        Some("automobile")
    );
    // A bicycle still sees the Vehicle definition.
    let bike = s.db().oids().find_sym("bike1").unwrap();
    let v = s.invoke(bike, "Tag", &[]).unwrap().unwrap();
    assert_eq!(
        s.db().oids().as_str(v.as_scalar().unwrap()),
        Some("vehicle")
    );
}
