//! Integration tests reproducing §1–§3 of the paper: every numbered
//! query and every inline example, executed against the Figure 1
//! database (and the Nobel database for the §1 example), with the
//! answers the paper's prose implies.

use datagen::{figure1_db, nobel_db};
use oodb::Database;
use relalg::Relation;
use xsql::Session;

fn session() -> Session {
    Session::new(figure1_db())
}

fn names(db: &Database, rel: &Relation) -> Vec<String> {
    let mut v: Vec<String> = rel.iter().map(|t| db.render(t[0])).collect();
    v.sort();
    v
}

/// (1) `mary123.Residence.City` — used as a filter in the first query
/// form of §3.1.
#[test]
fn q01_ground_path() {
    let mut s = session();
    let r = s
        .query("SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["addr_ny"]);
    // The ground path itself as a standalone truth test.
    let r = s
        .query("SELECT X FROM Person X WHERE mary123.Residence.City['newyork'] and X.Name['Mary']")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["mary123"]);
}

/// §1: `SELECT X WHERE X.WonNobelPrize` — "the answer would be all
/// objects for which WonNobelPrize is defined and its value is
/// nonempty", across classes (UNICEF included).
#[test]
fn q_nobel_prize() {
    let mut s = Session::new(nobel_db());
    let r = s.query("SELECT X WHERE X.WonNobelPrize").unwrap();
    assert_eq!(names(s.db(), &r), vec!["marieCurie", "tagore", "unicef"]);
}

/// §1: the engine-types example — in an OO database the engine types
/// live in the schema; both readings are expressible.
#[test]
fn q_engine_types() {
    let mut s = session();
    // All engine types that exist (schema query).
    let r = s.query("SELECT #X WHERE #X subclassOf Engines").unwrap();
    assert_eq!(
        names(s.db(), &r),
        vec![
            "DieselEngine",
            "FourStrokeEngine",
            "PistonEngine",
            "TurboEngine",
            "TwoStrokeEngine"
        ]
    );
    // Engine types currently installed in some vehicle (data+schema).
    let r = s
        .query(
            "SELECT #C FROM Vehicle V, #C E \
             WHERE V.Drivetrain.Engine[E] and #C subclassOf PistonEngine",
        )
        .unwrap();
    let got = names(s.db(), &r);
    assert!(got.contains(&"TurboEngine".to_string()), "{got:?}");
    assert!(got.contains(&"DieselEngine".to_string()), "{got:?}");
    assert!(!got.contains(&"TwoStrokeEngine".to_string()), "{got:?}");
}

/// §3.1: `uniSQL.President.FamlMembers.Name` — several database paths
/// when the president has several family members.
#[test]
fn q_unisql_president_fammembers() {
    let mut s = session();
    let r = s
        .query("SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["'Anna'", "'Tim'"]);
}

/// §3.1: engines installed in automobiles owned by employees; the
/// intermediate variable Y restricts the vehicles to automobiles.
#[test]
fn q_employee_automobile_engines() {
    let mut s = session();
    let r = s
        .query(
            "SELECT Z FROM Employee X, Automobile Y \
             WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
        )
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["engineD1", "engineT1"]);
}

/// Query (3): attribute variables explore the schema — which attribute
/// leads from a person to 'newyork'? And without the selector, more
/// attributes qualify (the paper's Austin/San-Francisco discussion).
#[test]
fn q03_attribute_variables() {
    let mut s = session();
    let r = s
        .query("SELECT Y FROM Person X WHERE X.\"Y.City['newyork']")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["Residence"]);
    // Dropping the selector admits every attribute reaching a city.
    let r2 = s.query("SELECT Y FROM Person X WHERE X.\"Y.City").unwrap();
    assert!(r2.len() >= r.len());
    assert!(names(s.db(), &r2).contains(&"Residence".to_string()));
}

/// Query (4): `SELECT #X WHERE TurboEngine subclassOf #X` — the paper
/// gives the exact answer: FourStrokeEngine, PistonEngine, and Object.
/// (Figure 1 also draws the Engines root the arrows hang off.)
#[test]
fn q04_subclass_of() {
    let mut s = session();
    let r = s
        .query("SELECT #X WHERE TurboEngine subclassOf #X")
        .unwrap();
    assert_eq!(
        names(s.db(), &r),
        vec!["Engines", "FourStrokeEngine", "Object", "PistonEngine"]
    );
}

/// §3.2: `_john13.FamMembers.Age some> 20`.
#[test]
fn q_some_comparison() {
    let mut s = session();
    let r = s
        .query("SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20")
        .unwrap();
    // john has Anna (22); kim's family is mary (34).
    assert_eq!(names(s.db(), &r), vec!["john13", "kim1"]);
    let r = s
        .query("SELECT X FROM Employee X WHERE X.FamMembers.Age some> 30")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["kim1"]);
}

/// §3.2: the blue-and-red query with `containsEq` and a set literal.
#[test]
fn q_contains_eq() {
    let mut s = session();
    // john owns car1 (red) and car2 (blue); make him young enough.
    s.run("UPDATE CLASS Person SET john13.Age = 29").unwrap();
    let r = s
        .query(
            "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] \
             and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} \
             and X.President.Age < 30",
        )
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["uniSQL"]);
}

/// §3.2: `=all` — all family members share the person's residence city.
#[test]
fn q_all_equality() {
    let mut s = session();
    let r = s
        .query(
            "SELECT X FROM Employee X \
             WHERE X.Residence.City =all X.FamMembers.Residence.City",
        )
        .unwrap();
    // john: austin, family in austin -> yes. kim: sanfrancisco, mary in
    // newyork -> no.
    assert_eq!(names(s.db(), &r), vec!["john13"]);
}

/// §3.2: `all<all` pairs of persons.
#[test]
fn q_all_less_all() {
    let mut s = session();
    let r = s
        .query(
            "SELECT X, Y FROM Employee X, Employee Y \
             WHERE Y.FamMembers.Age all<all X.FamMembers.Age",
        )
        .unwrap();
    // john's family: 22, 17; kim's: 34. 22 and 17 all< 34: (X=kim, Y=john).
    assert_eq!(r.len(), 1);
    let row = r.iter().next().unwrap();
    assert_eq!(s.db().render(row[0]), "kim1");
    assert_eq!(s.db().render(row[1]), "john13");
}

/// §3.2: the aggregate query (count, =all, salary threshold).
#[test]
fn q_aggregate_family() {
    let mut s = session();
    // Give kim a big family in one house to satisfy the query.
    let mut script = String::new();
    for i in 0..5 {
        script.push_str(&format!(
            "UPDATE CLASS Person SET bigfam{i}.Residence = addr_sf;"
        ));
    }
    {
        let db = s.db_mut();
        let person = db.oids().find_sym("Person").unwrap();
        for i in 0..5 {
            let o = db.new_individual(&format!("bigfam{i}"), &[person]).unwrap();
            let fam = db.oids_mut().sym("FamMembers");
            let kim = db.oids().find_sym("kim1").unwrap();
            db.insert_into_set(kim, fam, &[], o).unwrap();
        }
    }
    s.run_script(&script).unwrap();
    s.run("UPDATE CLASS Person SET kim1.Residence = addr_sf")
        .unwrap();
    // Drop mary from kim's family so all live together.
    {
        let db = s.db_mut();
        let kim = db.oids().find_sym("kim1").unwrap();
        let fam = db.oids().find_sym("FamMembers").unwrap();
        let mary = db.oids().find_sym("mary123").unwrap();
        let members: Vec<oodb::Oid> = db
            .value(kim, fam, &[])
            .unwrap()
            .unwrap()
            .members()
            .filter(|&m| m != mary)
            .collect();
        db.set_set(kim, fam, &[], members).unwrap();
    }
    let r = s
        .query(
            "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 \
             and X.Residence =all X.FamMembers.Residence \
             and X.Salary < 35000",
        )
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["kim1"]);
}

/// Query (5): a two-column relation of company names and salaries.
#[test]
fn q05_relation_result() {
    let mut s = session();
    let r = s
        .query(
            "SELECT X.Name, W.Salary FROM Company X \
             WHERE X.Divisions.Employees[W]",
        )
        .unwrap();
    assert_eq!(r.arity(), 2);
    assert_eq!(r.len(), 2); // (UniSQL, 90000), (UniSQL, 30000)
    assert_eq!(r.columns(), &["Name".to_string(), "Salary".to_string()]);
}

/// Query (6): the explicit join — employee named like their company.
#[test]
fn q06_explicit_join() {
    let mut s = session();
    // Rename kim to match the company name.
    s.run("UPDATE CLASS Employee SET kim1.Name = 'UniSQL'")
        .unwrap();
    let r = s
        .query(
            "SELECT X, Y FROM Company X \
             WHERE X.Name =some X.Divisions.Employees[Y].Name",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    let row = r.iter().next().unwrap();
    assert_eq!(s.db().render(row[0]), "uniSQL");
    assert_eq!(s.db().render(row[1]), "kim1");
}

/// §3.1: the `FROM #X Y` template — classes of objects satisfying a
/// condition.
#[test]
fn q_class_variable_template() {
    let mut s = session();
    let r = s
        .query("SELECT #X FROM #X Y WHERE Y.Name['UniSQL']")
        .unwrap();
    let got = names(s.db(), &r);
    assert!(got.contains(&"Company".to_string()), "{got:?}");
}

/// §3.1: path variables (the sketched extension): reach a city without
/// knowing the distance.
#[test]
fn q_path_variable() {
    let mut s = session();
    let r = s
        .query("SELECT X FROM Company X WHERE X.*P.City['austin']")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["uniSQL"]);
}

/// Set operations over path expressions (§3.2) and relational algebra
/// over queries (§3.3).
#[test]
fn q_set_and_relational_ops() {
    let mut s = session();
    let r = s
        .query(
            "SELECT X FROM Person X WHERE X.Age > 30 \
             INTERSECT SELECT X FROM Person X WHERE X.Residence.City['austin']",
        )
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["john13"]);
    let r = s
        .query(
            "SELECT X FROM Employee X \
             MINUS SELECT X FROM Employee X WHERE X.Salary > 50000",
        )
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["kim1"]);
}

/// The trivial path: a selector is a path expression (m = 0); a numeral
/// denotes the singleton of itself (§3.2's `20`).
#[test]
fn q_trivial_paths() {
    let mut s = session();
    let r = s
        .query("SELECT X FROM Person X WHERE 20 < 30 and X.Name['Mary']")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["mary123"]);
    let r = s
        .query("SELECT X FROM Person X WHERE 20 > 30 and X.Name['Mary']")
        .unwrap();
    assert!(r.is_empty());
}

/// §3.1: a path over a non-existent object describes the empty set —
/// not an error.
#[test]
fn q_missing_object_empty() {
    let mut s = session();
    let r = s
        .query("SELECT X FROM Person X WHERE nosuchperson.Residence.City[X]")
        .unwrap();
    assert!(r.is_empty());
}

/// Figure 1 declares an attribute literally named `Function`; the
/// grammar must accept it as an identifier (only `OID FUNCTION OF`
/// treats it as a keyword).
#[test]
fn q_function_attribute_usable() {
    let mut s = session();
    let r = s
        .query("SELECT X FROM Division X WHERE X.Function['sales']")
        .unwrap();
    assert_eq!(names(s.db(), &r), vec!["divSales"]);
    let r = s
        .query("SELECT W FROM Division X WHERE X.Function[W]")
        .unwrap();
    assert_eq!(r.len(), 2);
}
