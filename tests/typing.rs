//! §6 integration tests: signatures, structural inheritance, liberal vs
//! strict well-typing, execution plans, exemptions — on the Figure 1,
//! Nobel and university databases.

use datagen::{figure1_db, nobel_db, university_db};
use oodb::Database;
use xsql::ast::Stmt;
use xsql::typing::{
    analyze, coherent, coherent_plans, declared_types, extract, is_subrange, possesses, strict,
    Exemptions, OccId, Range, TypeExpr, Verdict,
};
use xsql::{parse, resolve_stmt};

fn resolved(db: &mut Database, src: &str) -> xsql::ast::SelectQuery {
    let stmt = parse(src).unwrap();
    match resolve_stmt(db, &stmt).unwrap() {
        Stmt::Select(q) => q,
        s => panic!("expected select, got {s:?}"),
    }
}

#[test]
fn structural_inheritance_earns() {
    // §6.1: in Workstudy, earns possesses both declared types — the
    // intersection semantics of multiple structural inheritance.
    let db = university_db();
    let earns = db.oids().find_sym("earns").unwrap();
    let ws = db.oids().find_sym("Workstudy").unwrap();
    let project = db.oids().find_sym("Project").unwrap();
    let course = db.oids().find_sym("Course").unwrap();
    let pay = db.oids().find_sym("Pay").unwrap();
    let grade = db.oids().find_sym("Grade").unwrap();
    let te_pay = TypeExpr {
        args: vec![ws, project],
        result: pay,
        set_valued: false,
    };
    let te_grade = TypeExpr {
        args: vec![ws, course],
        result: grade,
        set_valued: false,
    };
    assert!(possesses(&db, earns, &te_pay));
    assert!(possesses(&db, earns, &te_grade));
    // But a workstudy earning a Grade from a Project is not possessed.
    let te_bad = TypeExpr {
        args: vec![ws, project],
        result: grade,
        set_valued: false,
    };
    assert!(!possesses(&db, earns, &te_bad));
}

#[test]
fn workstudy_double_signature_combined() {
    // workstudy : semester ==> {student, employee}: both signatures are
    // declared, and each is possessed.
    let db = university_db();
    let m = db.oids().find_sym("workstudy").unwrap();
    let tys = declared_types(&db, m, 1);
    assert_eq!(tys.len(), 2);
}

#[test]
fn strictly_typed_figure1_query() {
    let mut db = figure1_db();
    let q = resolved(
        &mut db,
        "SELECT W FROM Company X WHERE X.Divisions[Y].Manager.Salary[W]",
    );
    match analyze(&db, &q, &Exemptions::none()) {
        Verdict::StrictlyWellTyped { assignment, .. } => {
            let shape = extract(&db, &q).unwrap();
            // Y's range includes Division.
            let occs = shape.occurrences();
            let ranges = xsql::typing::ranges_for(&db, &shape, &assignment, &occs);
            let division = db.oids().find_sym("Division").unwrap();
            assert!(ranges["Y"].contains(&division));
        }
        v => panic!("expected strict, got {v:?}"),
    }
}

#[test]
fn nobel_exemption_spectrum() {
    let mut db = nobel_db();
    let q = resolved(&mut db, "SELECT X WHERE X.WonNobelPrize");
    // Conservative: not strictly well-typed.
    assert!(matches!(
        analyze(&db, &q, &Exemptions::none()),
        Verdict::LiberallyWellTyped { .. }
    ));
    // Exempting the 0th argument of WonNobelPrize: type-correct.
    let ex = Exemptions::none().exempt(OccId { path: 0, step: 0 }, 0);
    assert!(matches!(
        analyze(&db, &q, &ex),
        Verdict::StrictlyWellTyped { .. }
    ));
    // The fully liberal exemption set behaves like liberal typing.
    assert!(matches!(
        analyze(&db, &q, &Exemptions::all()),
        Verdict::StrictlyWellTyped { .. }
    ));
}

#[test]
fn specifying_the_class_restores_strictness() {
    // The conservative alternative the paper describes: name the classes
    // for which WonNobelPrize is defined.
    let mut db = nobel_db();
    let q = resolved(&mut db, "SELECT X FROM Scientist X WHERE X.WonNobelPrize");
    assert!(matches!(
        analyze(&db, &q, &Exemptions::none()),
        Verdict::StrictlyWellTyped { .. }
    ));
}

#[test]
fn mistyped_comparison_rejected() {
    // Comparing a salary with a string is not well-defined under any
    // assignment: ill-typed.
    let mut db = figure1_db();
    let q = resolved(&mut db, "SELECT X FROM Employee X WHERE X.Salary > X.Name");
    assert!(matches!(
        analyze(&db, &q, &Exemptions::none()),
        Verdict::IllTyped
    ));
}

#[test]
fn mary_residence_salary_type_error() {
    // §3.1: "mary123.Residence.Salary … is a type error, since the
    // result of Residence is an Address, but Salary is not an attribute
    // of that class."
    let mut db = figure1_db();
    let q = resolved(
        &mut db,
        "SELECT W FROM Person X WHERE mary123.Residence.Salary[W]",
    );
    assert!(matches!(
        analyze(&db, &q, &Exemptions::none()),
        Verdict::IllTyped
    ));
    // And evaluation (which typing does not affect — it is metalogical)
    // simply returns no answers.
    let mut s = xsql::Session::new(figure1_db());
    let r = s
        .query("SELECT W FROM Person X WHERE mary123.Residence.Salary[W]")
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn plan_coherence_on_figure1_cycle_query() {
    // The (17) pattern on the Figure 1 schema: Vehicle -> Manufacturer
    // -> President -> OwnedVehicles.
    let mut db = figure1_db();
    let q = resolved(
        &mut db,
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] \
         and M.President.OwnedVehicles[X]",
    );
    let shape = extract(&db, &q).unwrap();
    let (asg, plan) = strict(&db, &shape, &Exemptions::none()).expect("strict");
    assert_eq!(plan, vec![0, 1]);
    assert!(!coherent(
        &db,
        &shape,
        &asg,
        &vec![1, 0],
        &Exemptions::none()
    ));
    assert_eq!(
        coherent_plans(&db, &shape, &asg, &Exemptions::none()),
        vec![vec![0, 1]]
    );
}

#[test]
fn subrange_and_object_default() {
    let db = figure1_db();
    let object = db.builtins().object;
    let vehicle = db.oids().find_sym("Vehicle").unwrap();
    let auto = db.oids().find_sym("Automobile").unwrap();
    let mut r = Range::new();
    r.insert(object);
    assert!(!is_subrange(&db, &r, vehicle));
    r.insert(auto);
    assert!(is_subrange(&db, &r, vehicle));
}

#[test]
fn all_plans_enumeration_counts() {
    use xsql::typing::all_plans;
    assert_eq!(all_plans(0).len(), 1); // the empty plan
    assert_eq!(all_plans(1).len(), 1);
    assert_eq!(all_plans(3).len(), 6);
    assert_eq!(all_plans(4).len(), 24);
}

#[test]
fn kary_method_occurrence_typed() {
    // The university workstudy method: strict typing of a k-ary
    // occurrence with a FROM-bound argument.
    let mut db = university_db();
    let q = resolved(
        &mut db,
        "SELECT W FROM Department X, Semester S WHERE X.(workstudy @ S)[W]",
    );
    match analyze(&db, &q, &Exemptions::none()) {
        Verdict::StrictlyWellTyped { assignment, .. } => {
            let shape = extract(&db, &q).unwrap();
            let occs = shape.occurrences();
            assert_eq!(occs.len(), 1);
            let te = &assignment.types[&occs[0]];
            assert_eq!(te.arity(), 1);
            assert!(te.set_valued);
        }
        v => panic!("expected strict, got {v:?}"),
    }
}

#[test]
fn polymorphic_earns_assignment_depends_on_argument_class() {
    let mut db = university_db();
    // earns with a Project argument must be typed at Employee=>Pay.
    let q = resolved(
        &mut db,
        "SELECT W FROM Workstudy X, Project P WHERE X.(earns @ P)[W]",
    );
    match analyze(&db, &q, &Exemptions::none()) {
        Verdict::StrictlyWellTyped { assignment, .. } => {
            let shape = extract(&db, &q).unwrap();
            let occ = shape.occurrences()[0];
            let pay = db.oids().find_sym("Pay").unwrap();
            assert_eq!(assignment.types[&occ].result, pay);
        }
        v => panic!("expected strict, got {v:?}"),
    }
    // With a Course argument, the Grade signature is forced instead.
    let q = resolved(
        &mut db,
        "SELECT W FROM Workstudy X, Course C WHERE X.(earns @ C)[W]",
    );
    match analyze(&db, &q, &Exemptions::none()) {
        Verdict::StrictlyWellTyped { assignment, .. } => {
            let shape = extract(&db, &q).unwrap();
            let occ = shape.occurrences()[0];
            let grade = db.oids().find_sym("Grade").unwrap();
            assert_eq!(assignment.types[&occ].result, grade);
        }
        v => panic!("expected strict, got {v:?}"),
    }
}

#[test]
fn distinct_occurrences_get_distinct_types() {
    // §6.2: "Distinct occurrences of the same method name may be
    // assigned different type expressions" — earns twice, once per
    // argument class.
    let mut db = university_db();
    let q = resolved(
        &mut db,
        "SELECT W, V FROM Workstudy X, Project P, Course C \
         WHERE X.(earns @ P)[W] and X.(earns @ C)[V]",
    );
    match analyze(&db, &q, &Exemptions::none()) {
        Verdict::StrictlyWellTyped { assignment, .. } => {
            let tys: Vec<_> = assignment.types.values().collect();
            assert_eq!(tys.len(), 2);
            assert_ne!(tys[0], tys[1]);
        }
        v => panic!("expected strict, got {v:?}"),
    }
}
