//! Fault-injected crash-recovery properties (see docs/DURABILITY.md).
//!
//! For random statement scripts, random crash points and every
//! [`CrashMode`], a session over a [`FaultFs`]-backed store is killed
//! mid-script and reopened. The properties:
//!
//! 1. **Statement atomicity across crashes** — the recovered database
//!    equals the reference state at *some* statement boundary of the
//!    executed prefix, never a hybrid of a half-applied statement.
//! 2. **Durability floor** — that boundary is never earlier than the
//!    last statement the session acknowledged outside an open
//!    transaction (acked auto-commits and `COMMIT WORK`s survive; an
//!    open transaction's buffered statements may vanish).
//! 3. **Recovery idempotence** — reopening the same surviving image a
//!    second time replays the same WAL tail and yields the identical
//!    database.
//!
//! The reference session is storeless and runs the same script in
//! lockstep; states are compared via the canonical [`dump_script`]
//! text, which is insensitive to OID interning order.

use oodb::Database;
use proptest::prelude::*;
use std::path::Path;
use storage::{CrashMode, FaultFs};
use xsql::{dump_script, Session, XsqlError};

const DIR: &str = "/db";

fn open(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        Default::default(),
    )
}

fn dump(s: &Session) -> String {
    dump_script(s.db()).expect("dump").0
}

/// Fixed schema prologue, run on both sessions before the fault is
/// armed. Includes a computed method so recovery's definitional-replay
/// path is exercised by every case.
const PROLOGUE: &[&str] = &[
    "CREATE CLASS Base",
    "CREATE CLASS Extra AS SUBCLASS OF Base",
    "ALTER CLASS Base ADD SIGNATURE Num => Numeral",
    "ALTER CLASS Base ADD SIGNATURE Pals =>> Base",
    "ALTER CLASS Base ADD SIGNATURE Kind => String \
     SELECT (Kind @) = 'base' FROM Base X OID X",
    "CREATE OBJECT seed0 CLASS Base SET Num = 0",
];

/// Renders raw op tuples into a statement script that cannot fail for
/// non-storage reasons: object names are unique, receivers exist (a
/// rolled-back transaction's objects are forgotten), transactions are
/// opened and closed alternately, and `CHECKPOINT` is only emitted
/// outside a transaction.
fn render_script(ops: &[(u8, u8, i64)]) -> Vec<String> {
    let mut stmts = Vec::new();
    let mut objs: Vec<String> = vec!["seed0".to_string()];
    let mut txn_mark: Option<usize> = None;
    let mut defs = 0usize;
    for (i, &(kind, a, v)) in ops.iter().enumerate() {
        match kind % 6 {
            0 => {
                let name = format!("obj{i}");
                let class = if a % 2 == 0 { "Base" } else { "Extra" };
                stmts.push(format!("CREATE OBJECT {name} CLASS {class} SET Num = {v}"));
                objs.push(name);
            }
            1 => {
                let o = &objs[a as usize % objs.len()];
                stmts.push(format!("UPDATE CLASS Object SET {o}.Num = {v}"));
            }
            2 => {
                let o = objs[a as usize % objs.len()].clone();
                let p = &objs[v.unsigned_abs() as usize % objs.len()];
                stmts.push(format!("UPDATE CLASS Object SET {o}.Pals = {o} union {p}"));
            }
            3 => match txn_mark.take() {
                Some(mark) => {
                    if v % 2 == 0 {
                        stmts.push("COMMIT WORK".to_string());
                    } else {
                        stmts.push("ROLLBACK WORK".to_string());
                        objs.truncate(mark);
                    }
                }
                None => {
                    stmts.push("BEGIN WORK".to_string());
                    txn_mark = Some(objs.len());
                }
            },
            4 => {
                if txn_mark.is_none() {
                    stmts.push("CHECKPOINT".to_string());
                }
            }
            _ => {
                defs += 1;
                stmts.push(format!(
                    "ALTER CLASS Base ADD SIGNATURE Tag{defs} => String \
                     SELECT (Tag{defs} @) = 'v{defs}' FROM Base X OID X"
                ));
            }
        }
    }
    stmts
}

fn run_crash_case(
    ops: &[(u8, u8, i64)],
    crash_after: u64,
    mode: CrashMode,
) -> Result<(), TestCaseError> {
    let fs = FaultFs::new();
    let mut stored = open(&fs).expect("fresh store");
    let mut reference = Session::new(Database::new());
    for s in PROLOGUE {
        stored.run(s).expect("prologue (stored)");
        reference.run(s).expect("prologue (reference)");
    }
    let script = render_script(ops);

    // `boundaries[i]` is the reference state at the i-th durable
    // statement boundary; `floor` indexes the last boundary the stored
    // session acknowledged outside a transaction.
    let mut boundaries = vec![dump(&reference)];
    let mut floor = 0usize;
    fs.fail_after_ops(crash_after);
    for stmt in &script {
        match stored.run(stmt) {
            Ok(_) => {
                if stmt != "CHECKPOINT" {
                    reference.run(stmt).expect("reference mirrors stored");
                }
                if !stored.in_transaction() {
                    boundaries.push(dump(&reference));
                    floor = boundaries.len() - 1;
                }
            }
            Err(XsqlError::Storage(_)) => {
                // The commit record may still have reached the log in
                // full before the failing fsync, so the post-statement
                // state is a legal (if unacknowledged) recovery target.
                if stmt != "CHECKPOINT"
                    && reference.run(stmt).is_ok()
                    && !reference.in_transaction()
                {
                    boundaries.push(dump(&reference));
                }
                break;
            }
            Err(e) => panic!("non-storage failure on `{stmt}`: {e}"),
        }
    }

    fs.crash(mode);
    let recovered = match open(&fs) {
        Ok(s) => s,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "recovery failed after {mode:?} crash: {e}"
            )))
        }
    };
    let rdump = dump(&recovered);
    prop_assert!(
        boundaries[floor..].contains(&rdump),
        "recovered state is not an acked-or-later statement boundary \
         (mode {:?}, crash_after {}):\n{}",
        mode,
        crash_after,
        rdump
    );

    // Idempotence: a second open replays the same surviving WAL tail.
    drop(recovered);
    let again = open(&fs).expect("second recovery");
    prop_assert_eq!(dump(&again), rdump, "second replay diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(126))]

    #[test]
    fn recovery_is_atomic_durable_and_idempotent_torn_tail(
        ops in proptest::collection::vec((0u8..6, 0u8..8, -4i64..5), 1..22),
        crash_after in 0u64..80,
    ) {
        run_crash_case(&ops, crash_after, CrashMode::TornTail)?;
    }

    #[test]
    fn recovery_is_atomic_durable_and_idempotent_lost_fsync(
        ops in proptest::collection::vec((0u8..6, 0u8..8, -4i64..5), 1..22),
        crash_after in 0u64..80,
    ) {
        run_crash_case(&ops, crash_after, CrashMode::LostFsync)?;
    }

    #[test]
    fn recovery_is_atomic_durable_and_idempotent_bit_flip(
        ops in proptest::collection::vec((0u8..6, 0u8..8, -4i64..5), 1..22),
        crash_after in 0u64..80,
    ) {
        run_crash_case(&ops, crash_after, CrashMode::BitFlip)?;
    }

    #[test]
    fn recovery_is_atomic_durable_and_idempotent_lost_rename(
        ops in proptest::collection::vec((0u8..6, 0u8..8, -4i64..5), 1..22),
        crash_after in 0u64..80,
    ) {
        run_crash_case(&ops, crash_after, CrashMode::LostRename)?;
    }
}

/// A crash with no fault armed (clean shutdown image) recovers exactly
/// the final state — the degenerate corner the properties above only
/// hit when `crash_after` exceeds the script's I/O count.
#[test]
fn clean_image_recovers_final_state() {
    let fs = FaultFs::new();
    let mut stored = open(&fs).unwrap();
    for s in PROLOGUE {
        stored.run(s).unwrap();
    }
    stored.run("CHECKPOINT").unwrap();
    stored
        .run("CREATE OBJECT late1 CLASS Extra SET Num = 9")
        .unwrap();
    let before = dump(&stored);
    drop(stored);
    fs.crash(CrashMode::LostFsync);
    let recovered = open(&fs).unwrap();
    assert_eq!(dump(&recovered), before);
}
