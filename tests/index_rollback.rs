//! Attribute-index consistency under transactions (satellite of the
//! cost-based planner PR).
//!
//! The ordered secondary index (`oodb::attr_index`) is maintained
//! incrementally through every mutating entry point *and* through
//! undo/redo application, so `BEGIN … ROLLBACK WORK`, savepoints and
//! crash recovery must all leave it bit-identical to a fresh rebuild
//! from the stored state — otherwise an index-assisted plan could
//! serve a value a rollback already reverted. These tests pin that
//! invariant three ways:
//!
//! 1. property-based, at the `Database` API level, over random
//!    interleavings of scalar/set mutations with savepoints, partial
//!    rollbacks and commits (`attr_index_divergence` is the oracle);
//! 2. property-based, at the `Session` level, interleaving
//!    `BEGIN`/`UPDATE`/`ROLLBACK WORK`/`COMMIT WORK` with index-backed
//!    planner queries crossed against the naive and no-index engines;
//! 3. end-to-end through crash recovery: a store with committed work, a
//!    checkpoint and a rolled-back transaction is reopened and the
//!    recovered index must match a rebuild exactly.

use oodb::{Database, DbBuilder, Oid, Savepoint, ValueKey};
use proptest::prelude::*;
use std::path::Path;
use storage::FaultFs;
use xsql::{EvalOptions, Session, Strategy};

/// A small database whose every attribute participates in the index:
/// a scalar numeral, a scalar string and a set-valued reference.
fn small_db() -> (Database, Vec<Oid>, [Oid; 3], Vec<Oid>) {
    let mut b = DbBuilder::new();
    b.class("Thing");
    let age = b.attr("Thing", "Age", "Numeral");
    let name = b.attr("Thing", "Name", "String");
    let pals = b.set_attr("Thing", "Pals", "Thing");
    let objs: Vec<Oid> = (0..6).map(|i| b.obj(&format!("t{i}"), "Thing")).collect();
    let vals: Vec<Oid> = (0..6).map(|v| b.int(v)).collect();
    (b.build(), objs, [age, name, pals], vals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random mutation/savepoint/rollback interleavings at the
    /// `Database` level: after *every* operation the live index equals
    /// a fresh rebuild, and equality probes answer exactly what the
    /// rebuild would.
    #[test]
    fn index_matches_rebuild_under_savepoint_interleavings(
        ops in proptest::collection::vec((0u8..7, 0u8..6, 0u8..6), 0..48),
    ) {
        let (mut db, objs, [age, name, pals], vals) = small_db();
        let strs: Vec<Oid> = (0..6)
            .map(|v| db.oids_mut().str(&format!("s{v}")))
            .collect();
        let mut marks: Vec<Savepoint> = Vec::new();
        for &(kind, o, v) in &ops {
            let (recv, val) = (objs[o as usize], v as usize);
            match kind % 7 {
                0 => db.set_scalar(recv, age, &[], vals[val]).unwrap(),
                1 => db.set_scalar(recv, name, &[], strs[val]).unwrap(),
                2 => db.insert_into_set(recv, pals, &[], objs[val]).unwrap(),
                3 => db.remove_value(recv, if val % 2 == 0 { age } else { pals }, &[]),
                4 => marks.push(db.savepoint()),
                5 => {
                    // Stack discipline keeps every popped mark valid:
                    // rolling back only truncates the log beyond it.
                    if let Some(sp) = marks.pop() {
                        db.rollback_to(sp).unwrap();
                    }
                }
                _ => {
                    db.commit();
                    marks.clear(); // outstanding marks are now stale
                }
            }
            let divergence = db.attr_index_divergence();
            prop_assert!(
                divergence.is_empty(),
                "index diverged from rebuild after op {:?}: {:?}",
                (kind % 7, o, v),
                divergence
            );
        }
        // Equality probes agree with the rebuild, key by key.
        let rebuilt = db.rebuilt_attr_index();
        for m in [age, name, pals] {
            for &v in vals.iter().chain(strs.iter()).chain(objs.iter()) {
                let key = ValueKey::of(db.oids(), v);
                let live = db.attr_receivers_eq(m, &key);
                let want = rebuilt
                    .get(&m)
                    .and_then(|idx| idx.get(&key))
                    .cloned()
                    .unwrap_or_default();
                prop_assert_eq!(&live, &want, "method {:?} key {:?}", m, key);
            }
        }
    }
}

/// One session database for the planner-facing property: four objects
/// with a numeral attribute the planner can probe.
fn session_db() -> Database {
    let mut b = DbBuilder::new();
    b.class("Item");
    b.attr("Item", "Num", "Numeral");
    for i in 0..4 {
        let o = b.obj(&format!("t{i}"), "Item");
        b.set_int(o, "Num", i);
    }
    b.build()
}

/// Runs `q` under one engine configuration.
fn query_as(s: &mut Session, q: &str, opts: EvalOptions) -> relalg::Relation {
    s.set_options(opts);
    s.query(q).unwrap()
}

fn planner_opts() -> EvalOptions {
    EvalOptions {
        strategy: Strategy::Pipelined,
        use_planner: true,
        use_method_index: true,
        parallelism: 1,
        ..EvalOptions::default()
    }
}

fn naive_opts() -> EvalOptions {
    EvalOptions {
        strategy: Strategy::Naive,
        parallelism: 1,
        ..EvalOptions::default()
    }
}

fn no_index_opts() -> EvalOptions {
    EvalOptions {
        strategy: Strategy::Pipelined,
        use_planner: true,
        use_method_index: false,
        parallelism: 1,
        ..EvalOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleaves transactional statements with index-backed queries:
    /// after every statement, (a) the index equals a rebuild, and
    /// (b) for every probe value the planner's answer is bit-identical
    /// to the naive oracle and to the index-less engine — so the index
    /// can never serve a value a rollback reverted.
    #[test]
    fn planner_never_serves_reverted_values(
        ops in proptest::collection::vec((0u8..6, 0u8..4, 0u8..6), 0..24),
    ) {
        let mut s = Session::new(session_db());
        let mut in_txn = false;
        for &(kind, o, v) in &ops {
            match kind % 6 {
                0 if !in_txn => {
                    s.run("BEGIN WORK").unwrap();
                    in_txn = true;
                }
                1 if in_txn => {
                    s.run("ROLLBACK WORK").unwrap();
                    in_txn = false;
                }
                2 if in_txn => {
                    s.run("COMMIT WORK").unwrap();
                    in_txn = false;
                }
                3..=5 => {
                    s.run(&format!("UPDATE CLASS Item SET t{o}.Num = {v}")).unwrap();
                }
                _ => {}
            }
            let divergence = s.db().attr_index_divergence();
            prop_assert!(divergence.is_empty(), "{divergence:?}");
            for val in 0..6 {
                let q = format!("SELECT X FROM Item X WHERE X.Num = {val}");
                let planned = query_as(&mut s, &q, planner_opts());
                let naive = query_as(&mut s, &q, naive_opts());
                let unindexed = query_as(&mut s, &q, no_index_opts());
                prop_assert_eq!(&planned, &naive, "planner vs naive on {}", &q);
                prop_assert_eq!(&planned, &unindexed, "planner vs no-index on {}", &q);
            }
        }
    }
}

/// `ROLLBACK WORK` through the session surface: a value written inside
/// the transaction is served while the transaction is open and gone —
/// from index-assisted plans included — after the rollback.
#[test]
fn rollback_work_reverts_index_probes() {
    let mut s = Session::new(datagen::figure1_db());
    let q = "SELECT X FROM Person X WHERE X.Age = 77";
    assert!(query_as(&mut s, q, planner_opts()).is_empty());

    s.run("BEGIN WORK").unwrap();
    s.run("UPDATE CLASS Person SET john13.Age = 77").unwrap();
    assert!(s.db().attr_index_divergence().is_empty());
    let mid_planner = query_as(&mut s, q, planner_opts());
    let mid_naive = query_as(&mut s, q, naive_opts());
    assert_eq!(mid_planner.len(), 1, "update visible inside the txn");
    assert_eq!(mid_planner, mid_naive);

    s.run("ROLLBACK WORK").unwrap();
    assert!(s.db().attr_index_divergence().is_empty());
    assert!(
        query_as(&mut s, q, planner_opts()).is_empty(),
        "index must not serve the reverted Age"
    );
    assert_eq!(
        query_as(&mut s, q, planner_opts()),
        query_as(&mut s, q, naive_opts())
    );
}

/// Crash recovery: a store with committed updates, a checkpoint, more
/// updates and a rolled-back transaction is reopened; the recovered
/// index must equal a rebuild and index-assisted queries must agree
/// with the naive engine on the recovered state.
#[test]
fn recovered_store_has_consistent_attr_index() {
    let fs = FaultFs::new();
    let open = |fs: &FaultFs| -> Session {
        Session::open_dir(
            Box::new(fs.clone()),
            Path::new("/db"),
            Database::new(),
            "empty",
            EvalOptions {
                parallelism: 1,
                ..EvalOptions::default()
            },
        )
        .unwrap()
    };

    let mut s = open(&fs);
    for stmt in [
        "CREATE CLASS Item",
        "ALTER CLASS Item ADD SIGNATURE Num => Numeral",
        "CREATE OBJECT a CLASS Item SET Num = 1",
        "CREATE OBJECT b CLASS Item SET Num = 2",
        "UPDATE CLASS Item SET a.Num = 5",
        "CHECKPOINT",
        // Past the checkpoint: recovered from the WAL tail.
        "UPDATE CLASS Item SET b.Num = 5",
        "BEGIN WORK",
        "UPDATE CLASS Item SET a.Num = 99",
        "ROLLBACK WORK",
    ] {
        s.run(stmt).unwrap();
    }
    assert!(s.db().attr_index_divergence().is_empty());
    drop(s);

    let mut s = open(&fs);
    let divergence = s.db().attr_index_divergence();
    assert!(divergence.is_empty(), "after recovery: {divergence:?}");
    // The committed updates survived, the rolled-back one did not…
    assert_eq!(
        query_as(
            &mut s,
            "SELECT X FROM Item X WHERE X.Num = 5",
            planner_opts()
        )
        .len(),
        2
    );
    assert!(query_as(
        &mut s,
        "SELECT X FROM Item X WHERE X.Num = 99",
        planner_opts()
    )
    .is_empty());
    // …and the planner agrees with the naive oracle on everything.
    for val in [1, 2, 5, 99] {
        let q = format!("SELECT X FROM Item X WHERE X.Num = {val}");
        assert_eq!(
            query_as(&mut s, &q, planner_opts()),
            query_as(&mut s, &q, naive_opts()),
            "{q}"
        );
    }
}
