//! §4.2: the CompSalaries view — definition (9), querying through the
//! view (10), mixing views and non-views, and view-update translation.

use datagen::figure1_db;
use xsql::{Outcome, Session};

const COMP_SALARIES: &str = "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
     SIGNATURE CompName => String, DivName => String, Salary => Numeral \
     SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary \
     FROM Company X OID FUNCTION OF X,W \
     WHERE X.Divisions[Y].Employees[W]";

#[test]
fn q09_view_definition() {
    let mut s = Session::new(figure1_db());
    let out = s.run(COMP_SALARIES).unwrap();
    let Outcome::ViewCreated { class, count } = out else {
        panic!()
    };
    assert_eq!(count, 2); // (uniSQL,john13), (uniSQL,kim1)
                          // The view is a subclass of Object with the declared signatures.
    assert!(s.db().is_class(class));
    let sigs = s.db().direct_signatures(class);
    assert_eq!(sigs.len(), 3);
    // The view objects contain no reference to the employees — only
    // company name, division name, salary (the security point of §4.2).
    let ext = s.db().instances_of(class);
    assert_eq!(ext.len(), 2);
}

#[test]
fn q10_query_through_view() {
    let mut s = Session::new(figure1_db());
    s.run(COMP_SALARIES).unwrap();
    // Query (10): names of automobile-manufacturing companies paying
    // someone over $35,000 — the view's id-function applied to
    // (X.Manufacturer, W), a view and base classes in one query.
    let r = s
        .query(
            "SELECT X.Manufacturer.Name FROM Automobile X, Employee W \
             WHERE CompSalaries(X.Manufacturer, W).Salary > 35000",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    let row = r.iter().next().unwrap();
    assert_eq!(s.db().render(row[0]), "'UniSQL'");
    // Raising the threshold above every salary empties the answer.
    let r = s
        .query(
            "SELECT X.Manufacturer.Name FROM Automobile X, Employee W \
             WHERE CompSalaries(X.Manufacturer, W).Salary > 95000",
        )
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn view_as_ordinary_class() {
    let mut s = Session::new(figure1_db());
    s.run(COMP_SALARIES).unwrap();
    let r = s
        .query("SELECT V FROM CompSalaries V WHERE V.Salary > 35000")
        .unwrap();
    assert_eq!(r.len(), 1);
    // Two view objects with equal attributes would still be distinct
    // objects (distinct id-terms) — the aggregate-information point.
    let r = s.query("SELECT V FROM CompSalaries V").unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn view_update_translated_to_database() {
    // §4.2: a view keyed by the employee alone is in one-to-one
    // correspondence with Employee; updating Salary through it updates
    // the employee.
    let mut s = Session::new(figure1_db());
    s.run(
        "CREATE VIEW EmpSalaries AS SUBCLASS OF Object \
         SIGNATURE Salary => Numeral \
         SELECT Salary = W.Salary FROM Employee W OID FUNCTION OF W \
         WHERE W.Salary",
    )
    .unwrap();
    let kim = s.db().oids().find_sym("kim1").unwrap();
    let f = s.db().oids().find_sym("EmpSalaries").unwrap();
    let vobj = s.db().oids().find_func(f, &[kim]).unwrap();
    let raised = s.db_mut().oids_mut().int(33000);
    s.update_view("EmpSalaries", vobj, "Salary", raised)
        .unwrap();
    let sal = s.db().oids().find_sym("Salary").unwrap();
    let v = s.db().value(kim, sal, &[]).unwrap().unwrap();
    assert_eq!(
        s.db().oids().as_number(v.as_scalar().unwrap()),
        Some(33000.0)
    );
}

#[test]
fn view_update_rejected_without_correspondence() {
    // CompSalaries depends on (X, W): no one-to-one correspondence with
    // a single base class through CompName.
    let mut s = Session::new(figure1_db());
    s.run(COMP_SALARIES).unwrap();
    let uni = s.db().oids().find_sym("uniSQL").unwrap();
    let john = s.db().oids().find_sym("john13").unwrap();
    let f = s.db().oids().find_sym("CompSalaries").unwrap();
    let vobj = s.db().oids().find_func(f, &[uni, john]).unwrap();
    let v = s.db_mut().oids_mut().int(1);
    assert!(s.update_view("CompSalaries", vobj, "Salary", v).is_err());
}

#[test]
fn view_refresh_after_base_update() {
    let mut s = Session::new(figure1_db());
    s.run(
        "CREATE VIEW HighEarners AS SUBCLASS OF Object \
         SIGNATURE Name => String \
         SELECT Name = W.Name FROM Employee W OID FUNCTION OF W \
         WHERE W.Salary > 50000",
    )
    .unwrap();
    let cls = s.db().oids().find_sym("HighEarners").unwrap();
    assert_eq!(s.db().instances_of(cls).len(), 1); // john13 (90000)
    s.run("UPDATE CLASS Employee SET kim1.Salary = 120000")
        .unwrap();
    let n = s.refresh_view("HighEarners").unwrap();
    assert_eq!(n, 2);
    assert_eq!(s.db().instances_of(cls).len(), 2);
}

#[test]
fn view_over_view_hierarchy() {
    // The paper defers view hierarchies to [KSK92], but because views
    // are ordinary classes here, a view can be a subclass of another
    // view and instances are shared through IS-A.
    let mut s = Session::new(figure1_db());
    s.run(
        "CREATE VIEW Salaried AS SUBCLASS OF Object \
         SIGNATURE Pay => Numeral \
         SELECT Pay = W.Salary FROM Employee W OID FUNCTION OF W WHERE W.Salary",
    )
    .unwrap();
    s.run(
        "CREATE VIEW WellPaid AS SUBCLASS OF Salaried \
         SIGNATURE Pay => Numeral \
         SELECT Pay = W.Salary FROM Employee W OID FUNCTION OF W WHERE W.Salary > 50000",
    )
    .unwrap();
    // WellPaid objects are Salaried too (IS-A), so querying the
    // superview sees them.
    let r = s.query("SELECT V FROM Salaried V").unwrap();
    assert_eq!(r.len(), 3); // 2 Salaried(w) + 1 WellPaid(w) object
    let r = s
        .query("SELECT V FROM WellPaid V WHERE V.Pay > 50000")
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn anonymous_and_named_id_functions_coexist() {
    let mut s = Session::new(figure1_db());
    s.run(
        "CREATE VIEW EmpView AS SUBCLASS OF Object SIGNATURE Nm => String \
         SELECT Nm = W.Name FROM Employee W OID FUNCTION OF W",
    )
    .unwrap();
    // The view's id-function is its name: EmpView(john13) denotes the
    // view object in queries.
    let r = s
        .query("SELECT V FROM EmpView V WHERE EmpView(john13).Nm = V.Nm and V.Nm['John']")
        .unwrap();
    assert_eq!(r.len(), 1);
}
