//! Torn-final-record sweep: byte-exact recovery at every tear point.
//!
//! A crash can tear the last WAL append at *any* byte boundary — after
//! the header, mid-payload, or before a single byte of a freshly
//! rotated segment landed. For every prefix length of the final
//! appended record (including length 0, the torn-across-a-rotation
//! case where the new segment exists but is empty), recovery must yield
//! **exactly** the state of the last complete commit unit: nothing
//! lost before the tear, nothing invented after it, and the store must
//! remain writable afterwards.
//!
//! The sweep runs twice per case: once with one-record-per-segment
//! rotation (the tear always lands at a segment boundary) and once with
//! a single large segment (the tear lands mid-segment, after intact
//! records).

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use storage::fault::FaultFs;
use storage::{StorageFs, StoreConfig};
use xsql::{dump_script, EvalOptions, Session, XsqlError};

const DIR: &str = "/db";

fn open(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        oodb::Database::new(),
        "empty",
        EvalOptions::default(),
    )
}

/// The statements of the workload; each one commits as one WAL unit.
fn statements(n_objs: usize, pad: usize) -> Vec<String> {
    let mut stmts = vec![
        "CREATE CLASS Parcel".to_string(),
        "ALTER CLASS Parcel ADD SIGNATURE Num => Numeral".to_string(),
        "ALTER CLASS Parcel ADD SIGNATURE Tag => String".to_string(),
    ];
    for i in 1..=n_objs {
        stmts.push(format!(
            "CREATE OBJECT p{i} CLASS Parcel SET Num = {i}, Tag = '{}'",
            "x".repeat(pad)
        ));
    }
    stmts
}

/// Canonical dump of the state after running the first `k` statements
/// on a fresh in-memory database.
fn expected_dump(stmts: &[String], k: usize) -> String {
    let mut s = Session::with_options(oodb::Database::new(), EvalOptions::default());
    for stmt in &stmts[..k] {
        s.run(stmt).expect("reference replay");
    }
    dump_script(s.db()).expect("reference dump").0
}

fn dump(s: &Session) -> String {
    dump_script(s.db()).expect("dump").0
}

/// Highest-numbered `wal.NNNNNN` segment present in the store.
fn last_segment(fs: &FaultFs) -> PathBuf {
    let mut last = None;
    for idx in 1..=10_000u64 {
        let p = Path::new(DIR).join(format!("wal.{idx:06}"));
        if fs.exists(&p) {
            last = Some(p);
        }
    }
    last.expect("store has at least one WAL segment")
}

/// Byte offset where the final record of `bytes` begins, by walking the
/// `|len u32|crc u32|seq u64|payload|` framing (skipping the segment's
/// generation header).
fn final_record_start(bytes: &[u8]) -> u64 {
    const HEADER: usize = 16;
    let start = if bytes.starts_with(storage::wal::SEG_MAGIC) {
        storage::wal::SEG_HEADER
    } else {
        0
    };
    let (mut off, mut last) = (start, start);
    while off + HEADER <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + HEADER + len > bytes.len() {
            break;
        }
        last = off;
        off += HEADER + len;
    }
    assert_eq!(off, bytes.len(), "workload WAL must end on a record edge");
    last as u64
}

/// Builds a store from `stmts` under `cfg`, then tears the final record
/// at every byte boundary and asserts each tear recovers to exactly the
/// state of the last complete commit unit.
fn sweep(stmts: &[String], cfg: StoreConfig) {
    let fs = FaultFs::new();
    {
        let mut s = open(&fs).expect("fresh store");
        s.set_store_config(cfg);
        for stmt in stmts {
            s.run(stmt).expect("workload");
        }
    }
    let seg = last_segment(&fs);
    let full = fs.read(&seg).expect("read final segment");
    let tail = final_record_start(&full);
    let prev_state = expected_dump(stmts, stmts.len() - 1);
    let full_state = expected_dump(stmts, stmts.len());

    let rec_len = full.len() as u64 - tail;
    for torn in 0..rec_len {
        fs.write(&seg, &full[..(tail + torn) as usize])
            .expect("tear the segment");
        let s = open(&fs).unwrap_or_else(|e| panic!("tear at +{torn}: recovery failed: {e}"));
        let info = s.recovery_info().expect("durable open reports recovery");
        assert_eq!(
            info.wal_units,
            stmts.len() - 1,
            "tear at +{torn}: wrong number of units replayed"
        );
        let salvage = &info.salvage;
        if torn == 0 {
            // The record never landed: the log ends cleanly (for the
            // boundary config, on an empty freshly rotated segment).
            assert!(salvage.is_none(), "tear at +0 reported {salvage:?}");
        } else {
            let r = salvage.as_ref().unwrap_or_else(|| {
                panic!("tear at +{torn}: torn tail not reported");
            });
            assert_eq!(r.offset, tail, "tear at +{torn}: wrong salvage offset");
            assert_eq!(
                r.bytes_dropped, torn,
                "tear at +{torn}: wrong bytes dropped"
            );
            assert_eq!(
                r.records_dropped, 0,
                "a torn tail is not a parseable record"
            );
            assert!(
                r.quarantined.is_empty(),
                "a torn tail truncates in place, never quarantines: {r:?}"
            );
        }
        assert_eq!(
            dump(&s),
            prev_state,
            "tear at +{torn} of {rec_len}: state is not exactly the last complete unit"
        );
    }

    // Untorn baseline: the full final record replays.
    fs.write(&seg, &full).expect("restore the segment");
    let mut s = open(&fs).expect("untorn reopen");
    assert!(s.recovery_info().expect("recovery info").salvage.is_none());
    assert_eq!(dump(&s), full_state, "untorn reopen lost state");

    // The salvaged store (healed in place during the sweep) stayed
    // writable: one more commit survives another reopen.
    s.run("CREATE OBJECT straggler CLASS Parcel SET Num = 999, Tag = 'late'")
        .expect("post-salvage store accepts writes");
    drop(s);
    let mut s = open(&fs).expect("reopen after post-salvage write");
    let rel = s
        .query("SELECT X FROM Parcel X WHERE X.Num[999]")
        .expect("post-salvage read");
    assert_eq!(rel.len(), 1, "post-salvage commit did not survive reopen");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: every prefix length of the last appended record —
    /// torn mid-segment and torn across a rotation boundary — recovers
    /// to exactly the last full commit unit.
    #[test]
    fn torn_final_record_recovers_to_last_complete_unit(
        n_objs in 2u8..6,
        pad in 0u8..40,
    ) {
        let stmts = statements(n_objs as usize, pad as usize);
        // One record per segment: the final record is the sole record
        // of a freshly rotated segment, so every tear point — including
        // the empty-segment tear at +0 — crosses the rotation boundary.
        sweep(&stmts, StoreConfig { segment_max_bytes: 1, ..StoreConfig::default() });
        // One large segment: the tear lands mid-segment after intact
        // records of the same file.
        sweep(&stmts, StoreConfig::default());
    }
}

/// Deterministic smoke: the sweep structure itself (segment discovery,
/// framing walk) stays honest on a fixed workload.
#[test]
fn torn_sweep_fixed_case() {
    let stmts = statements(3, 8);
    sweep(
        &stmts,
        StoreConfig {
            segment_max_bytes: 1,
            ..StoreConfig::default()
        },
    );
}
